"""Quickstart: simulate one task set under every RT-DVS policy.

Run with::

    python examples/quickstart.py

Builds the paper's worked-example task set (Table 2), simulates all six
scheduling methods on machine 0 with the paper's actual execution times
(Table 3), and prints the energy table — reproducing Table 4 — plus the
look-ahead EDF execution trace.
"""

from repro import (
    PAPER_POLICIES,
    example_taskset,
    machine0,
    make_policy,
    paper_example_trace,
    simulate,
    theoretical_bound,
)
from repro.sim.trace import render_trace


def main() -> None:
    taskset = example_taskset()
    machine = machine0()
    print(f"task set: {taskset}")
    print(f"worst-case utilization: {taskset.utilization:.3f}")
    print()

    reference = None
    print(f"{'policy':<12} {'energy':>8} {'normalized':>11} "
          f"{'switches':>9} {'misses':>7}")
    for name in PAPER_POLICIES:
        result = simulate(taskset, machine, make_policy(name),
                          demand=paper_example_trace(), duration=16.0)
        if reference is None:
            reference = result
        print(f"{name:<12} {result.total_energy:>8.1f} "
              f"{result.normalized_to(reference):>11.3f} "
              f"{result.switches:>9d} {result.deadline_miss_count:>7d}")
    bound = theoretical_bound(reference, machine)
    print(f"{'bound':<12} {bound:>8.1f} "
          f"{bound / reference.total_energy:>11.3f}")
    print()

    # Show what look-ahead EDF actually did (Fig. 7 of the paper).
    traced = simulate(taskset, machine, make_policy("laEDF"),
                      demand=paper_example_trace(), duration=16.0,
                      record_trace=True)
    print("look-ahead EDF execution trace (16 ms):")
    print(render_trace(traced.trace, end=16.0))


if __name__ == "__main__":
    main()
