"""Statistical deadline guarantees — the paper's future work, live.

Sec. 6: "we will investigate DVS with probabilistic or statistical
deadline guarantees."  `StatisticalEDF` reserves a percentile of each
task's *observed* demand distribution instead of the worst case.  This
example sweeps that knob on a bursty workload and prints the resulting
energy / miss-rate tradeoff, with ccEDF (the hard-guarantee equivalent)
as the anchor.
"""

from repro import machine0, make_policy, simulate
from repro.analysis.sweep import materialize_demand
from repro.core.statistical import StatisticalEDF
from repro.model.demand import UniformFractionDemand
from repro.model.generator import TaskSetGenerator


def main() -> None:
    taskset = TaskSetGenerator(n_tasks=6, utilization=0.8,
                               seed=2026).generate()
    duration = 4000.0
    demand = materialize_demand(
        UniformFractionDemand(low=0.2, high=1.0, seed=7), taskset,
        duration)
    print(f"bursty workload: {len(taskset)} tasks, worst-case U = "
          f"{taskset.utilization:.2f}, demands uniform in [0.2, 1.0] "
          "of worst case\n")

    cc = simulate(taskset, machine0(), make_policy("ccEDF"),
                  demand=demand, duration=duration)
    print(f"{'reservation':<22} {'energy':>8} {'vs ccEDF':>9} "
          f"{'misses':>7} {'miss rate':>10}")
    print(f"{'ccEDF (worst case)':<22} {cc.total_energy:>8.0f} "
          f"{'1.000':>9} {0:>7} {'0.00%':>10}")
    for percentile in (1.0, 0.95, 0.9, 0.8, 0.7, 0.5):
        policy = StatisticalEDF(percentile=percentile, warmup=2)
        result = simulate(taskset, machine0(), policy, demand=demand,
                          duration=duration, on_miss="drop")
        rate = result.deadline_miss_count / len(result.jobs)
        print(f"{'statEDF p=' + format(percentile, '.2f'):<22} "
              f"{result.total_energy:>8.0f} "
              f"{result.total_energy / cc.total_energy:>9.3f} "
              f"{result.deadline_miss_count:>7} {rate:>10.2%}")

    print()
    print("Dial the percentile down and energy falls below the hard-"
          "guarantee policy — at the price of a measured miss rate.  "
          "Even p=1.0 (reserve the observed maximum) is statistical, not "
          "absolute: a new record demand can slip a deadline, which is "
          "exactly why the paper's deterministic algorithms reserve the "
          "specified worst case.")


if __name__ == "__main__":
    main()
