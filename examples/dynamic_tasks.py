"""Dynamic task admission on the kernel emulation (Sec. 4.3).

The paper warns that adding a task to a tightly-DVS-matched system can
cause *transient* deadline misses, and prescribes: insert the task into the
task set immediately (so DVS decisions see the new load), but defer its
first release until the current invocations of all existing tasks have
completed.

This example drives the Linux-module-style kernel emulation end to end:

* register tasks through the procfs text interface,
* load the look-ahead EDF policy module,
* hot-add a task mid-run with and without the deferred release,
* swap the policy module to ccRM without unregistering tasks,
* print the kernel's procfs status files.
"""

from repro import Task
from repro.errors import DeadlineMissError
from repro.kernel import PeriodicRTTask, RTKernel
from repro.sim.engine import Admission


def fresh_kernel() -> RTKernel:
    """Three tasks that always use their full worst case — the tight
    matching that makes immediate admission dangerous."""
    kernel = RTKernel(charge_switch_overhead=False)
    kernel.procfs.write("/rt/tasks", "video 40 10")
    kernel.procfs.write("/rt/tasks", "audio 20 6")
    kernel.register_task(
        PeriodicRTTask("telemetry", period=100.0, wcet=12.0))
    kernel.load_policy("laEDF")
    return kernel


def main() -> None:
    newcomer = Task(wcet=9.0, period=30.0, name="recognizer")

    # --- immediate release: transient misses ------------------------------
    kernel = fresh_kernel()
    immediate = Admission(time=55.0, task=newcomer, defer=False)
    try:
        result = kernel.run_phase(400.0, admissions=[immediate],
                                  on_miss="raise")
        print(f"immediate admission: no miss this time "
              f"(energy {result.total_energy:.0f})")
    except DeadlineMissError as exc:
        print(f"immediate admission: TRANSIENT MISS -> {exc}")

    # --- deferred release: never misses ----------------------------------
    kernel = fresh_kernel()
    deferred = Admission(time=55.0, task=newcomer, defer=True)
    result = kernel.run_phase(400.0, admissions=[deferred], on_miss="raise")
    first = min(j.release_time for j in result.jobs
                if j.task.name == "recognizer")
    print(f"deferred admission: no misses; recognizer first released at "
          f"t={first:.2f} (admitted at t=55)")

    # --- swap the policy module without losing the task registry ----------
    # ccRM needs the lighter set to pass the exact RM test, so drop the
    # telemetry task first (the prototype's close-the-file-handle path).
    kernel.unregister_task("telemetry")
    kernel.load_policy("ccRM")
    result2 = kernel.run_phase(400.0, on_miss="raise")
    print(f"after hot-swapping to ccRM: {result2.summary()}")
    print()
    print("procfs status:")
    for path in kernel.procfs.listdir():
        print(f"-- cat {path}")
        print(kernel.procfs.read(path))
        print()


if __name__ == "__main__":
    main()
