"""Aperiodic work under RT-DVS: polling server vs background service.

The paper's footnote 1 notes that aperiodic/sporadic tasks are handled by
a periodic server.  This example builds a mixed workload — two hard
periodic tasks plus bursty aperiodic requests — and compares the two
substrates this library provides:

* a polling server (guaranteed budget/period capacity, so requests get a
  bounded wait even at full periodic load), and
* pure background service in the processor's idle time (no reservation —
  cheap, but response times collapse when the RT load is high).

Both run under cycle-conserving EDF, which reclaims whatever the server
does not use, so a quiet server *lowers* the operating frequency instead
of just idling.
"""

import random

from repro import Task, TaskSet, machine0, make_policy, simulate
from repro.aperiodic import (AperiodicRequest, BackgroundScheduler,
                             PollingServer)


def make_requests(seed: int = 7, duration: float = 1000.0):
    """Poisson-ish bursty arrivals, ~0.08 cycles/ms of aperiodic load."""
    rng = random.Random(seed)
    requests = []
    t = 0.0
    index = 0
    while True:
        t += rng.expovariate(1 / 25.0)
        if t >= duration:
            return requests
        requests.append(AperiodicRequest(
            arrival=t, cycles=rng.uniform(0.5, 3.5), name=f"req{index}"))
        index += 1


def main() -> None:
    duration = 1000.0
    periodic = [Task(3, 10, name="control"), Task(8, 40, name="video")]
    requests = make_requests(duration=duration)
    total_aperiodic = sum(r.cycles for r in requests)
    print(f"{len(requests)} aperiodic requests, "
          f"{total_aperiodic:.1f} cycles total")

    # --- polling server ----------------------------------------------------
    server = PollingServer(budget=3.0, period=15.0, name="server")
    taskset = TaskSet(periodic + [server.task])
    print(f"task set U = {taskset.utilization:.3f} "
          f"(server reserves {server.utilization:.2f})")
    result = simulate(taskset, machine0(), make_policy("ccEDF"),
                      demand=server.demand_model(requests, base=0.9),
                      duration=duration, record_trace=True)
    assert result.met_all_deadlines
    stats = server.response_stats(result, requests)
    print(f"polling server : mean response "
          f"{stats.mean_response:7.2f} ms, max "
          f"{stats.max_response:7.2f} ms, "
          f"{len(stats.unfinished)} unfinished, "
          f"energy {result.total_energy:.0f}")

    # --- background service --------------------------------------------------
    bare = TaskSet(periodic)
    bare_run = simulate(bare, machine0(), make_policy("ccEDF"),
                        demand=0.9, duration=duration, record_trace=True)
    outcome = BackgroundScheduler(bare_run).schedule(requests)
    bg_stats = outcome.stats
    served = bg_stats.completed_count
    mean = (f"{bg_stats.mean_response:7.2f}" if served else "    n/a")
    print(f"background     : mean response {mean} ms, "
          f"{len(bg_stats.unfinished)} unfinished, "
          f"energy {bare_run.total_energy + outcome.extra_energy:.0f} "
          f"(incl. {outcome.extra_energy:.0f} for background cycles)")

    print()
    print("The polling server bounds aperiodic waits by reserving "
          "capacity; background service is reservation-free but its "
          "response times depend entirely on leftover idle time.")


if __name__ == "__main__":
    main()
