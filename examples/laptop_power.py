"""Laptop power measurement, Fig. 15/16 style.

Recreates the paper's measurement setup on the emulated platform: the HP
N3350 component model supplies the constant board overhead, the K6-2+
machine supplies the two-voltage operating table, and the oscilloscope
emulation samples the instantaneous system power of a recorded run —
showing both the transient frequency steps (which a slow multimeter would
miss) and the long-interval averages the paper reports.
"""

from repro import Task, TaskSet, k6_2_plus, make_policy
from repro.hw.energy import EnergyModel
from repro.measure import (DigitalOscilloscope, LaptopPowerModel, PowerTrace,
                           table1_rows)
from repro.sim.engine import simulate


def main() -> None:
    laptop = LaptopPowerModel()
    machine = k6_2_plus()

    print("Table 1 (component model calibration):")
    for screen, disk, cpu, watts in table1_rows(laptop):
        print(f"  CPU {cpu:<9} screen {screen:<3} disk {disk:<8} "
              f"-> {watts:5.1f} W")
    print()

    taskset = TaskSet([
        Task(wcet=12.0, period=40.0, name="mpeg"),
        Task(wcet=5.0, period=25.0, name="net"),
        Task(wcet=8.0, period=80.0, name="ui"),
    ])
    energy_model = EnergyModel(
        cycle_energy_scale=laptop.cycle_energy_scale_for(machine))
    duration = 2000.0

    oscilloscope = DigitalOscilloscope(sample_interval=5.0)
    print(f"task set U = {taskset.utilization:.3f}; system power with the "
          "display off (watts):")
    print(f"{'policy':<12} {'mean':>7} {'peak':>7} {'trough':>7}")
    for name in ("EDF", "staticRM", "ccEDF", "laEDF"):
        result = simulate(taskset, machine, make_policy(name),
                          demand=0.9, duration=duration,
                          energy_model=energy_model, record_trace=True)
        trace = PowerTrace(result, laptop=laptop)
        acquisition = oscilloscope.acquire(trace)
        print(f"{name:<12} {acquisition.mean:>7.2f} {acquisition.peak:>7.2f} "
              f"{acquisition.trough:>7.2f}")
    print()

    # Transient view: sample a short window of the laEDF run.
    result = simulate(taskset, machine, make_policy("laEDF"), demand=0.9,
                      duration=200.0, energy_model=energy_model,
                      record_trace=True)
    trace = PowerTrace(result, laptop=laptop)
    fine = DigitalOscilloscope(sample_interval=2.0).acquire(trace, 0.0, 120.0)
    print("laEDF transient (first 120 ms, 2 ms samples):")
    scale_max = max(fine.watts)
    for t, w in zip(fine.times, fine.watts):
        bar = "#" * int(40 * w / scale_max)
        print(f"  t={t:6.1f} ms {w:6.2f} W |{bar}")


if __name__ == "__main__":
    main()
