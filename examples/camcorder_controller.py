"""The paper's motivating example: an embedded camcorder controller.

Sec. 2.2: "suppose there is a program that must react to a change in a
sensor reading within a 5 ms deadline, and that it requires up to 3 ms of
computation time with the processor running at the maximum operating
frequency.  With a DVS algorithm that reacts only to average throughput, if
the total load on the system is low, the processor would be set to operate
at ... half of the maximum, and the task, now requiring 6 ms of processor
time, cannot meet its 5 ms deadline."

This example builds that scenario: a sensor-reaction task (3 ms WCET, 5 ms
period/deadline) that is usually cheap but occasionally needs its full
budget, alongside background housekeeping tasks.  A Weiser-style
average-throughput DVS policy slows the clock during the quiet stretch and
misses deadlines on the demand spike; every RT-DVS policy keeps the
guarantee while still saving energy.
"""

from repro import (
    AveragingDVS,
    Task,
    TaskSet,
    machine0,
    make_policy,
    simulate,
)
from repro.model.demand import TraceDemand


def camcorder_taskset() -> TaskSet:
    return TaskSet([
        Task(wcet=3.0, period=5.0, name="sensor"),       # the 5 ms deadline
        Task(wcet=4.0, period=40.0, name="autofocus"),
        Task(wcet=6.0, period=100.0, name="ui"),
    ])


def camcorder_demand() -> TraceDemand:
    """Mostly-idle sensor that spikes to its worst case now and then.

    The sensor needs only 0.5 ms for 19 invocations, then the full 3 ms on
    the 20th (a scene change).  An average-throughput policy tunes the
    clock to the quiet period and gets caught by the spike.
    """
    sensor = [0.5] * 19 + [3.0]
    return TraceDemand({
        "sensor": sensor,
        "autofocus": [2.0],
        "ui": [3.0],
    })


def main() -> None:
    taskset = camcorder_taskset()
    machine = machine0()
    duration = 1000.0
    print(f"camcorder task set: U = {taskset.utilization:.3f}")
    print(f"{'policy':<12} {'energy':>9} {'misses':>7}  verdict")

    baseline = simulate(taskset, machine, make_policy("EDF"),
                        demand=camcorder_demand(), duration=duration)

    rows = []
    avg = AveragingDVS(interval=20.0, target_utilization=0.8)
    for policy in (make_policy("EDF"), avg, make_policy("staticEDF"),
                   make_policy("ccEDF"), make_policy("laEDF")):
        result = simulate(taskset, machine, policy,
                          demand=camcorder_demand(), duration=duration,
                          on_miss="drop")
        verdict = ("MISSES DEADLINES — unusable for the camcorder"
                   if result.deadline_miss_count else
                   f"all deadlines met, "
                   f"{(1 - result.total_energy / baseline.total_energy):.0%}"
                   " energy saved vs plain EDF")
        rows.append((result.policy_name, result.total_energy,
                     result.deadline_miss_count, verdict))
        print(f"{result.policy_name:<12} {result.total_energy:>9.1f} "
              f"{result.deadline_miss_count:>7d}  {verdict}")

    print()
    misses = {name: m for name, _, m, _ in rows}
    assert misses["avgDVS"] > 0, \
        "the average-throughput baseline should miss deadlines here"
    assert all(m == 0 for name, m in misses.items() if name != "avgDVS"), \
        "RT-DVS policies must never miss"
    print("Average-throughput DVS broke the 5 ms guarantee; "
          "RT-DVS saved energy without breaking it.")


if __name__ == "__main__":
    main()
