"""Per-task energy profiling, PowerScope style.

The paper's measurement methodology follows PowerScope, the tool for
attributing energy to program activity.  This example profiles the
videophone workload under three policies and shows *where* the energy
goes: which tasks pay for high-voltage cycles, how much the policies
differ per task rather than just in aggregate, and what the idle state
costs when halting isn't free.
"""

from repro import machine0, make_policy, simulate
from repro.hw.energy import EnergyModel
from repro.measure import EnergyProfiler
from repro.workloads import load


def main() -> None:
    taskset, demand = load("videophone")
    duration = 6.0 * max(t.period for t in taskset)
    energy_model = EnergyModel(idle_level=0.05)

    print(f"videophone workload: U = {taskset.utilization:.2f}, "
          f"{duration:g} ms horizon, idle level 0.05\n")
    for policy_name in ("EDF", "ccEDF", "laEDF"):
        demand.reset()
        result = simulate(taskset, machine0(), make_policy(policy_name),
                          demand=demand, duration=duration,
                          energy_model=energy_model, record_trace=True)
        profiler = EnergyProfiler(result)
        print(f"--- {policy_name}: total energy "
              f"{profiler.total_energy:.0f} ---")
        print(profiler.table())
        print()

    print("Reading the tables: under plain EDF every cycle costs 25 "
          "(5 V); the RT-DVS policies push most tasks down to 9-16 "
          "V²/cycle, and the mean V²/cycle column shows which tasks "
          "still pay for high-frequency catch-up.")


if __name__ == "__main__":
    main()
