"""Partitioned multiprocessor RT-DVS: energy and heat at scale.

The paper's conclusion extends RT-DVS beyond batteries: it "can ... even
reduce cooling requirements and costs in large-scale, multiprocessor
supercomputers."  This example stages that argument on a small scale:

* a 12-task control workload (total U = 1.8) partitioned onto 2-6 CPUs
  with worst-fit-decreasing packing (balanced loads suit DVS best);
* total energy per policy and processor count — parallelism alone saves
  nothing under plain EDF, but converts directly into voltage reduction
  under RT-DVS;
* a lumped thermal model of the hottest die, showing the cooling headroom
  RT-DVS buys.
"""

from repro import Task, TaskSet, machine0
from repro.measure.thermal import ThermalModel, thermal_trajectory
from repro.mp import partition_tasks, simulate_partitioned
from repro.core import make_policy
from repro.sim.engine import simulate


def cluster_taskset() -> TaskSet:
    tasks = []
    for index in range(12):
        period = 8.0 + 6.0 * index
        tasks.append(Task(wcet=0.15 * period, period=period,
                          name=f"node{index}"))
    return TaskSet(tasks)


def main() -> None:
    taskset = cluster_taskset()
    duration = 1000.0
    print(f"cluster workload: {len(taskset)} tasks, total U = "
          f"{taskset.utilization:.2f}\n")

    print(f"{'CPUs':>4}  {'EDF':>10} {'staticEDF':>10} {'laEDF':>10}"
          f"   per-CPU U (worst-fit)")
    for n in (2, 3, 4, 6):
        partition = partition_tasks(taskset, n, heuristic="worst-fit")
        row = []
        for policy in ("EDF", "staticEDF", "laEDF"):
            result = simulate_partitioned(partition, machine0(), policy,
                                          demand=0.7, duration=duration)
            assert result.met_all_deadlines
            row.append(result.total_energy)
        utils = ", ".join(f"{u:.2f}" for u in partition.utilizations)
        print(f"{n:>4}  {row[0]:>10.0f} {row[1]:>10.0f} {row[2]:>10.0f}"
              f"   [{utils}]")
    print()

    thermal = ThermalModel(resistance=2.0, capacitance=40.0, ambient=25.0)
    partition = partition_tasks(taskset, 2, heuristic="worst-fit")
    print("hottest-die peak temperature on 2 CPUs "
          f"(R={thermal.resistance}, C={thermal.capacitance}, "
          f"ambient {thermal.ambient} C):")
    for policy in ("EDF", "staticEDF", "laEDF"):
        hottest = 0.0
        for cpu_taskset in partition.assignments:
            result = simulate(cpu_taskset, machine0(),
                              make_policy(policy), demand=0.7,
                              duration=duration, record_trace=True)
            trajectory = thermal_trajectory(result, thermal)
            hottest = max(hottest, trajectory.peak)
        print(f"  {policy:<10} {hottest:6.1f} C")
    print()
    print("Spreading load over more CPUs only pays off because DVS turns "
          "the slack into lower voltage; and the cooler peak die is the "
          "'reduced cooling requirements' of the paper's conclusion.")


if __name__ == "__main__":
    main()
