"""A cellular-phone style periodic workload, swept over utilization.

The paper's intro motivates RT-DVS with battery-powered embedded real-time
systems like cellular phones.  This example builds a phone-ish task set —
a voice codec frame, radio keep-alive, protocol stack, display refresh and
a background agenda task — and shows:

1. the per-policy energy at the phone's nominal load (with the theoretical
   lower bound), and
2. how the savings change as the workload is scaled from light standby
   load to full capacity, rendered as an ASCII chart.
"""

from repro import (
    PAPER_POLICIES,
    Task,
    TaskSet,
    machine2,
    make_policy,
    simulate,
    theoretical_bound,
)
from repro.analysis.series import Series, SweepTable
from repro.analysis.sweep import materialize_demand
from repro.analysis.textplot import line_chart
from repro.model.demand import UniformFractionDemand


def phone_taskset() -> TaskSet:
    """Five periodic tasks; worst-case utilization ~0.61."""
    return TaskSet([
        Task(wcet=4.0, period=20.0, name="codec"),      # voice frame
        Task(wcet=1.5, period=10.0, name="radio"),      # RF burst handling
        Task(wcet=6.0, period=50.0, name="stack"),      # protocol stack
        Task(wcet=8.0, period=100.0, name="display"),
        Task(wcet=10.0, period=500.0, name="agenda"),
    ])


def main() -> None:
    machine = machine2()  # PowerNow!-style table fits a phone SoC
    duration = 3000.0
    nominal = phone_taskset()
    demand = materialize_demand(
        UniformFractionDemand(low=0.3, high=1.0, seed=42), nominal, duration)

    print(f"phone task set U = {nominal.utilization:.3f} on {machine.name}")
    print(f"{'policy':<12} {'energy':>10} {'normalized':>11} {'misses':>7}")
    reference = None
    for name in PAPER_POLICIES:
        result = simulate(nominal, machine, make_policy(name),
                          demand=demand, duration=duration)
        if reference is None:
            reference = result
        print(f"{name:<12} {result.total_energy:>10.0f} "
              f"{result.normalized_to(reference):>11.3f} "
              f"{result.deadline_miss_count:>7d}")
    bound = theoretical_bound(reference, machine)
    print(f"{'bound':<12} {bound:>10.0f} "
          f"{bound / reference.total_energy:>11.3f}")
    print()

    # Scale the same task structure from standby load to full capacity.
    utilizations = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    table = SweepTable(
        title="phone workload: normalized energy vs scaled utilization",
        x_label="worst-case utilization",
        y_label="energy (normalized to EDF)")
    curves = {name: [] for name in ("staticEDF", "ccEDF", "laEDF")}
    for u in utilizations:
        scaled = nominal.scaled_to_utilization(u)
        scaled_demand = materialize_demand(
            UniformFractionDemand(low=0.3, high=1.0, seed=42),
            scaled, duration)
        edf = simulate(scaled, machine, make_policy("EDF"),
                       demand=scaled_demand, duration=duration)
        for name in curves:
            result = simulate(scaled, machine, make_policy(name),
                              demand=scaled_demand, duration=duration)
            curves[name].append(result.total_energy / edf.total_energy)
    for name, ys in curves.items():
        table.add(Series(name, tuple(utilizations), tuple(ys)))
    print(line_chart(table, width=56, height=16))


if __name__ == "__main__":
    main()
