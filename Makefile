.PHONY: install test cov bench bench-mem bench-service bench-dist service-smoke bench-figures check test-fast-path catalog-audit experiments experiments-full sweep-cache-clean clean

install:
	pip install -e .

test:
	pytest tests/

# Coverage gate CI enforces on the simulator core and the observability
# layer (85% floor).  Degrades to a plain test run with a notice when
# pytest-cov is not installed locally.
cov:
	@if PYTHONPATH=src python -c "import pytest_cov" 2>/dev/null; then \
	  PYTHONPATH=src python -m pytest -q tests/sim tests/obs \
	    --cov=repro.sim --cov=repro.obs --cov-branch \
	    --cov-report=term-missing --cov-fail-under=85; \
	else \
	  echo "pytest-cov not installed; running tests without coverage"; \
	  PYTHONPATH=src python -m pytest -q tests/sim tests/obs; \
	fi

# Perf trajectory: canonical engine workloads -> BENCH_engine.json
# (indexed engine vs recorded pre-refactor baseline), then the pytest
# micro-benchmarks.
bench:
	PYTHONPATH=src python benchmarks/write_bench_json.py
	pytest benchmarks/ --benchmark-only

# Memory trajectory: before/after peak RSS and bytes shipped for the two
# trace backends (one fresh subprocess per backend) -> BENCH_mem.json.
bench-mem:
	PYTHONPATH=src python benchmarks/mem_workload.py

# Service trajectory: warm HTTP serving floor, single-flight dedup,
# served-vs-in-process bit parity (<= 15% overhead) and the distributed
# fan-out workload -> BENCH_service.json.
bench-service:
	PYTHONPATH=src python benchmarks/service_workload.py

# Distributed trajectory only: 4 loopback `rtdvs worker` subprocesses
# (one with RTDVS_NO_NUMPY=1) vs in-process on a cold sweep, plus a
# worker-kill run — bit-identity and exactly-once delivery gates, with
# the speedup floor clamped to the box's effective lanes.  Merges its
# entry into an existing BENCH_service.json.
bench-dist:
	PYTHONPATH=src python benchmarks/service_workload.py --only distributed

# Blocking service smoke: a real `rtdvs serve` subprocess, fig9 quick
# submitted twice, second response must be all cache hits and
# byte-identical to the first.
service-smoke:
	PYTHONPATH=src python benchmarks/service_smoke.py

bench-figures:
	pytest benchmarks/ --benchmark-only

# What CI runs: tier-1 tests plus the full-catalog trace audit, a smoke
# pass of the engine benchmarks (so the perf harness itself cannot rot),
# the peak-RSS gate of the memory workload (array trace backend must
# cut peak RSS >= 30%) and the distributed fan-out gates.
check:
	PYTHONPATH=src python -m pytest -x -q
	$(MAKE) catalog-audit
	PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -k engine -q
	PYTHONPATH=src python benchmarks/mem_workload.py --gate
	$(MAKE) service-smoke
	$(MAKE) bench-dist

# The fast-path differential suites: incremental-vs-from-scratch policy
# state must produce bit-identical SimResults, and the hyperperiod
# short-circuit must match full simulation to relative 1e-9.
test-fast-path:
	PYTHONPATH=src python -m pytest -q \
	  tests/core/test_incremental_state.py \
	  tests/sim/test_steady_fast_path.py \
	  tests/analysis/test_sweep_fast_path.py

# Full-catalog trace audit at the small-N CI profile: every scenario's
# cells are replayed with traces, counters/energy re-derived, aggregates
# and declared invariants cross-checked.  Shares the sweep cell cache
# (warm cache => cheap re-audit) and exits non-zero on any violation.
catalog-audit:
	PYTHONPATH=src python -m repro catalog audit \
	  --report audit-report.json

experiments:
	python -m repro run-all --out results_quick

experiments-full:
	python -m repro run-all --full --out results_full

# Drop every cached sweep cell (honours RTDVS_CELL_CACHE; see
# `python -m repro cache info` for the current location and size).
sweep-cache-clean:
	PYTHONPATH=src python -m repro cache clean

clean:
	rm -rf .pytest_cache .benchmarks .hypothesis results_quick results_full
	find . -name __pycache__ -type d -exec rm -rf {} +
