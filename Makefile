.PHONY: install test bench experiments experiments-full clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro run-all --out results_quick

experiments-full:
	python -m repro run-all --full --out results_full

clean:
	rm -rf .pytest_cache .benchmarks .hypothesis results_quick results_full
	find . -name __pycache__ -type d -exec rm -rf {} +
