"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. RM admission test: exact scheduling-point test vs the Liu-Layland
   bound — how much deeper does the exact test let staticRM scale?
2. Frequency-step granularity: laEDF on the discrete machine 0 vs a
   continuous interpolation — the paper notes discretization *helps*
   laEDF (machine 2 discussion).
3. Idle behaviour: ccEDF with the drop-to-bottom idle hook vs static
   idling — quantifies the Fig. 10 divergence mechanism.
4. Switching overhead: free switching vs the measured K6-2+ stop
   intervals — validates that overheads fit inside padded WCETs.
"""

import pytest

from benchmarks.conftest import once
from repro import machine0, make_policy, simulate
from repro.core.static_scaling import StaticRM
from repro.hw.energy import EnergyModel
from repro.hw.regulator import SwitchingModel
from repro.model.generator import TaskSetGenerator
from repro.model.schedulability import rm_exact_schedulable

SETS = TaskSetGenerator(n_tasks=6, utilization=0.6, seed=55).generate_many(10)


def test_bench_ablation_rm_test_depth(benchmark):
    """Exact RM test selects a frequency at most as high as Liu-Layland."""

    def run():
        exact_policy = StaticRM(exact=True)
        ll_policy = StaticRM(exact=False)
        pairs = []
        for ts in SETS:
            if not rm_exact_schedulable(ts, 1.0):
                continue
            exact = exact_policy.select_point(ts, machine0()).frequency
            ll = ll_policy.select_point(ts, machine0()).frequency
            pairs.append((exact, ll))
        return pairs

    pairs = benchmark(run)
    assert pairs, "need at least one RM-schedulable set"
    assert all(exact <= ll for exact, ll in pairs)
    # The exact test buys real headroom on at least some sets.
    assert any(exact < ll for exact, ll in pairs)


def test_bench_ablation_laedf_step_granularity(benchmark):
    """laEDF: discrete steps vs near-continuous interpolation.

    The paper (machine 2 discussion) argues fine-grained settings *hurt*
    laEDF; we regenerate that comparison on machine 0 vs its continuous
    version and only require both to stay deadline-safe while reporting
    the energies via the benchmark extra info.
    """
    coarse = machine0()
    fine = machine0().continuous(steps=51)

    def run():
        coarse_energy = fine_energy = 0.0
        for ts in SETS:
            a = simulate(ts, coarse, make_policy("laEDF"), demand=0.9,
                         duration=800.0)
            b = simulate(ts, fine, make_policy("laEDF"), demand=0.9,
                         duration=800.0)
            assert a.met_all_deadlines and b.met_all_deadlines
            coarse_energy += a.total_energy
            fine_energy += b.total_energy
        return coarse_energy, fine_energy

    coarse_energy, fine_energy = once(benchmark, run)
    assert coarse_energy > 0 and fine_energy > 0


def test_bench_ablation_idle_behaviour(benchmark):
    """ccEDF's drop-to-bottom idle hook vs staticEDF idling at its point:
    the whole Fig. 10 divergence, isolated."""
    model = EnergyModel(idle_level=1.0)

    def run():
        cc = static = 0.0
        for ts in SETS:
            cc += simulate(ts, machine0(), make_policy("ccEDF"),
                           demand="worst", duration=800.0,
                           energy_model=model).total_energy
            static += simulate(ts, machine0(), make_policy("staticEDF"),
                               demand="worst", duration=800.0,
                               energy_model=model).total_energy
        return cc, static

    cc, static = once(benchmark, run)
    assert cc < static, \
        "with costly idle, dynamic idling must beat static idling"


def test_bench_ablation_switch_overhead(benchmark):
    """Free switching vs the measured stop intervals: overheads cost time
    but near-zero energy, and deadlines still hold when WCETs include the
    two-transition pad."""
    from repro.model.generator import PeriodBand
    from repro.model.task import Task, TaskSet

    k6_overheads = SwitchingModel.k6_2_plus()
    pad = 2 * k6_overheads.voltage_switch_time
    # Periods >= 20 ms so the 0.8 ms pad stays a small utilization add-on.
    slow_sets = TaskSetGenerator(
        n_tasks=5, utilization=0.6, seed=56,
        bands=[PeriodBand(20.0, 200.0)]).generate_many(8)

    def run():
        free = charged = 0.0
        for ts in slow_sets:
            padded = TaskSet([Task(min(t.wcet + pad, t.period), t.period,
                                   t.name) for t in ts])
            free += simulate(padded, machine0(), make_policy("ccEDF"),
                             demand=0.8, duration=800.0).total_energy
            result = simulate(padded, machine0(), make_policy("ccEDF"),
                              demand=0.8, duration=800.0,
                              switching=k6_overheads, on_miss="raise")
            charged += result.total_energy
        return free, charged

    free, charged = once(benchmark, run)
    # Energy barely moves (halted transitions burn ~nothing at idle 0).
    assert charged == pytest.approx(free, rel=0.05)
