"""Fig. 11 — machine-specification sensitivity.

Regenerates the three panels at micro scale; machine 2's fine-grained,
narrow-voltage table must make ccEDF hug the bound and beat laEDF.
"""

import pytest

from benchmarks.conftest import micro_sweep, once
from repro.hw.machine import machine0, machine1, machine2

MACHINES = {"machine0": machine0, "machine1": machine1,
            "machine2": machine2}


@pytest.mark.parametrize("name", sorted(MACHINES))
def test_bench_fig11_panel(benchmark, name):
    sweep = once(benchmark, micro_sweep, n_tasks=8, seed=110,
                 machine=MACHINES[name]())
    table = sweep.normalized
    # Worst-case demands: ccEDF == staticEDF on every machine.
    cc = table.get("ccEDF").ys
    st = table.get("staticEDF").ys
    assert max(abs(a - b) for a, b in zip(cc, st)) < 1e-6


def test_bench_fig11_machine2_behaviour(benchmark):
    sweep = once(benchmark, micro_sweep, n_tasks=8, seed=110,
                 machine=machine2())
    table = sweep.normalized
    hug = max(c - b for c, b in zip(table.get("ccEDF").ys,
                                    table.get("bound").ys))
    assert hug < 0.1, "machine2: ccEDF must track the bound closely"
    cc_mean = sum(table.get("ccEDF").ys) / len(table.xs)
    la_mean = sum(table.get("laEDF").ys) / len(table.xs)
    assert cc_mean <= la_mean + 1e-9, \
        "machine2: ccEDF must outperform laEDF on average"
