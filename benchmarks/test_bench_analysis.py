"""Benchmarks for the analysis layer: steady-state measurement, policy
comparison, schedule validation, and sweep throughput."""

import pytest

from benchmarks.conftest import once
from repro import PAPER_POLICIES, example_taskset, machine0, make_policy
from repro.analysis.compare import compare_policies
from repro.analysis.sweep import SweepConfig, utilization_sweep
from repro.sim.engine import simulate
from repro.sim.steady import steady_state_energy
from repro.sim.validation import validate_schedule


def test_bench_steady_state(benchmark):
    """Per-hyperperiod energy of the worked example under laEDF
    (simulates 3 x 280 ms with a full trace)."""

    def run():
        return steady_state_energy(example_taskset(), machine0(),
                                   make_policy("laEDF"), demand=0.6)

    steady = benchmark(run)
    assert steady.is_periodic


def test_bench_compare_policies(benchmark):
    """All six paper policies on one workload, identical demands."""

    def run():
        return compare_policies(example_taskset(), machine0(),
                                policies=PAPER_POLICIES,
                                demand="uniform", duration=560.0)

    rows = benchmark(run)
    assert len(rows) == len(PAPER_POLICIES)
    assert all(r.misses == 0 for r in rows if not r.skipped)


def test_bench_schedule_validation(benchmark):
    """Validator throughput over a 1000 ms traced run."""
    result = simulate(example_taskset(), machine0(),
                      make_policy("ccEDF"), demand=0.7,
                      duration=1000.0, record_trace=True)

    violations = benchmark(validate_schedule, result)
    assert violations == []


def test_bench_sweep_cell_throughput(benchmark):
    """One micro sweep point: the unit of work behind every figure."""

    def run():
        return utilization_sweep(SweepConfig(
            n_tasks=8, n_sets=2, utilizations=(0.6,), duration=500.0,
            seed=44))

    sweep = once(benchmark, run)
    assert sweep.normalized.get("laEDF").ys[0] <= 1.0
