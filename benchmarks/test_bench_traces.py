"""Benchmark regenerating the worked-example traces (Figs. 2, 3, 5, 7)."""

from repro.experiments import traces


def test_bench_traces(benchmark):
    result = benchmark(traces.run)
    assert result.all_checks_pass, [str(c) for c in result.checks
                                    if not c.passed]
