#!/usr/bin/env python
"""Peak-RSS memory workload: one long-horizon run per trace backend.

Measures what the array-backed timeline actually buys in resident memory:
a fresh child process per backend simulates the canonical n=200
long-horizon ccEDF workload with trace recording on, ships the trace the
way the sweep executor would (``SimTimeline.to_bytes`` for the array
backend, ``pickle.dumps`` for the legacy segment-list backend), and
reports its own peak-RSS high-watermark (``VmHWM``, reset at child start
so a large launching parent cannot leak into the figure).

A *subprocess* per backend is the only honest way to compare peaks: RSS
never shrinks back after the first backend's allocations, so measuring
both in one process would credit whichever ran second.  The child also
refuses to import numpy — the record path needs none of it, and a stray
30 MB numpy import would drown the very delta being measured (the
``numpy_imported`` flag in the child report feeds the shared
:mod:`benchmarks.numpy_guard` invariant check).

Usage::

    PYTHONPATH=src python benchmarks/mem_workload.py [--out BENCH_mem.json]
    make bench-mem

Parent mode prints a before/after table (peak RSS and bytes shipped per
backend) and writes the raw numbers as JSON.  ``write_bench_json.py``
imports :func:`measure_pair` for its memory regression gates.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from benchmarks.numpy_guard import numpy_imported, numpy_violation  # noqa: E402

#: Canonical memory workload: the largest paper-scale task count over a
#: long horizon, under the policy with the densest switching (ccEDF), so
#: the trace — not the task set — dominates the heap.
N_TASKS = 200
DURATION = 6400.0
UTILIZATION = 0.7
DEMAND = 0.8
SEED = 2001

BACKENDS = ("segments", "array")

#: Peak-RSS reduction floor (percent) the array backend must deliver over
#: the segment-list backend; ``--gate`` and ``write_bench_json.py`` both
#: enforce it.
RSS_TARGET_REDUCTION_PCT = 30.0


def _reset_peak_rss() -> None:
    """Reset this process's peak-RSS high-watermark (Linux only).

    A forked child inherits the parent's resident set at spawn time, so
    when a large parent (``write_bench_json.py``) launches the workers,
    ``ru_maxrss`` starts at the *parent's* footprint and both backends
    report the same inherited number.  Writing ``5`` to
    ``/proc/self/clear_refs`` resets ``VmHWM`` so the watermark reflects
    only this process's own allocations.
    """
    try:
        with open("/proc/self/clear_refs", "w") as handle:
            handle.write("5")
    except OSError:
        pass


def _peak_rss_kb() -> int:
    """This process's peak RSS in KB — ``VmHWM`` (honours the reset
    above) with an ``ru_maxrss`` fallback off Linux."""
    import resource

    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _child(args) -> int:
    """Run one backend's workload in this (fresh) process; print JSON."""
    _reset_peak_rss()

    from repro.core.cycle_conserving import CycleConservingEDF
    from repro.hw.machine import machine0
    from repro.model.generator import TaskSetGenerator
    from repro.sim.engine import Simulator

    taskset = TaskSetGenerator(n_tasks=args.n_tasks,
                               utilization=UTILIZATION,
                               seed=SEED).generate()
    sim = Simulator(taskset, machine0(), CycleConservingEDF(),
                    demand=DEMAND, duration=args.duration, on_miss="drop",
                    record_trace=True, trace_backend=args.backend)
    start = time.perf_counter()
    result = sim.run()
    sim_seconds = time.perf_counter() - start

    start = time.perf_counter()
    if args.backend == "array":
        blob = result.trace.to_bytes()
    else:
        import pickle
        blob = pickle.dumps(result.trace)
    ship_seconds = time.perf_counter() - start

    report = {
        "backend": args.backend,
        "n_tasks": args.n_tasks,
        "duration": args.duration,
        "rows": len(result.trace),
        "jobs": len(result.jobs),
        "energy": result.total_energy,
        "switches": result.switches,
        "sim_seconds": round(sim_seconds, 6),
        "ship_seconds": round(ship_seconds, 6),
        "blob_bytes": len(blob),
        "peak_rss_kb": _peak_rss_kb(),
        "numpy_imported": numpy_imported(),
        # The record path must not *use* numpy either; same signal as the
        # import check, recorded explicitly so BENCH_mem.json states it.
        "numpy_used": numpy_imported(),
    }
    json.dump(report, sys.stdout)
    print()
    return 0


def measure(backend: str, n_tasks: int = N_TASKS,
            duration: float = DURATION) -> dict:
    """Spawn a fresh child for one backend and return its report."""
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--child",
         "--backend", backend, "--n-tasks", str(n_tasks),
         "--duration", str(duration)],
        capture_output=True, text=True, check=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    return json.loads(proc.stdout)


def measure_pair(n_tasks: int = N_TASKS, duration: float = DURATION) -> dict:
    """Both backends' child reports plus the derived comparison figures."""
    reports = {backend: measure(backend, n_tasks, duration)
               for backend in BACKENDS}
    segments, array = reports["segments"], reports["array"]
    if segments["energy"] != array["energy"] \
            or segments["rows"] != array["rows"]:
        raise SystemExit(
            "mem_workload: backends diverged — "
            f"segments (E={segments['energy']}, rows={segments['rows']}) "
            f"vs array (E={array['energy']}, rows={array['rows']})")
    reduction = 100.0 * (1.0 - array["peak_rss_kb"]
                         / segments["peak_rss_kb"])
    return {
        "n_tasks": n_tasks,
        "duration": duration,
        "backends": reports,
        "rss_reduction_pct": round(reduction, 2),
        "blob_ratio": round(segments["blob_bytes"]
                            / array["blob_bytes"], 3),
    }


def render_table(pair: dict) -> str:
    """The before/after table ``make bench-mem`` prints."""
    lines = [
        f"memory workload: n_tasks={pair['n_tasks']} "
        f"duration={pair['duration']:g} ccEDF (one child per backend)",
        f"{'backend':<10} {'rows':>8} {'peak RSS':>12} "
        f"{'shipped':>12} {'sim':>8} {'ship':>8}",
    ]
    for backend in BACKENDS:
        entry = pair["backends"][backend]
        lines.append(
            f"{backend:<10} {entry['rows']:>8} "
            f"{entry['peak_rss_kb']:>9} KB "
            f"{entry['blob_bytes'] // 1024:>9} KB "
            f"{entry['sim_seconds']:>7.2f}s {entry['ship_seconds']:>7.3f}s")
    lines.append(
        f"peak-RSS reduction {pair['rss_reduction_pct']:.1f}% · "
        f"shipped bytes {pair['blob_ratio']:.2f}x smaller")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", action="store_true",
                        help="internal: run one backend in this process")
    parser.add_argument("--backend", choices=BACKENDS, default="array")
    parser.add_argument("--n-tasks", type=int, default=N_TASKS)
    parser.add_argument("--duration", type=float, default=DURATION)
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_mem.json")
    parser.add_argument("--gate", action="store_true",
                        help="exit non-zero unless the array backend cuts "
                             f"peak RSS by >= {RSS_TARGET_REDUCTION_PCT:g}%%")
    args = parser.parse_args(argv)
    if args.child:
        return _child(args)
    pair = measure_pair(args.n_tasks, args.duration)
    print(render_table(pair))
    args.out.write_text(json.dumps(pair, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    if args.gate:
        for backend, report in pair["backends"].items():
            violation = numpy_violation(f"{backend} record path",
                                        imported=report["numpy_imported"])
            if violation:
                print(f"FAIL: {violation}")
                return 1
        if pair["rss_reduction_pct"] < RSS_TARGET_REDUCTION_PCT:
            print(f"FAIL: peak-RSS reduction {pair['rss_reduction_pct']}% "
                  f"below the {RSS_TARGET_REDUCTION_PCT:g}% floor")
            return 1
        print(f"gate OK: reduction {pair['rss_reduction_pct']}% >= "
              f"{RSS_TARGET_REDUCTION_PCT:g}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
