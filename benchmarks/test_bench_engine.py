"""Engine micro-benchmarks: simulation throughput per policy.

Not a paper figure — these time the substrate itself (events/second) so
performance regressions in the scheduler or the policies are visible.
"""

import pytest

from repro import PAPER_POLICIES, machine0, make_policy, simulate
from repro.model.generator import TaskSetGenerator

TS = TaskSetGenerator(n_tasks=8, utilization=0.7, seed=77).generate()


@pytest.mark.parametrize("name", PAPER_POLICIES)
def test_bench_policy_throughput(benchmark, name):
    """One 2000-time-unit simulation of an 8-task set."""

    def run():
        return simulate(TS, machine0(), make_policy(name), demand=0.8,
                        duration=2000.0, on_miss="drop")

    result = benchmark(run)
    assert result.jobs, "simulation must have released jobs"


def test_bench_engine_event_rate(benchmark):
    """Dense workload: 1 ms periods for 2000 time units (~6000 jobs)."""
    from repro.model.task import Task, TaskSet
    dense = TaskSet([Task(0.2, 1.0), Task(0.3, 2.0), Task(0.4, 4.0)])

    def run():
        return simulate(dense, machine0(), make_policy("laEDF"),
                        demand=0.9, duration=2000.0)

    result = benchmark(run)
    assert len(result.jobs) == 2000 + 1000 + 500
