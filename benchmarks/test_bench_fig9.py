"""Fig. 9 — energy vs utilization for varying task counts.

Regenerates the figure's series at micro scale and asserts the paper's
two findings: laEDF tracks the bound, and the task count barely matters.
"""

import pytest

from benchmarks.conftest import micro_sweep, once


@pytest.mark.parametrize("n_tasks", [5, 10, 15])
def test_bench_fig9_panel(benchmark, n_tasks):
    sweep = once(benchmark, micro_sweep, n_tasks=n_tasks, seed=90 + n_tasks)
    table = sweep.normalized
    mid = 0.5
    la = table.get("laEDF").y_at(mid)
    bound = table.get("bound").y_at(mid)
    assert la < 0.9, "RT-DVS must save energy at mid utilization"
    assert la <= bound * 1.2 + 0.02, "laEDF must track the bound"
    cc = table.get("ccEDF").y_at(mid)
    st = table.get("staticEDF").y_at(mid)
    assert la <= cc + 0.02 <= st + 0.04


def test_bench_fig9_task_count_invariance(benchmark):
    def both():
        return (micro_sweep(n_tasks=5, seed=95),
                micro_sweep(n_tasks=15, seed=105))

    five, fifteen = once(benchmark, both)
    la5 = five.normalized.get("laEDF").ys
    la15 = fifteen.normalized.get("laEDF").ys
    gap = max(abs(a - b) for a, b in zip(la5, la15))
    assert gap < 0.25, "task count should have little effect"
