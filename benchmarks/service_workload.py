#!/usr/bin/env python
"""Service-tier performance: HTTP sweep serving -> BENCH_service.json.

Runs the sweep service (``rtdvs serve``) on an ephemeral loopback port —
the real asyncio server with the real blocking client, not an in-process
shortcut — and records three workloads in ``BENCH_service.json`` at the
repository root:

* ``warm_http`` — a 500-cell inline sweep served twice: once cold (to
  populate the CTR1 cell cache) and then repeatedly warm.  The warm
  requests must simulate nothing, and the best warm pass must clear the
  cache-first read path's throughput floor over HTTP, streaming
  included.
* ``dedup`` — K identical requests submitted concurrently from K client
  threads against a cold cache.  Single-flight coalescing must hold the
  cluster-wide simulation count to exactly one request's worth of
  cells, with every request still accounting for every cell.
* ``parity`` — a catalog panel (fig9 / 5-tasks, quick) served cold over
  HTTP against a direct in-process :func:`utilization_sweep` of the
  same config.  The streamed raw and normalized tables must match the
  in-process rows bit for bit (JSON round-trips doubles exactly, so
  ``==`` is a bit-identity check).
* ``distributed`` — a cold sweep fanned out to :data:`DIST_WORKERS`
  loopback ``rtdvs worker`` subprocesses (one of them running with
  ``RTDVS_NO_NUMPY=1``, so the mixed fleet doubles as a no-numpy
  differential) vs the same sweep in-process, plus a second fleet where
  one worker is SIGKILLed mid-sweep.  Both distributed results must be
  bit-identical to the in-process rows with every cell delivered
  exactly once.

Usage::

    PYTHONPATH=src python benchmarks/service_workload.py \
        [--out PATH] [--only WORKLOAD]...
    make bench-service       # all workloads
    make bench-dist          # --only distributed (merges into --out)

``--only`` runs a subset and merges its entries into an existing
``--out`` report, leaving the other workloads' numbers untouched.

Regression gates (non-zero exit on violation; each gate applies only
when its workload was run):

* ``warm_http`` warm throughput must reach
  :data:`WARM_FLOOR_CELLS_PER_SEC` cells/s with zero simulations;
* ``dedup`` total simulated cells across K concurrent identical
  requests must equal one request's worth;
* ``parity`` tables must be bit-identical to the in-process sweep
  (checked inline — divergence aborts the run before any JSON is
  written), and cold served wall time must stay within
  :data:`OVERHEAD_CEILING_PCT` percent of the in-process sweep;
* ``distributed`` must deliver every cell exactly once in both the
  clean and the worker-kill runs (bit-identity checked inline), and the
  clean fan-out must clear :data:`DIST_SPEEDUP_FLOOR` x over
  in-process when the box has at least :data:`DIST_WORKERS` CPUs — on
  smaller boxes the floor is clamped proportionally to the effective
  lanes (``min(workers, cpus)``), since loopback workers cannot beat
  the physical core count.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.cellcache import CellCache  # noqa: E402
from repro.analysis.sweep import utilization_sweep  # noqa: E402
from repro.catalog import panel_sweep_config  # noqa: E402
from repro.catalog.schema import PanelSpec  # noqa: E402
from repro.dist import RemoteCellExecutor  # noqa: E402
from repro.service import (ServiceThread, SweepService,  # noqa: E402
                           SweepServiceClient, TenantQuotas)

SEED = 2001

#: Warm (cache-first) HTTP serving floor, cells per second, measured on
#: the best of :data:`WARM_REPEATS` fully-warm requests.
WARM_FLOOR_CELLS_PER_SEC = 1000.0

#: Warm workload: 20 utilization points x 25 sets = 500 cells, small
#: enough (3 tasks, 100 s horizon) that the cold populating pass stays
#: in seconds while the warm passes exercise a real 500-entry cache.
WARM_SPEC = {
    "n_tasks": 3,
    "n_sets_quick": 25,
    "duration_quick": 100.0,
    "seed": SEED,
    "utilizations": [round(0.05 + 0.9 * i / 19, 4) for i in range(20)],
}
WARM_CELLS = 20 * 25
WARM_REPEATS = 3

#: Dedup workload: K identical concurrent requests over a 4-cell spec.
DEDUP_K = 4
DEDUP_SPEC = {
    "n_tasks": 3,
    "n_sets_quick": 2,
    "duration_quick": 200.0,
    "seed": SEED,
    "utilizations": [0.5, 0.9],
}
DEDUP_CELLS = 2 * 2

#: Parity workload: one catalog panel, quick scale (80 cells).  The CI
#: smoke (``benchmarks/service_smoke.py``) covers the full fig9 scenario
#: through a real ``rtdvs serve`` subprocess.
PARITY_SCENARIO = "fig9"
PARITY_PANEL = "5-tasks"

#: Ceiling on cold served-vs-in-process wall-time overhead (percent).
OVERHEAD_CEILING_PCT = 15.0

#: Distributed workload: loopback worker fleet size, and the cold-sweep
#: speedup the fleet must deliver over in-process when the box actually
#: has that many CPUs.  Cells are deliberately meaty (5 tasks, 500 s
#: horizon, ~25 ms each) so the wire cost stays a rounding error.
DIST_WORKERS = 4
DIST_SPEEDUP_FLOOR = 2.5
DIST_SPEC = {
    "n_tasks": 5,
    "n_sets_quick": 8,
    "duration_quick": 500.0,
    "seed": SEED,
    "utilizations": [round(0.3 + 0.08 * i, 4) for i in range(8)],
}
DIST_CELLS = 8 * 8


def _fresh_service(tmp):
    cache = CellCache(os.path.join(tmp, "cells"))
    return SweepService(cache=cache,
                        quotas=TenantQuotas(max_inflight=DEDUP_K * 2))


def bench_warm_http():
    """Cold-populate 500 cells, then time fully-warm HTTP serving."""
    with tempfile.TemporaryDirectory() as tmp:
        with ServiceThread(_fresh_service(tmp)) as handle:
            client = SweepServiceClient(port=handle.port)
            start = time.perf_counter()
            cold = client.submit_collect({"spec": WARM_SPEC})
            cold_s = time.perf_counter() - start
            if cold["done"]["simulated_cells"] != WARM_CELLS:
                raise SystemExit(
                    f"warm_http: cold pass simulated "
                    f"{cold['done']['simulated_cells']}/{WARM_CELLS} cells")
            best_s = None
            warm = None
            for _ in range(WARM_REPEATS):
                start = time.perf_counter()
                warm = client.submit_collect({"spec": WARM_SPEC})
                elapsed = time.perf_counter() - start
                best_s = elapsed if best_s is None else min(best_s, elapsed)
                if warm["done"]["simulated_cells"] != 0:
                    raise SystemExit(
                        f"warm_http: warm pass simulated "
                        f"{warm['done']['simulated_cells']} cells "
                        "(expected 0)")
            if warm["results"][0]["raw"] != cold["results"][0]["raw"]:
                raise SystemExit(
                    "warm_http: warm tables diverged from the cold pass")
    return {
        "cells": WARM_CELLS,
        "n_tasks": WARM_SPEC["n_tasks"],
        "duration": WARM_SPEC["duration_quick"],
        "cold_wall_seconds": round(cold_s, 6),
        "cold_cells_per_sec": round(WARM_CELLS / cold_s, 1),
        "warm_wall_seconds": round(best_s, 6),
        "warm_cells_per_sec": round(WARM_CELLS / best_s, 1),
        "warm_repeats": WARM_REPEATS,
        "warm_simulated_cells": warm["done"]["simulated_cells"],
        "warm_cache_hits": warm["done"]["cache_hits"],
    }


def bench_dedup():
    """K identical concurrent requests must simulate one request's worth."""
    dones = []
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        service = _fresh_service(tmp)
        with ServiceThread(service) as handle:
            def submit():
                try:
                    client = SweepServiceClient(port=handle.port)
                    dones.append(
                        client.submit_collect({"spec": DEDUP_SPEC})["done"])
                except Exception as exc:
                    failures.append(repr(exc))

            start = time.perf_counter()
            threads = [threading.Thread(target=submit)
                       for _ in range(DEDUP_K)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            elapsed = time.perf_counter() - start
        flight = service.single_flight.stats()
    if failures:
        raise SystemExit(f"dedup: request failures: {failures}")
    if len(dones) != DEDUP_K:
        raise SystemExit(f"dedup: only {len(dones)}/{DEDUP_K} requests "
                         "completed")
    per_request = [(d["simulated_cells"], d["coalesced_cells"],
                    d["cache_hits"]) for d in dones]
    for simulated, coalesced, hits in per_request:
        if simulated + coalesced + hits != DEDUP_CELLS:
            raise SystemExit(
                f"dedup: a request accounted for "
                f"{simulated + coalesced + hits}/{DEDUP_CELLS} cells")
    return {
        "concurrent_requests": DEDUP_K,
        "cells_per_request": DEDUP_CELLS,
        "wall_seconds": round(elapsed, 6),
        "total_simulated_cells": sum(d["simulated_cells"] for d in dones),
        "total_coalesced_cells": sum(d["coalesced_cells"] for d in dones),
        "total_cache_hits": sum(d["cache_hits"] for d in dones),
        "single_flight": flight,
    }


def bench_parity():
    """Cold HTTP serving vs direct in-process sweep, bit for bit."""
    config = panel_sweep_config(PARITY_SCENARIO, PARITY_PANEL, quick=True)
    start = time.perf_counter()
    direct = utilization_sweep(config)
    direct_s = time.perf_counter() - start
    with tempfile.TemporaryDirectory() as tmp:
        with ServiceThread(_fresh_service(tmp)) as handle:
            client = SweepServiceClient(port=handle.port)
            start = time.perf_counter()
            served = client.submit_collect({"scenario": PARITY_SCENARIO,
                                            "panel": PARITY_PANEL})
            served_s = time.perf_counter() - start
    result = served["results"][0]
    cells = len(config.utilizations) * config.n_sets
    for name, streamed, local in (
            ("raw", result["raw"], direct.raw.rows()),
            ("normalized", result["normalized"], direct.normalized.rows())):
        if streamed != local:
            raise SystemExit(
                f"parity: streamed {name} tables diverged from the "
                "in-process sweep")
    if result["xs"] != list(direct.raw.xs):
        raise SystemExit("parity: utilization axis diverged")
    return {
        "scenario": PARITY_SCENARIO,
        "panel": PARITY_PANEL,
        "cells": cells,
        "direct_wall_seconds": round(direct_s, 6),
        "served_wall_seconds": round(served_s, 6),
        "serving_overhead_pct": round(
            100.0 * (served_s / direct_s - 1.0), 1),
        "bit_identical": True,
    }


def _dist_config():
    return PanelSpec.from_dict(dict(DIST_SPEC, label="inline")) \
        .sweep_config(quick=True)


def _spawn_workers(executor, count):
    """Launch ``count`` rtdvs worker subprocesses against ``executor``.

    Worker 0 runs with ``RTDVS_NO_NUMPY=1`` so every fleet is a mixed
    numpy/pure-python differential: bit-identity of the merged result
    proves the two kernel paths agree over the wire.
    """
    procs = []
    for index in range(count):
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(REPO_ROOT / "src") + os.pathsep
                             + env.get("PYTHONPATH", ""))
        if index == 0:
            env["RTDVS_NO_NUMPY"] = "1"
        procs.append(subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", f"{executor.host}:{executor.port}", "--quiet"],
            env=env, cwd=str(REPO_ROOT),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL))
    return procs


def _reap_workers(procs):
    for proc in procs:
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


def _check_dist_run(leg, result, raw, normalized):
    if result.raw.rows() != raw or result.normalized.rows() != normalized:
        raise SystemExit(
            f"distributed: {leg} tables diverged from in-process")
    if result.simulated_cells != DIST_CELLS:
        raise SystemExit(
            f"distributed: {leg} delivered {result.simulated_cells}"
            f"/{DIST_CELLS} cells")


def bench_distributed():
    """Cold fan-out to a loopback worker fleet vs in-process, twice:
    once clean (timed) and once with a worker SIGKILLed mid-sweep."""
    config = _dist_config()
    start = time.perf_counter()
    direct = utilization_sweep(config)
    direct_s = time.perf_counter() - start
    raw, normalized = direct.raw.rows(), direct.normalized.rows()

    executor = RemoteCellExecutor()
    procs = _spawn_workers(executor, DIST_WORKERS)
    try:
        if not executor.wait_for_workers(DIST_WORKERS, timeout=60):
            raise SystemExit("distributed: worker fleet failed to connect")
        start = time.perf_counter()
        dist = utilization_sweep(config, executor=executor)
        dist_s = time.perf_counter() - start
        ipc_bytes = executor.ipc_bytes
    finally:
        executor.shutdown()
        _reap_workers(procs)
    _check_dist_run("fan-out", dist, raw, normalized)

    # Worker-kill leg: same fleet, one worker SIGKILLed mid-sweep.  The
    # dropped connection releases its lease; survivors re-run the lost
    # cells; the result must still deliver every cell exactly once.
    executor = RemoteCellExecutor()
    procs = _spawn_workers(executor, DIST_WORKERS)
    box = {}
    try:
        if not executor.wait_for_workers(DIST_WORKERS, timeout=60):
            raise SystemExit("distributed: kill-leg fleet failed to connect")

        def run():
            try:
                box["result"] = utilization_sweep(config, executor=executor)
            except BaseException as exc:
                box["error"] = exc

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        # Kill a numpy worker (not worker 0) once the sweep is underway.
        time.sleep(max(0.2, 0.25 * dist_s))
        procs[1].kill()
        thread.join(timeout=300)
        if thread.is_alive():
            raise SystemExit("distributed: kill-leg sweep did not finish")
        if "error" in box:
            raise SystemExit(
                f"distributed: kill-leg sweep failed: {box['error']!r}")
        kill = box["result"]
        kill_duplicates = executor.duplicates_dropped
    finally:
        executor.shutdown()
        _reap_workers(procs)
    _check_dist_run("worker-kill", kill, raw, normalized)

    lanes = max(1, min(DIST_WORKERS, os.cpu_count() or 1))
    floor = DIST_SPEEDUP_FLOOR if lanes >= DIST_WORKERS \
        else round(DIST_SPEEDUP_FLOOR * lanes / DIST_WORKERS, 3)
    return {
        "cells": DIST_CELLS,
        "workers": DIST_WORKERS,
        "no_numpy_workers": 1,
        "effective_lanes": lanes,
        "in_process_wall_seconds": round(direct_s, 6),
        "distributed_wall_seconds": round(dist_s, 6),
        "speedup": round(direct_s / dist_s, 3),
        "speedup_floor_effective": floor,
        "simulated_cells": dist.simulated_cells,
        "workers_used": dist.workers_used,
        "retries": dist.retries,
        "ipc_bytes": ipc_bytes,
        "bit_identical": True,
        "kill": {
            "simulated_cells": kill.simulated_cells,
            "lost_cells": DIST_CELLS - kill.simulated_cells,
            "retries": kill.retries,
            "duplicates_dropped": kill_duplicates,
            "workers_used": kill.workers_used,
            "bit_identical": True,
        },
    }


def check_service_gates(report):
    """Service regression gates; returns failure strings.

    Each gate applies only to workloads present in the report, so a
    ``--only`` run is gated on exactly what it measured.
    """
    failures = []
    warm = report["workloads"].get("warm_http")
    if warm:
        if warm["warm_cells_per_sec"] < WARM_FLOOR_CELLS_PER_SEC:
            failures.append(
                f"warm_http: {warm['warm_cells_per_sec']} cells/s below the "
                f"{WARM_FLOOR_CELLS_PER_SEC:g} cells/s warm serving floor")
        if warm["warm_simulated_cells"] != 0:
            failures.append(
                f"warm_http: warm pass simulated "
                f"{warm['warm_simulated_cells']} cells (expected 0)")
    dedup = report["workloads"].get("dedup")
    if dedup and dedup["total_simulated_cells"] != dedup["cells_per_request"]:
        failures.append(
            f"dedup: {dedup['concurrent_requests']} identical concurrent "
            f"requests simulated {dedup['total_simulated_cells']} cells "
            f"(expected exactly {dedup['cells_per_request']} — one "
            "request's worth)")
    parity = report["workloads"].get("parity")
    if parity and parity["serving_overhead_pct"] > OVERHEAD_CEILING_PCT:
        failures.append(
            f"parity: {parity['serving_overhead_pct']:+.1f}% served-vs-"
            f"in-process overhead above the {OVERHEAD_CEILING_PCT:g}% "
            "ceiling")
    dist = report["workloads"].get("distributed")
    if dist:
        if dist["speedup"] < dist["speedup_floor_effective"]:
            failures.append(
                f"distributed: {dist['speedup']}x fan-out speedup below "
                f"the {dist['speedup_floor_effective']}x floor "
                f"({dist['effective_lanes']} effective lane(s))")
        if dist["simulated_cells"] != dist["cells"]:
            failures.append(
                f"distributed: fan-out delivered {dist['simulated_cells']}"
                f"/{dist['cells']} cells")
        if dist["kill"]["lost_cells"] != 0:
            failures.append(
                f"distributed: worker-kill run lost "
                f"{dist['kill']['lost_cells']} cell(s)")
    return failures


def _machine_fingerprint():
    return {"machine": platform.machine(), "cpus": os.cpu_count() or 1}


WORKLOADS = ("warm_http", "dedup", "parity", "distributed")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_service.json")
    parser.add_argument("--only", action="append", choices=WORKLOADS,
                        metavar="WORKLOAD",
                        help="run a subset (repeatable); entries merge "
                             "into an existing --out report")
    args = parser.parse_args(argv)
    selected = set(args.only or WORKLOADS)

    report = {
        "schema": 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "fingerprint": _machine_fingerprint(),
        "seed": SEED,
        "warm_floor_cells_per_sec": WARM_FLOOR_CELLS_PER_SEC,
        "overhead_ceiling_pct": OVERHEAD_CEILING_PCT,
        "workloads": {},
    }
    if args.only and args.out.exists():
        # Partial run: keep the other workloads' recorded numbers.
        report["workloads"] = json.loads(
            args.out.read_text()).get("workloads", {})

    if "warm_http" in selected:
        print(f"[bench] warm_http: {WARM_CELLS} cells over HTTP ...",
              flush=True)
        warm_entry = bench_warm_http()
        report["workloads"]["warm_http"] = warm_entry
        print(f"[bench]   cold {warm_entry['cold_cells_per_sec']:.0f} "
              f"cells/s, warm {warm_entry['warm_cells_per_sec']:.0f} "
              f"cells/s (floor {WARM_FLOOR_CELLS_PER_SEC:g}), warm "
              f"simulations {warm_entry['warm_simulated_cells']}",
              flush=True)

    if "dedup" in selected:
        print(f"[bench] dedup: {DEDUP_K} identical concurrent requests "
              "...", flush=True)
        dedup_entry = bench_dedup()
        report["workloads"]["dedup"] = dedup_entry
        print(f"[bench]   simulated {dedup_entry['total_simulated_cells']} "
              f"cells total (one request = {DEDUP_CELLS}), coalesced "
              f"{dedup_entry['total_coalesced_cells']}, cache hits "
              f"{dedup_entry['total_cache_hits']}", flush=True)

    if "parity" in selected:
        print(f"[bench] parity: {PARITY_SCENARIO}/{PARITY_PANEL} quick, "
              "served vs in-process ...", flush=True)
        parity_entry = bench_parity()
        report["workloads"]["parity"] = parity_entry
        print(f"[bench]   {parity_entry['cells']} cells: in-process "
              f"{parity_entry['direct_wall_seconds']:.2f}s vs served "
              f"{parity_entry['served_wall_seconds']:.2f}s "
              f"({parity_entry['serving_overhead_pct']:+.1f}% overhead), "
              "tables bit-identical", flush=True)

    if "distributed" in selected:
        print(f"[bench] distributed: {DIST_CELLS} cells, "
              f"{DIST_WORKERS} loopback workers (one RTDVS_NO_NUMPY=1) "
              "vs in-process, then a worker-kill run ...", flush=True)
        dist_entry = bench_distributed()
        report["workloads"]["distributed"] = dist_entry
        kill = dist_entry["kill"]
        print(f"[bench]   in-process "
              f"{dist_entry['in_process_wall_seconds']:.2f}s vs "
              f"{dist_entry['workers_used']} workers "
              f"{dist_entry['distributed_wall_seconds']:.2f}s = "
              f"{dist_entry['speedup']}x (floor "
              f"{dist_entry['speedup_floor_effective']}x on "
              f"{dist_entry['effective_lanes']} lane(s)); kill run: "
              f"{kill['simulated_cells']}/{DIST_CELLS} cells, "
              f"{kill['retries']} retried, "
              f"{kill['duplicates_dropped']} duplicates dropped",
              flush=True)

    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {args.out}")

    # Gate only what this invocation measured; merged-in entries from a
    # previous run were gated when they were produced.
    failures = check_service_gates({
        "workloads": {name: entry
                      for name, entry in report["workloads"].items()
                      if name in selected}})
    for failure in failures:
        print(f"[bench] FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
