#!/usr/bin/env python
"""Service-tier performance: HTTP sweep serving -> BENCH_service.json.

Runs the sweep service (``rtdvs serve``) on an ephemeral loopback port —
the real asyncio server with the real blocking client, not an in-process
shortcut — and records three workloads in ``BENCH_service.json`` at the
repository root:

* ``warm_http`` — a 500-cell inline sweep served twice: once cold (to
  populate the CTR1 cell cache) and then repeatedly warm.  The warm
  requests must simulate nothing, and the best warm pass must clear the
  cache-first read path's throughput floor over HTTP, streaming
  included.
* ``dedup`` — K identical requests submitted concurrently from K client
  threads against a cold cache.  Single-flight coalescing must hold the
  cluster-wide simulation count to exactly one request's worth of
  cells, with every request still accounting for every cell.
* ``parity`` — a catalog panel (fig9 / 5-tasks, quick) served cold over
  HTTP against a direct in-process :func:`utilization_sweep` of the
  same config.  The streamed raw and normalized tables must match the
  in-process rows bit for bit (JSON round-trips doubles exactly, so
  ``==`` is a bit-identity check).

Usage::

    PYTHONPATH=src python benchmarks/service_workload.py [--out PATH]
    make bench-service

Regression gates (non-zero exit on violation):

* ``warm_http`` warm throughput must reach
  :data:`WARM_FLOOR_CELLS_PER_SEC` cells/s with zero simulations;
* ``dedup`` total simulated cells across K concurrent identical
  requests must equal one request's worth;
* ``parity`` tables must be bit-identical to the in-process sweep
  (checked inline — divergence aborts the run before any JSON is
  written).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.cellcache import CellCache  # noqa: E402
from repro.analysis.sweep import utilization_sweep  # noqa: E402
from repro.catalog import panel_sweep_config  # noqa: E402
from repro.service import (ServiceThread, SweepService,  # noqa: E402
                           SweepServiceClient, TenantQuotas)

SEED = 2001

#: Warm (cache-first) HTTP serving floor, cells per second, measured on
#: the best of :data:`WARM_REPEATS` fully-warm requests.
WARM_FLOOR_CELLS_PER_SEC = 1000.0

#: Warm workload: 20 utilization points x 25 sets = 500 cells, small
#: enough (3 tasks, 100 s horizon) that the cold populating pass stays
#: in seconds while the warm passes exercise a real 500-entry cache.
WARM_SPEC = {
    "n_tasks": 3,
    "n_sets_quick": 25,
    "duration_quick": 100.0,
    "seed": SEED,
    "utilizations": [round(0.05 + 0.9 * i / 19, 4) for i in range(20)],
}
WARM_CELLS = 20 * 25
WARM_REPEATS = 3

#: Dedup workload: K identical concurrent requests over a 4-cell spec.
DEDUP_K = 4
DEDUP_SPEC = {
    "n_tasks": 3,
    "n_sets_quick": 2,
    "duration_quick": 200.0,
    "seed": SEED,
    "utilizations": [0.5, 0.9],
}
DEDUP_CELLS = 2 * 2

#: Parity workload: one catalog panel, quick scale (80 cells).  The CI
#: smoke (``benchmarks/service_smoke.py``) covers the full fig9 scenario
#: through a real ``rtdvs serve`` subprocess.
PARITY_SCENARIO = "fig9"
PARITY_PANEL = "5-tasks"


def _fresh_service(tmp):
    cache = CellCache(os.path.join(tmp, "cells"))
    return SweepService(cache=cache,
                        quotas=TenantQuotas(max_inflight=DEDUP_K * 2))


def bench_warm_http():
    """Cold-populate 500 cells, then time fully-warm HTTP serving."""
    with tempfile.TemporaryDirectory() as tmp:
        with ServiceThread(_fresh_service(tmp)) as handle:
            client = SweepServiceClient(port=handle.port)
            start = time.perf_counter()
            cold = client.submit_collect({"spec": WARM_SPEC})
            cold_s = time.perf_counter() - start
            if cold["done"]["simulated_cells"] != WARM_CELLS:
                raise SystemExit(
                    f"warm_http: cold pass simulated "
                    f"{cold['done']['simulated_cells']}/{WARM_CELLS} cells")
            best_s = None
            warm = None
            for _ in range(WARM_REPEATS):
                start = time.perf_counter()
                warm = client.submit_collect({"spec": WARM_SPEC})
                elapsed = time.perf_counter() - start
                best_s = elapsed if best_s is None else min(best_s, elapsed)
                if warm["done"]["simulated_cells"] != 0:
                    raise SystemExit(
                        f"warm_http: warm pass simulated "
                        f"{warm['done']['simulated_cells']} cells "
                        "(expected 0)")
            if warm["results"][0]["raw"] != cold["results"][0]["raw"]:
                raise SystemExit(
                    "warm_http: warm tables diverged from the cold pass")
    return {
        "cells": WARM_CELLS,
        "n_tasks": WARM_SPEC["n_tasks"],
        "duration": WARM_SPEC["duration_quick"],
        "cold_wall_seconds": round(cold_s, 6),
        "cold_cells_per_sec": round(WARM_CELLS / cold_s, 1),
        "warm_wall_seconds": round(best_s, 6),
        "warm_cells_per_sec": round(WARM_CELLS / best_s, 1),
        "warm_repeats": WARM_REPEATS,
        "warm_simulated_cells": warm["done"]["simulated_cells"],
        "warm_cache_hits": warm["done"]["cache_hits"],
    }


def bench_dedup():
    """K identical concurrent requests must simulate one request's worth."""
    dones = []
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        service = _fresh_service(tmp)
        with ServiceThread(service) as handle:
            def submit():
                try:
                    client = SweepServiceClient(port=handle.port)
                    dones.append(
                        client.submit_collect({"spec": DEDUP_SPEC})["done"])
                except Exception as exc:
                    failures.append(repr(exc))

            start = time.perf_counter()
            threads = [threading.Thread(target=submit)
                       for _ in range(DEDUP_K)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            elapsed = time.perf_counter() - start
        flight = service.single_flight.stats()
    if failures:
        raise SystemExit(f"dedup: request failures: {failures}")
    if len(dones) != DEDUP_K:
        raise SystemExit(f"dedup: only {len(dones)}/{DEDUP_K} requests "
                         "completed")
    per_request = [(d["simulated_cells"], d["coalesced_cells"],
                    d["cache_hits"]) for d in dones]
    for simulated, coalesced, hits in per_request:
        if simulated + coalesced + hits != DEDUP_CELLS:
            raise SystemExit(
                f"dedup: a request accounted for "
                f"{simulated + coalesced + hits}/{DEDUP_CELLS} cells")
    return {
        "concurrent_requests": DEDUP_K,
        "cells_per_request": DEDUP_CELLS,
        "wall_seconds": round(elapsed, 6),
        "total_simulated_cells": sum(d["simulated_cells"] for d in dones),
        "total_coalesced_cells": sum(d["coalesced_cells"] for d in dones),
        "total_cache_hits": sum(d["cache_hits"] for d in dones),
        "single_flight": flight,
    }


def bench_parity():
    """Cold HTTP serving vs direct in-process sweep, bit for bit."""
    config = panel_sweep_config(PARITY_SCENARIO, PARITY_PANEL, quick=True)
    start = time.perf_counter()
    direct = utilization_sweep(config)
    direct_s = time.perf_counter() - start
    with tempfile.TemporaryDirectory() as tmp:
        with ServiceThread(_fresh_service(tmp)) as handle:
            client = SweepServiceClient(port=handle.port)
            start = time.perf_counter()
            served = client.submit_collect({"scenario": PARITY_SCENARIO,
                                            "panel": PARITY_PANEL})
            served_s = time.perf_counter() - start
    result = served["results"][0]
    cells = len(config.utilizations) * config.n_sets
    for name, streamed, local in (
            ("raw", result["raw"], direct.raw.rows()),
            ("normalized", result["normalized"], direct.normalized.rows())):
        if streamed != local:
            raise SystemExit(
                f"parity: streamed {name} tables diverged from the "
                "in-process sweep")
    if result["xs"] != list(direct.raw.xs):
        raise SystemExit("parity: utilization axis diverged")
    return {
        "scenario": PARITY_SCENARIO,
        "panel": PARITY_PANEL,
        "cells": cells,
        "direct_wall_seconds": round(direct_s, 6),
        "served_wall_seconds": round(served_s, 6),
        "serving_overhead_pct": round(
            100.0 * (served_s / direct_s - 1.0), 1),
        "bit_identical": True,
    }


def check_service_gates(report):
    """Service regression gates; returns failure strings."""
    failures = []
    warm = report["workloads"]["warm_http"]
    if warm["warm_cells_per_sec"] < WARM_FLOOR_CELLS_PER_SEC:
        failures.append(
            f"warm_http: {warm['warm_cells_per_sec']} cells/s below the "
            f"{WARM_FLOOR_CELLS_PER_SEC:g} cells/s warm serving floor")
    if warm["warm_simulated_cells"] != 0:
        failures.append(
            f"warm_http: warm pass simulated "
            f"{warm['warm_simulated_cells']} cells (expected 0)")
    dedup = report["workloads"]["dedup"]
    if dedup["total_simulated_cells"] != dedup["cells_per_request"]:
        failures.append(
            f"dedup: {dedup['concurrent_requests']} identical concurrent "
            f"requests simulated {dedup['total_simulated_cells']} cells "
            f"(expected exactly {dedup['cells_per_request']} — one "
            "request's worth)")
    return failures


def _machine_fingerprint():
    return {"machine": platform.machine(), "cpus": os.cpu_count() or 1}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_service.json")
    args = parser.parse_args(argv)

    report = {
        "schema": 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "fingerprint": _machine_fingerprint(),
        "seed": SEED,
        "warm_floor_cells_per_sec": WARM_FLOOR_CELLS_PER_SEC,
        "workloads": {},
    }

    print(f"[bench] warm_http: {WARM_CELLS} cells over HTTP ...",
          flush=True)
    warm_entry = bench_warm_http()
    report["workloads"]["warm_http"] = warm_entry
    print(f"[bench]   cold {warm_entry['cold_cells_per_sec']:.0f} cells/s, "
          f"warm {warm_entry['warm_cells_per_sec']:.0f} cells/s "
          f"(floor {WARM_FLOOR_CELLS_PER_SEC:g}), warm simulations "
          f"{warm_entry['warm_simulated_cells']}", flush=True)

    print(f"[bench] dedup: {DEDUP_K} identical concurrent requests ...",
          flush=True)
    dedup_entry = bench_dedup()
    report["workloads"]["dedup"] = dedup_entry
    print(f"[bench]   simulated {dedup_entry['total_simulated_cells']} "
          f"cells total (one request = {DEDUP_CELLS}), coalesced "
          f"{dedup_entry['total_coalesced_cells']}, cache hits "
          f"{dedup_entry['total_cache_hits']}", flush=True)

    print(f"[bench] parity: {PARITY_SCENARIO}/{PARITY_PANEL} quick, "
          "served vs in-process ...", flush=True)
    parity_entry = bench_parity()
    report["workloads"]["parity"] = parity_entry
    print(f"[bench]   {parity_entry['cells']} cells: in-process "
          f"{parity_entry['direct_wall_seconds']:.2f}s vs served "
          f"{parity_entry['served_wall_seconds']:.2f}s "
          f"({parity_entry['serving_overhead_pct']:+.1f}% overhead), "
          "tables bit-identical", flush=True)

    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {args.out}")

    failures = check_service_gates(report)
    for failure in failures:
        print(f"[bench] FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
