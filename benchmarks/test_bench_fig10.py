"""Fig. 10 — idle-level sensitivity.

Regenerates the three panels at micro scale; the dynamic algorithms must
gain on the static ones as the idle level rises.
"""

import pytest

from benchmarks.conftest import micro_sweep, once


@pytest.mark.parametrize("idle_level", [0.01, 0.1, 1.0])
def test_bench_fig10_panel(benchmark, idle_level):
    sweep = once(benchmark, micro_sweep, n_tasks=8, seed=100,
                 idle_level=idle_level)
    la = sweep.normalized.get("laEDF").y_at(0.5)
    assert la < 0.85, "savings must persist at every idle level"


def test_bench_fig10_divergence(benchmark):
    def both():
        return (micro_sweep(n_tasks=8, seed=100, idle_level=0.01),
                micro_sweep(n_tasks=8, seed=100, idle_level=1.0))

    cheap, costly = once(benchmark, both)

    def gap(sweep):
        cc = sweep.normalized.get("ccEDF").ys
        st = sweep.normalized.get("staticEDF").ys
        return sum(s - c for s, c in zip(st, cc)) / len(cc)

    assert gap(costly) > gap(cheap), \
        "ccEDF must diverge below staticEDF as idle gets expensive"
