"""Benchmarks for the extension studies (beyond the paper's figures).

* the ext-future experiment driver (statistical guarantees + clairvoyance
  gap),
* the polling-server substrate under DVS,
* the oracle/bound gap decomposition as a standalone ablation.
"""

import pytest

from benchmarks.conftest import once
from repro import machine0, make_policy, simulate
from repro.aperiodic import AperiodicRequest, PollingServer
from repro.experiments import ext_future
from repro.model.task import Task, TaskSet
from repro.sim.bound import minimum_energy_for_cycles


def test_bench_ext_future(benchmark):
    result = once(benchmark, ext_future.run, quick=True)
    assert result.all_checks_pass, [str(c) for c in result.checks
                                    if not c.passed]


def test_bench_ext_battery(benchmark):
    from repro.experiments import ext_battery
    result = once(benchmark, ext_battery.run, quick=True)
    assert result.all_checks_pass, [str(c) for c in result.checks
                                    if not c.passed]


def test_bench_ext_server(benchmark):
    from repro.experiments import ext_server
    result = once(benchmark, ext_server.run, quick=True)
    assert result.all_checks_pass, [str(c) for c in result.checks
                                    if not c.passed]


def test_bench_ext_governors(benchmark):
    from repro.experiments import ext_governors
    result = once(benchmark, ext_governors.run, quick=True)
    assert result.all_checks_pass, [str(c) for c in result.checks
                                    if not c.passed]


def test_bench_ext_mp(benchmark):
    from repro.experiments import ext_mp
    result = once(benchmark, ext_mp.run, quick=True)
    assert result.all_checks_pass, [str(c) for c in result.checks
                                    if not c.passed]


def test_bench_polling_server(benchmark):
    """A 1000 ms mixed periodic + aperiodic run with response analysis."""
    server = PollingServer(budget=3.0, period=15.0, name="server")
    taskset = TaskSet([Task(3, 10, name="a"), Task(8, 40, name="b"),
                       server.task])
    requests = [AperiodicRequest(float(5 + 20 * k), 2.0)
                for k in range(40)]

    def run():
        demand = server.demand_model(requests, base=0.9)
        result = simulate(taskset, machine0(), make_policy("ccEDF"),
                          demand=demand, duration=1000.0,
                          record_trace=True)
        return result, server.response_stats(result, requests)

    result, stats = benchmark(run)
    assert result.met_all_deadlines
    assert stats.completed_count >= 35
    # Budget 3 per period 15: one 2-cycle request per 20 ms never backs up
    # more than a couple of periods.
    assert stats.max_response < 3 * server.period


def test_bench_ablation_clairvoyance(benchmark):
    """bound <= oracle <= laEDF ordering on a mixed-demand workload."""
    from repro.analysis.sweep import materialize_demand
    from repro.model.demand import UniformFractionDemand
    from repro.model.generator import TaskSetGenerator

    sets = TaskSetGenerator(n_tasks=6, utilization=0.7,
                            seed=88).generate_many(5)

    def run():
        totals = {"bound": 0.0, "oracleEDF": 0.0, "ccEDF": 0.0}
        for index, ts in enumerate(sets):
            demand = materialize_demand(
                UniformFractionDemand(seed=index), ts, 1000.0)
            for name in ("oracleEDF", "ccEDF"):
                sim = simulate(ts, machine0(), make_policy(name),
                               demand=demand, duration=1000.0)
                totals[name] += sim.total_energy
                if name == "oracleEDF":
                    totals["bound"] += minimum_energy_for_cycles(
                        machine0(), sim.executed_cycles, 1000.0)
        return totals

    totals = once(benchmark, run)
    assert totals["bound"] <= totals["oracleEDF"] + 1e-6
    assert totals["oracleEDF"] <= totals["ccEDF"] + 1e-6
