#!/usr/bin/env python
"""Engine performance trajectory: canonical workloads -> BENCH_engine.json.

Runs a fixed battery of canonical workloads on both engines —
:class:`~repro.sim.engine.Simulator` (indexed event queues) and
:class:`~repro.sim.baseline.BaselineSimulator` (the pre-refactor linear
hot paths) — and records events/second, wall time, and peak RSS in
``BENCH_engine.json`` at the repository root.  Every run cross-checks that
the two engines produce identical energy and miss counts, so the speedup
numbers can never come from a semantic divergence.

Workloads
---------
* ``tasks10`` / ``tasks50`` / ``tasks200`` — generated task sets at the
  paper's period bands, utilization 0.7, with early completions (constant
  80 % demand) so release *and* completion hooks fire.  ``tasks10``/
  ``tasks50`` run under ccEDF; ``tasks200`` runs plain EDF so the number
  isolates the engine rather than the O(n) policy recalculation.
* ``fig9_sweep`` — a micro-scale Fig. 9-style utilization sweep (the
  dominant workload shape in practice), timed end-to-end with the indexed
  engine only.

Usage::

    PYTHONPATH=src python benchmarks/write_bench_json.py [--out PATH]
    make bench

The file keeps both engines' numbers side by side, so future PRs have a
recorded pre-refactor baseline to compare against; ``speedup_events_per_sec``
is the headline ratio (indexed / baseline).
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.sweep import SweepConfig, utilization_sweep  # noqa: E402
from repro.core import make_policy  # noqa: E402
from repro.hw.machine import machine0  # noqa: E402
from repro.model.generator import TaskSetGenerator  # noqa: E402
from repro.obs import MetricsCollector  # noqa: E402
from repro.sim.baseline import BaselineSimulator  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402

#: (name, n_tasks, policy, duration) — durations are sized so the baseline
#: engine finishes each workload in seconds while still processing enough
#: events for stable rates.
WORKLOADS = (
    ("tasks10", 10, "ccEDF", 2000.0),
    ("tasks50", 50, "ccEDF", 600.0),
    ("tasks200", 200, "EDF", 200.0),
)

UTILIZATION = 0.7
DEMAND = 0.8
SEED = 2001  # the paper's year; fixed so the workloads never drift
REPEATS = 3

#: Ceiling on the events/sec cost of attaching a MetricsCollector,
#: enforced on the tasks200 workload (the hottest per-event path).
MAX_INSTRUMENT_OVERHEAD_PCT = 2.0


def _peak_rss_kb() -> int:
    """Peak RSS of this process in kilobytes (Linux ru_maxrss unit)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _run_engine(engine_cls, taskset, policy_name, duration):
    """Best-of-REPEATS wall time for one engine on one workload."""
    best = None
    result = None
    for _ in range(REPEATS):
        sim = engine_cls(taskset, machine0(), make_policy(policy_name),
                         demand=DEMAND, duration=duration, on_miss="drop")
        start = time.perf_counter()
        result = sim.run()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    completions = sum(1 for job in result.jobs if job.is_complete)
    events = len(result.jobs) + completions + result.switches
    return {
        "wall_seconds": round(best, 6),
        "events": events,
        "events_per_sec": round(events / best, 1),
        "jobs": len(result.jobs),
        "switches": result.switches,
        "energy": result.total_energy,
        "misses": len(result.misses),
    }


def _instrument_overhead(taskset, policy_name, duration, indexed,
                         repeats=8):
    """Instrumented-vs-uninstrumented delta on the indexed engine.

    Measured in *CPU* time (``time.process_time``) over interleaved
    best-of-``repeats`` pairs: the container this runs in is subject to
    CPU-quota throttling and heavy co-tenancy, which makes a <= 2 %
    wall-clock comparison meaningless (observed wall noise is 10-20 %).
    CPU time is unaffected by scheduling pauses, and best-of discards
    frequency-ramp outliers.
    """
    def once(instrumented):
        collector = MetricsCollector() if instrumented else None
        sim = Simulator(taskset, machine0(), make_policy(policy_name),
                        demand=DEMAND, duration=duration, on_miss="drop",
                        instrument=collector)
        start = time.process_time()
        result = sim.run()
        elapsed = time.process_time() - start
        completions = sum(1 for job in result.jobs if job.is_complete)
        events = len(result.jobs) + completions + result.switches
        return events / elapsed, result, collector

    once(False)  # warm-up (adaptive-interpreter specialization)
    once(True)
    base = inst = 0.0
    result = collector = None
    for _ in range(repeats):
        base = max(base, once(False)[0])
        rate, result, collector = once(True)
        inst = max(inst, rate)
    # The collector must observe the run it timed, exactly.
    if result.total_energy != indexed["energy"] \
            or len(result.misses) != indexed["misses"]:
        raise SystemExit(
            "attaching a MetricsCollector changed the run — "
            f"(E={result.total_energy}, misses={len(result.misses)}) vs "
            f"(E={indexed['energy']}, misses={indexed['misses']})")
    metrics = collector.metrics
    assert metrics.frequency_switches == result.switches
    assert abs(metrics.residency_total - metrics.span) \
        <= 1e-9 * max(1.0, metrics.span)
    return {
        "events_per_sec_cpu": round(inst, 1),
        "uninstrumented_events_per_sec_cpu": round(base, 1),
        "overhead_pct": round(100.0 * (1.0 - inst / base), 2),
        "repeats": repeats,
        "context_switches": metrics.context_switches,
        "preemptions": metrics.preemptions,
    }


def bench_workload(name, n_tasks, policy_name, duration):
    taskset = TaskSetGenerator(n_tasks=n_tasks, utilization=UTILIZATION,
                               seed=SEED).generate()
    indexed = _run_engine(Simulator, taskset, policy_name, duration)
    legacy = _run_engine(BaselineSimulator, taskset, policy_name, duration)
    if indexed["energy"] != legacy["energy"] \
            or indexed["misses"] != legacy["misses"]:
        raise SystemExit(
            f"{name}: engines diverged — indexed "
            f"(E={indexed['energy']}, misses={indexed['misses']}) vs "
            f"baseline (E={legacy['energy']}, misses={legacy['misses']})")
    instrumented = _instrument_overhead(taskset, policy_name, duration,
                                        indexed)
    speedup = indexed["events_per_sec"] / legacy["events_per_sec"]
    overhead = instrumented["overhead_pct"]
    return {
        "n_tasks": n_tasks,
        "policy": policy_name,
        "utilization": UTILIZATION,
        "demand": DEMAND,
        "duration": duration,
        "indexed": indexed,
        "baseline": legacy,
        "instrumented": instrumented,
        "instrumented_overhead_pct": round(overhead, 2),
        "speedup_events_per_sec": round(speedup, 2),
    }


def bench_fig9_sweep():
    """Micro-scale Fig. 9-shaped sweep, wall-clock end to end."""
    config = SweepConfig(n_sets=3, utilizations=(0.3, 0.5, 0.7, 0.9),
                        duration=600.0, seed=SEED)
    start = time.perf_counter()
    result = utilization_sweep(config)
    elapsed = time.perf_counter() - start
    cells = len(config.utilizations) * config.n_sets
    return {
        "n_tasks": config.n_tasks,
        "n_sets": config.n_sets,
        "utilizations": list(config.utilizations),
        "duration": config.duration,
        "wall_seconds": round(elapsed, 6),
        "cells_per_sec": round(cells / elapsed, 2),
        "rm_fallbacks": result.rm_fallbacks,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_engine.json")
    args = parser.parse_args(argv)

    report = {
        "schema": 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "seed": SEED,
        "repeats": REPEATS,
        "workloads": {},
    }
    for name, n_tasks, policy_name, duration in WORKLOADS:
        print(f"[bench] {name}: {n_tasks} tasks, {policy_name}, "
              f"duration {duration:g} ...", flush=True)
        entry = bench_workload(name, n_tasks, policy_name, duration)
        report["workloads"][name] = entry
        print(f"[bench]   indexed {entry['indexed']['events_per_sec']:,.0f} "
              f"ev/s vs baseline {entry['baseline']['events_per_sec']:,.0f} "
              f"ev/s -> speedup {entry['speedup_events_per_sec']:.2f}x",
              flush=True)
        print(f"[bench]   instrumented "
              f"{entry['instrumented']['events_per_sec_cpu']:,.0f} ev/s "
              f"(CPU) vs "
              f"{entry['instrumented']['uninstrumented_events_per_sec_cpu']:,.0f}"
              f" -> overhead {entry['instrumented_overhead_pct']:+.2f}%",
              flush=True)
    print("[bench] fig9_sweep ...", flush=True)
    report["workloads"]["fig9_sweep"] = bench_fig9_sweep()
    report["peak_rss_kb"] = _peak_rss_kb()

    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {args.out}")

    headline = report["workloads"]["tasks200"]["speedup_events_per_sec"]
    print(f"[bench] headline (tasks200 speedup): {headline:.2f}x")
    overhead = report["workloads"]["tasks200"]["instrumented_overhead_pct"]
    print(f"[bench] tasks200 instrumentation overhead: {overhead:+.2f}% "
          f"(budget {MAX_INSTRUMENT_OVERHEAD_PCT:g}%)")
    if overhead > MAX_INSTRUMENT_OVERHEAD_PCT:
        print(f"[bench] FAIL: instrumentation overhead {overhead:.2f}% "
              f"exceeds the {MAX_INSTRUMENT_OVERHEAD_PCT:g}% budget")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
