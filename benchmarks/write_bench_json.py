#!/usr/bin/env python
"""Engine performance trajectory: canonical workloads -> BENCH_engine.json.

Runs a fixed battery of canonical workloads on both engines —
:class:`~repro.sim.engine.Simulator` (indexed event queues) and
:class:`~repro.sim.baseline.BaselineSimulator` (the pre-refactor linear
hot paths) — and records events/second, wall time, and peak RSS in
``BENCH_engine.json`` at the repository root.  Every run cross-checks that
the two engines produce identical energy and miss counts, so the speedup
numbers can never come from a semantic divergence.

Workloads
---------
* ``tasks10`` / ``tasks50`` / ``tasks200`` — generated task sets at the
  paper's period bands, utilization 0.7, with early completions (constant
  80 % demand) so release *and* completion hooks fire.  ``tasks10``/
  ``tasks50`` run under ccEDF; ``tasks200`` runs plain EDF so the number
  isolates the engine rather than the O(n) policy recalculation.
* ``fig9_sweep`` — a micro-scale Fig. 9-style utilization sweep (the
  dominant workload shape in practice), timed end-to-end with the indexed
  engine only, in three variants: serial (``workers=1``), parallel
  (``--parallel-workers``, default 4, through the barrier-free fan-out
  layer), and warm-cache (a rerun against a freshly populated cell cache,
  which must complete with **zero** simulations).
* ``policy_callbacks`` — per-event callback cost of ccEDF / ccRM / laEDF
  at 10, 50 and 200 tasks, measured by wrapping the policy in a timing
  proxy, with the incremental aggregates on and off.  The incremental and
  from-scratch runs must agree bit-for-bit on energy and switches.
* ``steady_fast_path`` — one fast-path-eligible Fig. 9-style cell batch
  (degenerate commensurable period bands, hyperperiod 100 against a
  4000 s horizon) swept with and without ``steady_fast_path``; curves must
  match to 1e-9 relative.
* ``trace_timeline`` — the trace layer in isolation: a ~190k-slice
  long-horizon stream replayed into both trace backends (legacy
  ``ExecutionTrace`` segment list vs columnar ``SimTimeline``), then the
  kernel battery (residency, busy/idle, frequency profile, executed
  cycles) and shipping (``to_bytes`` vs pickle).  Reductions must agree
  to 1e-9 relative.
* ``memory`` — peak-RSS comparison of the two trace backends on the
  n=200 long-horizon workload, one fresh subprocess per backend (see
  ``benchmarks/mem_workload.py`` / ``make bench-mem``).

Usage::

    PYTHONPATH=src python benchmarks/write_bench_json.py [--out PATH]
        [--parallel-workers N]
    make bench

The file keeps both engines' numbers side by side, so future PRs have a
recorded pre-refactor baseline to compare against; ``speedup_events_per_sec``
is the headline ratio (indexed / baseline).

Regression gates (non-zero exit on violation):

* instrumentation overhead per workload — ``tasks200`` against the tight
  2 % budget (hottest per-event path), ``tasks10``/``tasks50`` against a
  looser 10 % budget (short runs amortize collector setup over far fewer
  events, so their percentage is structurally noisier);
* ``fig9_sweep`` warm-cache rerun must simulate nothing;
* ``policy_callbacks`` incremental speedup at 200 tasks must reach 2x for
  every incremental policy (3x for laEDF, whose deferral loop is batched),
  and ccRM's one-time setup must stay under 20 ms (memoized vectorized
  RTA vs the old O(n^2) scheduling-point test);
* ``trace_timeline`` array-backend wall clock must reach 2x over the
  segment-list backend, with the columnar blob no larger than pickle;
* ``memory`` array-backend peak RSS must be >= 30 % below the
  segment-list backend, and must not exceed 1.25x the previous
  same-machine recording (tolerance documented at the constant);
* ``steady_fast_path`` wall-clock speedup on the eligible cell batch must
  reach 5x, with zero fallbacks;
* ``fig9_sweep`` parallel speedup must reach 3x with >= 4 effective CPUs
  (scaled down to 0.75x-per-CPU below that; skipped on one CPU, where no
  parallel speedup is physically available);
* ``fig9_sweep`` serial throughput must not regress below 70 % of the
  previous recording *when the previous recording came from the same
  machine fingerprint* (cross-machine wall-clock comparisons are noise);
* ``fig9_sweep_batch`` batch-engine cold throughput must reach 3x and the
  cross-cell block engine 10x the scalar engine on a 1000-cell column
  workload with bit-identical curves (numpy on *and* off, each variant
  recording its measured ``numpy_used`` flag), and a fresh scalar
  subprocess must finish an RTA-free sweep without numpy in
  ``sys.modules`` (the :mod:`numpy_guard` laziness invariant).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from mem_workload import RSS_TARGET_REDUCTION_PCT, measure_pair  # noqa: E402
from numpy_guard import numpy_violation  # noqa: E402

from repro.analysis.executor import effective_cpu_count  # noqa: E402
from repro.analysis.sweep import SweepConfig, utilization_sweep  # noqa: E402
from repro.core import make_policy  # noqa: E402
from repro.core.cycle_conserving import CycleConservingEDF  # noqa: E402
from repro.core.cycle_conserving_rm import CycleConservingRM  # noqa: E402
from repro.core.look_ahead import LookAheadEDF  # noqa: E402
from repro.hw.machine import machine0  # noqa: E402
from repro.model.generator import TaskSetGenerator  # noqa: E402
from repro.obs import MetricsCollector  # noqa: E402
from repro.sim.baseline import BaselineSimulator  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402

#: (name, n_tasks, policy, duration) — durations are sized so the baseline
#: engine finishes each workload in seconds while still processing enough
#: events for stable rates.
WORKLOADS = (
    ("tasks10", 10, "ccEDF", 2000.0),
    ("tasks50", 50, "ccEDF", 600.0),
    ("tasks200", 200, "EDF", 200.0),
)

UTILIZATION = 0.7
DEMAND = 0.8
SEED = 2001  # the paper's year; fixed so the workloads never drift
REPEATS = 3

#: Ceiling on the events/sec cost of attaching a MetricsCollector,
#: enforced on the tasks200 workload (the hottest per-event path).
MAX_INSTRUMENT_OVERHEAD_PCT = 2.0

#: Looser ceiling for the short tasks10/tasks50 workloads, whose runs
#: amortize collector setup over far fewer events (previously recorded at
#: 7.28 % / 6.31 % and entirely ungated).
MAX_INSTRUMENT_OVERHEAD_SMALL_PCT = 10.0

#: Per-workload instrumentation budgets — every workload is gated now.
INSTRUMENT_BUDGETS_PCT = {
    "tasks10": MAX_INSTRUMENT_OVERHEAD_SMALL_PCT,
    "tasks50": MAX_INSTRUMENT_OVERHEAD_SMALL_PCT,
    "tasks200": MAX_INSTRUMENT_OVERHEAD_PCT,
}

#: Overhead re-measurement attempts (best kept) before calling a breach.
INSTRUMENT_ATTEMPTS = 4

#: Parallel-sweep speedup target with >= this many effective CPUs.
PARALLEL_TARGET_SPEEDUP = 3.0
PARALLEL_TARGET_CPUS = 4

#: Serial sweep throughput must stay above this fraction of the previous
#: same-machine recording.
SERIAL_REGRESSION_FLOOR = 0.7

#: Cold-sweep throughput floor of the batch engine over the scalar engine
#: on the 1000-cell column workload.
BATCH_TARGET_SPEEDUP = 3.0

#: Cold-sweep throughput floor of the cross-cell block engine over the
#: scalar engine on the same workload (the lane passes must beat the
#: per-cell kernels by a wide margin, not just edge them out).
BLOCK_TARGET_SPEEDUP = 10.0

#: Policies for the batch workload: four paper policies whose runs sit
#: fully inside the batch-kernel envelope (laEDF's deferral loop and
#: ccRM's RTA-heavy setup dilute the ratio without exercising anything
#: the other four do not).
BATCH_WORKLOAD_POLICIES = ("EDF", "staticEDF", "staticRM", "ccEDF")

#: Incremental-vs-from-scratch per-callback speedup floor at 200 tasks.
POLICY_CALLBACK_TARGET_SPEEDUP = 2.0

#: Per-policy overrides of the callback speedup floor.  laEDF's deferral
#: loop got scratch-array hoisting and the batched
#: ``worst_case_remaining_each`` view read, which push it well past the
#: generic 2x; gate it at 3x so that headroom cannot silently erode.
POLICY_CALLBACK_TARGET_SPEEDUPS = {"laEDF": 3.0}

#: Ceiling on ccRM's one-time setup at 200 tasks (microseconds).  The
#: memoized vectorized RTA replaced the O(n^2)-scheduling-points exact
#: test that used to cost ~480,000 us here.
CCRM_SETUP_US_CEILING = 20_000.0

#: Task counts for the policy-callback microbenchmark.
POLICY_CALLBACK_TASK_COUNTS = (10, 50, 200)

#: Policies with an incremental mode to microbenchmark.
INCREMENTAL_POLICIES = ("ccEDF", "ccRM", "laEDF")

#: Hyperperiod short-circuit wall-clock speedup floor on the eligible cell.
FAST_PATH_TARGET_SPEEDUP = 5.0

#: Array-vs-segments wall-clock floor on the trace-layer replay workload
#: (record a long-horizon slice stream, run the kernel battery, ship it).
TRACE_TIMELINE_TARGET_SPEEDUP = 2.0

#: Peak-RSS reduction floor (percent) of the array backend over the
#: segment-list backend on the n=200 long-horizon memory workload
#: (single source of truth: ``benchmarks/mem_workload.py``).
MEM_RSS_TARGET_REDUCTION_PCT = RSS_TARGET_REDUCTION_PCT

#: Absolute peak-RSS regression tolerance against the previous recording
#: on the same machine fingerprint.  ``ru_maxrss`` is a high-watermark
#: that moves with allocator arena layout, interpreter version and page
#: reuse, so small drifts are noise; 1.25x is loose enough to absorb
#: that and still catch the failure modes this gate exists for — a stray
#: numpy import on the record path (~+30 MB) or a hot class losing its
#: ``__slots__`` (tens of MB at 200k+ objects).
PEAK_RSS_REGRESSION_TOLERANCE = 1.25


def _peak_rss_kb() -> int:
    """Peak RSS of this process in kilobytes (Linux ru_maxrss unit)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _run_engine(engine_cls, taskset, policy_name, duration):
    """Best-of-REPEATS wall time for one engine on one workload."""
    best = None
    result = None
    for _ in range(REPEATS):
        sim = engine_cls(taskset, machine0(), make_policy(policy_name),
                         demand=DEMAND, duration=duration, on_miss="drop")
        start = time.perf_counter()
        result = sim.run()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    completions = sum(1 for job in result.jobs if job.is_complete)
    events = len(result.jobs) + completions + result.switches
    return {
        "wall_seconds": round(best, 6),
        "events": events,
        "events_per_sec": round(events / best, 1),
        "jobs": len(result.jobs),
        "switches": result.switches,
        "energy": result.total_energy,
        "misses": len(result.misses),
    }


def _instrument_overhead(taskset, policy_name, duration, indexed,
                         repeats=8):
    """Instrumented-vs-uninstrumented delta on the indexed engine.

    Measured in *CPU* time (``time.process_time``) over interleaved
    best-of-``repeats`` pairs: the container this runs in is subject to
    CPU-quota throttling and heavy co-tenancy, which makes a <= 2 %
    wall-clock comparison meaningless (observed wall noise is 10-20 %).
    CPU time is unaffected by scheduling pauses, and best-of discards
    frequency-ramp outliers.
    """
    def once(instrumented):
        collector = MetricsCollector() if instrumented else None
        sim = Simulator(taskset, machine0(), make_policy(policy_name),
                        demand=DEMAND, duration=duration, on_miss="drop",
                        instrument=collector)
        start = time.process_time()
        result = sim.run()
        elapsed = time.process_time() - start
        completions = sum(1 for job in result.jobs if job.is_complete)
        events = len(result.jobs) + completions + result.switches
        return events / elapsed, result, collector

    once(False)  # warm-up (adaptive-interpreter specialization)
    once(True)
    base = inst = 0.0
    result = collector = None
    for _ in range(repeats):
        base = max(base, once(False)[0])
        rate, result, collector = once(True)
        inst = max(inst, rate)
    # The collector must observe the run it timed, exactly.
    if result.total_energy != indexed["energy"] \
            or len(result.misses) != indexed["misses"]:
        raise SystemExit(
            "attaching a MetricsCollector changed the run — "
            f"(E={result.total_energy}, misses={len(result.misses)}) vs "
            f"(E={indexed['energy']}, misses={indexed['misses']})")
    metrics = collector.metrics
    assert metrics.frequency_switches == result.switches
    assert abs(metrics.residency_total - metrics.span) \
        <= 1e-9 * max(1.0, metrics.span)
    return {
        "events_per_sec_cpu": round(inst, 1),
        "uninstrumented_events_per_sec_cpu": round(base, 1),
        "overhead_pct": round(100.0 * (1.0 - inst / base), 2),
        "repeats": repeats,
        "context_switches": metrics.context_switches,
        "preemptions": metrics.preemptions,
    }


def bench_workload(name, n_tasks, policy_name, duration):
    taskset = TaskSetGenerator(n_tasks=n_tasks, utilization=UTILIZATION,
                               seed=SEED).generate()
    indexed = _run_engine(Simulator, taskset, policy_name, duration)
    legacy = _run_engine(BaselineSimulator, taskset, policy_name, duration)
    if indexed["energy"] != legacy["energy"] \
            or indexed["misses"] != legacy["misses"]:
        raise SystemExit(
            f"{name}: engines diverged — indexed "
            f"(E={indexed['energy']}, misses={indexed['misses']}) vs "
            f"baseline (E={legacy['energy']}, misses={legacy['misses']})")
    # Collector overhead is a one-sided measurement: co-tenancy noise can
    # inflate it but never deflate a real regression below its true value,
    # so retry a few times and keep the *lowest* observed overhead.
    budget = INSTRUMENT_BUDGETS_PCT.get(name)
    instrumented = None
    for _ in range(INSTRUMENT_ATTEMPTS):
        attempt = _instrument_overhead(taskset, policy_name, duration,
                                       indexed)
        if instrumented is None \
                or attempt["overhead_pct"] < instrumented["overhead_pct"]:
            instrumented = attempt
        if budget is None or instrumented["overhead_pct"] <= budget:
            break
    speedup = indexed["events_per_sec"] / legacy["events_per_sec"]
    overhead = instrumented["overhead_pct"]
    return {
        "n_tasks": n_tasks,
        "policy": policy_name,
        "utilization": UTILIZATION,
        "demand": DEMAND,
        "duration": duration,
        "indexed": indexed,
        "baseline": legacy,
        "instrumented": instrumented,
        "instrumented_overhead_pct": round(overhead, 2),
        "speedup_events_per_sec": round(speedup, 2),
    }


#: name -> incremental-flag factory for the callback microbenchmark.
_INCREMENTAL_FACTORIES = {
    "ccEDF": lambda incremental: CycleConservingEDF(incremental=incremental),
    "ccRM": lambda incremental: CycleConservingRM(incremental=incremental),
    "laEDF": lambda incremental: LookAheadEDF(incremental=incremental),
}

#: n_tasks -> duration for the callback microbenchmark (mirrors WORKLOADS'
#: sizing: larger sets get shorter horizons so runs stay in seconds).
_CALLBACK_DURATIONS = {10: 2000.0, 50: 600.0, 200: 200.0}

#: Utilization for the callback benchmark — kept below the RM utilization
#: bound (ln 2) so ccRM's static-scaling step is feasible at every size.
CALLBACK_UTILIZATION = 0.5


class _TimedPolicy:
    """Timing proxy around a DVS policy.

    Accumulates wall time and call count across every *event* callback the
    engine fires, without touching the policy's decisions.  ``setup`` is
    timed separately: it is a one-time analysis (ccRM's embedded exact RM
    schedulability test is O(n^2) and identical in both modes), not a
    per-event cost, and folding it into the average would mask the hot
    path this benchmark exists to gate.  Deliberately does *not* define
    ``wakeup_time`` — the engine treats its presence as a capability, and
    none of the benched policies have it.
    """

    def __init__(self, inner):
        self.inner = inner
        self.name = inner.name
        self.scheduler = inner.scheduler
        self.calls = 0
        self.seconds = 0.0
        self.setup_seconds = 0.0

    def _timed(self, method, *args):
        start = time.perf_counter()
        result = method(*args)
        self.seconds += time.perf_counter() - start
        self.calls += 1
        return result

    def setup(self, view):
        start = time.perf_counter()
        result = self.inner.setup(view)
        self.setup_seconds += time.perf_counter() - start
        return result

    def on_releases_invalidate(self, view, tasks):
        # Part of the incremental maintenance cost (laEDF repositions the
        # whole release batch here), so it is timed like any callback.
        return self._timed(self.inner.on_releases_invalidate, view, tasks)

    def on_release(self, view, task):
        return self._timed(self.inner.on_release, view, task)

    def on_completion(self, view, task):
        return self._timed(self.inner.on_completion, view, task)

    def on_task_added(self, view, task):
        return self._timed(self.inner.on_task_added, view, task)

    def on_task_removed(self, view, task):
        return self._timed(self.inner.on_task_removed, view, task)

    def on_idle(self, view):
        return self._timed(self.inner.on_idle, view)


def _timed_policy_run(name, incremental, taskset, duration):
    """Best-of-REPEATS per-callback cost for one policy configuration."""
    best_us = None
    setup_us = None
    calls = 0
    result = None
    for _ in range(REPEATS):
        proxy = _TimedPolicy(_INCREMENTAL_FACTORIES[name](incremental))
        sim = Simulator(taskset, machine0(), proxy, demand=DEMAND,
                        duration=duration, on_miss="drop")
        run = sim.run()
        per_call = 1e6 * proxy.seconds / proxy.calls
        if best_us is None or per_call < best_us:
            best_us = per_call
            setup_us = 1e6 * proxy.setup_seconds
            calls = proxy.calls
            result = run
    return {"per_callback_us": round(best_us, 3),
            "setup_us": round(setup_us, 1),
            "callbacks": calls}, result


def bench_policy_callbacks():
    """Per-event callback cost, incremental vs from-scratch, per policy.

    The two modes must agree bit-for-bit on energy, switches and misses —
    the whole point of the incremental aggregates is that they change
    nothing but the cost.
    """
    entry = {
        "utilization": CALLBACK_UTILIZATION,
        "demand": DEMAND,
        "task_counts": list(POLICY_CALLBACK_TASK_COUNTS),
        "policies": {},
    }
    for name in INCREMENTAL_POLICIES:
        per_size = {}
        for n_tasks in POLICY_CALLBACK_TASK_COUNTS:
            duration = _CALLBACK_DURATIONS[n_tasks]
            taskset = TaskSetGenerator(
                n_tasks=n_tasks, utilization=CALLBACK_UTILIZATION,
                seed=SEED).generate()
            fast, fast_run = _timed_policy_run(name, True, taskset,
                                               duration)
            slow, slow_run = _timed_policy_run(name, False, taskset,
                                               duration)
            if fast_run.total_energy != slow_run.total_energy \
                    or fast_run.switches != slow_run.switches \
                    or len(fast_run.misses) != len(slow_run.misses):
                raise SystemExit(
                    f"policy_callbacks {name}/{n_tasks}: incremental run "
                    f"diverged from from-scratch — "
                    f"(E={fast_run.total_energy}, sw={fast_run.switches}) "
                    f"vs (E={slow_run.total_energy}, "
                    f"sw={slow_run.switches})")
            per_size[str(n_tasks)] = {
                "incremental": fast,
                "from_scratch": slow,
                "speedup": round(slow["per_callback_us"]
                                 / fast["per_callback_us"], 2),
            }
        entry["policies"][name] = per_size
    return entry


def check_callback_gates(entry):
    """policy_callbacks regression gates; returns failure strings."""
    failures = []
    top = str(POLICY_CALLBACK_TASK_COUNTS[-1])
    for name, per_size in entry["policies"].items():
        target = POLICY_CALLBACK_TARGET_SPEEDUPS.get(
            name, POLICY_CALLBACK_TARGET_SPEEDUP)
        speedup = per_size[top]["speedup"]
        if speedup < target:
            failures.append(
                f"policy_callbacks: {name} incremental speedup {speedup}x "
                f"at {top} tasks below the {target:g}x target")
    setup_us = entry["policies"]["ccRM"][top]["incremental"]["setup_us"]
    if setup_us > CCRM_SETUP_US_CEILING:
        failures.append(
            f"policy_callbacks: ccRM setup {setup_us:g} us at {top} tasks "
            f"exceeds the {CCRM_SETUP_US_CEILING:g} us ceiling (memoized "
            "RTA regressed toward the scheduling-point test)")
    return failures


def bench_steady_fast_path():
    """One fast-path-eligible cell batch, with and without the short-circuit.

    Degenerate commensurable period bands give every generated task set a
    hyperperiod of 100 against a 4000 s horizon, so each policy run
    simulates warmup + two hyperperiods (300 s) instead of 4000 s.
    """
    bands = ((25.0, 25.0), (50.0, 50.0), (100.0, 100.0))
    base = dict(n_tasks=8, n_sets=3, utilizations=(0.3, 0.5, 0.7),
                duration=4000.0, seed=SEED, period_bands=bands,
                cache_dir=None)
    start = time.perf_counter()
    full = utilization_sweep(SweepConfig(**base))
    full_s = time.perf_counter() - start
    start = time.perf_counter()
    fast = utilization_sweep(SweepConfig(**base, steady_fast_path=True))
    fast_s = time.perf_counter() - start
    worst_gap = 0.0
    for label in full.raw.labels():
        for a, b in zip(full.raw.get(label).ys, fast.raw.get(label).ys):
            worst_gap = max(worst_gap, abs(a - b) / max(abs(a), 1e-12))
    if worst_gap > 1e-9:
        raise SystemExit(
            f"steady_fast_path: extrapolated curves diverged from full "
            f"simulation (worst relative gap {worst_gap:.2e})")
    cells = len(base["utilizations"]) * base["n_sets"]
    return {
        "n_tasks": base["n_tasks"],
        "n_sets": base["n_sets"],
        "utilizations": list(base["utilizations"]),
        "duration": base["duration"],
        "period_bands": [list(band) for band in bands],
        "cells": cells,
        "full_wall_seconds": round(full_s, 6),
        "fast_wall_seconds": round(fast_s, 6),
        "speedup": round(full_s / fast_s, 2),
        "fast_path_cells": fast.fast_path_cells,
        "fallbacks": fast.fast_path_fallbacks,
        "worst_relative_gap": worst_gap,
    }


def check_fast_path_gates(entry):
    """steady_fast_path regression gates; returns failure strings."""
    failures = []
    if entry["speedup"] < FAST_PATH_TARGET_SPEEDUP:
        failures.append(
            f"steady_fast_path: speedup {entry['speedup']}x below the "
            f"{FAST_PATH_TARGET_SPEEDUP:g}x target")
    if entry["fast_path_cells"] != entry["cells"]:
        failures.append(
            f"steady_fast_path: only {entry['fast_path_cells']}/"
            f"{entry['cells']} cells took the short-circuit")
    if entry["fallbacks"]:
        failures.append(
            f"steady_fast_path: unexpected fallbacks {entry['fallbacks']} "
            "on an all-eligible batch")
    return failures


def _trace_stream():
    """A deterministic long-horizon slice stream for the replay workload.

    One real n=50 ccEDF run provides the slice pattern (realistic merge
    density, task/point interleaving); tiling six copies end to end makes
    the horizon long enough that recording, the kernel battery and
    shipping all operate on ~190k rows.
    """
    from repro.sim.timeline import KINDS

    taskset = TaskSetGenerator(n_tasks=50, utilization=UTILIZATION,
                               seed=SEED).generate()
    sim = Simulator(taskset, machine0(), make_policy("ccEDF"),
                    demand=DEMAND, duration=3200.0, on_miss="drop",
                    record_trace=True, trace_backend="array")
    source = sim.run().trace
    start, end, cycles, energy, task, op, kind = source.columns()
    names, points = source.task_names, source.points
    span = end[len(source) - 1]
    stream = []
    for copy in range(6):
        offset = copy * span
        for i in range(len(source)):
            stream.append((start[i] + offset, end[i] + offset,
                           names[task[i]] if task[i] >= 0 else None,
                           points[op[i]], cycles[i], energy[i],
                           KINDS[kind[i]]))
    return stream


def _replay_once(backend, stream):
    """Record + kernel battery + ship for one backend; returns timings."""
    import pickle

    from repro.obs.metrics import residency_from_trace
    from repro.sim.bound import trace_executed_cycles
    from repro.sim.timeline import make_trace

    start = time.perf_counter()
    trace = make_trace(True, backend)
    record = trace.record
    for piece in stream:
        record(*piece)
    record_s = time.perf_counter() - start
    start = time.perf_counter()
    battery = {
        "residency": residency_from_trace(trace),
        "busy": trace.busy_time(),
        "idle": trace.idle_time(),
        "profile": trace.frequency_profile(),
        "cycles": trace_executed_cycles(trace),
    }
    consume_s = time.perf_counter() - start
    start = time.perf_counter()
    if backend == "array":
        blob = trace.to_bytes()
    else:
        blob = pickle.dumps(trace)
    ship_s = time.perf_counter() - start
    return record_s, consume_s, ship_s, len(trace), len(blob), battery


def bench_trace_timeline():
    """Trace-layer replay workload: segment-list vs array backend.

    Isolates exactly what the columnar timeline changed — recording,
    trace-level reductions, serialization — on the same slice stream, so
    the ratio is not diluted by scheduler work that both backends share.
    The two backends must agree on every reduction to 1e-9 relative.
    """
    stream = _trace_stream()
    results = {}
    for backend in ("segments", "array"):
        best = None
        for _ in range(REPEATS):
            attempt = _replay_once(backend, stream)
            if best is None or sum(attempt[:3]) < sum(best[:3]):
                best = attempt
        record_s, consume_s, ship_s, rows, blob, battery = best
        results[backend] = {
            "record_seconds": round(record_s, 6),
            "consume_seconds": round(consume_s, 6),
            "ship_seconds": round(ship_s, 6),
            "wall_seconds": round(record_s + consume_s + ship_s, 6),
            "rows": rows,
            "blob_bytes": blob,
            "_battery": battery,
        }
    a, b = results["segments"]["_battery"], results["array"]["_battery"]
    if results["segments"]["rows"] != results["array"]["rows"]:
        raise SystemExit("trace_timeline: backends merged differently — "
                         f"{results['segments']['rows']} vs "
                         f"{results['array']['rows']} rows")
    for key in ("busy", "idle", "cycles"):
        if abs(a[key] - b[key]) > 1e-9 * max(1.0, abs(a[key])):
            raise SystemExit(
                f"trace_timeline: {key} diverged — {a[key]} vs {b[key]}")
    if sorted(a["residency"]) != sorted(b["residency"]) or any(
            abs(a["residency"][f] - b["residency"][f])
            > 1e-9 * max(1.0, abs(a["residency"][f]))
            for f in a["residency"]):
        raise SystemExit("trace_timeline: residency tables diverged")
    if a["profile"] != b["profile"]:
        raise SystemExit("trace_timeline: frequency profiles diverged")
    for entry in results.values():
        del entry["_battery"]
    speedup = (results["segments"]["wall_seconds"]
               / results["array"]["wall_seconds"])
    return {
        "slices": len(stream),
        "segments": results["segments"],
        "array": results["array"],
        "speedup": round(speedup, 2),
    }


def check_trace_timeline_gates(entry):
    """trace_timeline regression gates; returns failure strings."""
    failures = []
    if entry["speedup"] < TRACE_TIMELINE_TARGET_SPEEDUP:
        failures.append(
            f"trace_timeline: array backend speedup {entry['speedup']}x "
            f"below the {TRACE_TIMELINE_TARGET_SPEEDUP:g}x target")
    if entry["array"]["blob_bytes"] > entry["segments"]["blob_bytes"]:
        failures.append(
            "trace_timeline: columnar blob "
            f"({entry['array']['blob_bytes']} B) larger than the pickled "
            f"segment list ({entry['segments']['blob_bytes']} B)")
    return failures


def bench_memory():
    """Subprocess peak-RSS comparison (see ``benchmarks/mem_workload.py``)."""
    entry = measure_pair()
    for backend, report in entry["backends"].items():
        violation = numpy_violation(f"memory ({backend} record path)",
                                    imported=report["numpy_imported"])
        if violation:
            raise SystemExit(
                f"{violation} — the RSS comparison is meaningless with a "
                "~30 MB import on one side")
    return entry


def check_memory_gates(entry, previous_rss, previous_fingerprint):
    """Memory-workload regression gates; returns failure strings."""
    failures = []
    if entry["rss_reduction_pct"] < MEM_RSS_TARGET_REDUCTION_PCT:
        failures.append(
            f"memory: array backend peak-RSS reduction "
            f"{entry['rss_reduction_pct']:.1f}% below the "
            f"{MEM_RSS_TARGET_REDUCTION_PCT:g}% target")
    if entry["blob_ratio"] < 1.0:
        failures.append(
            f"memory: columnar trace blob {entry['blob_ratio']:.2f}x the "
            "pickled size — transport regressed past pickle")
    array_rss = entry["backends"]["array"]["peak_rss_kb"]
    if previous_rss and previous_fingerprint == _machine_fingerprint():
        ceiling = PEAK_RSS_REGRESSION_TOLERANCE * previous_rss
        if array_rss > ceiling:
            failures.append(
                f"memory: array-backend peak RSS {array_rss} KB exceeds "
                f"{ceiling:.0f} KB ({PEAK_RSS_REGRESSION_TOLERANCE:g}x the "
                f"previous same-machine recording of {previous_rss} KB)")
    return failures


def _timed_sweep(**overrides):
    """One micro fig9-shaped sweep; returns (elapsed, result, cells)."""
    config = SweepConfig(n_sets=3, utilizations=(0.3, 0.5, 0.7, 0.9),
                         duration=600.0, seed=SEED, **overrides)
    start = time.perf_counter()
    result = utilization_sweep(config)
    elapsed = time.perf_counter() - start
    return elapsed, result, len(config.utilizations) * config.n_sets


def bench_fig9_sweep(parallel_workers=4):
    """Micro-scale Fig. 9-shaped sweep, wall-clock end to end.

    Three variants: serial, parallel through the barrier-free fan-out
    layer, and a warm-cache rerun (which must simulate nothing).  The
    serial and parallel runs must produce bit-identical curves — checked
    here so the speedup can never come from a semantic divergence.

    The requested worker count is clamped to the effective CPU budget
    (``sched_getaffinity``, the same clamp ``resolve_workers("auto")``
    applies) before the parallel run: spawning 4 processes on a 1-CPU
    container just measures pool overhead and records a meaningless
    sub-1x "speedup".  The entry records both the request and the clamp
    so the recording is honest about what actually ran.
    """
    serial_s, serial, cells = _timed_sweep(workers=1)
    effective = effective_cpu_count()
    workers = max(1, min(parallel_workers, effective))
    parallel_s, parallel, _ = _timed_sweep(workers=workers)
    if serial.raw.rows() != parallel.raw.rows():
        raise SystemExit("fig9_sweep: parallel curves diverged from serial")
    with tempfile.TemporaryDirectory() as tmp:
        cold_s, cold, _ = _timed_sweep(workers=1, cache_dir=tmp)
        warm_s, warm, _ = _timed_sweep(workers=1, cache_dir=tmp)
    if warm.raw.rows() != serial.raw.rows():
        raise SystemExit("fig9_sweep: warm-cache curves diverged from serial")
    return {
        "n_tasks": 8,
        "n_sets": 3,
        "utilizations": [0.3, 0.5, 0.7, 0.9],
        "duration": 600.0,
        "cells": cells,
        # Legacy top-level keys describe the serial run (pre-PR-3 schema).
        "wall_seconds": round(serial_s, 6),
        "cells_per_sec": round(cells / serial_s, 2),
        "rm_fallbacks": serial.rm_fallbacks,
        "parallel": {
            "workers": workers,
            "requested_workers": parallel_workers,
            "clamped": workers != parallel_workers,
            "effective_cpus": effective,
            "wall_seconds": round(parallel_s, 6),
            "cells_per_sec": round(cells / parallel_s, 2),
            "speedup_vs_serial": round(serial_s / parallel_s, 2),
        },
        "warm_cache": {
            "cold_wall_seconds": round(cold_s, 6),
            "wall_seconds": round(warm_s, 6),
            "cells_per_sec": round(cells / warm_s, 2),
            "cold_simulated_cells": cold.simulated_cells,
            "simulated_cells": warm.simulated_cells,
            "cache_hits": warm.cache_hits,
        },
    }


#: Child snippet for the scalar-laziness probe: a fresh interpreter runs
#: a small sweep with RTA-free policies (staticRM/ccRM admission is the
#: one sanctioned numpy importer outside the batch kernels) and prints
#: whether numpy ended up in ``sys.modules`` — it must not.
_SCALAR_LAZINESS_SNIPPET = """
import sys
from repro.analysis.sweep import SweepConfig, utilization_sweep
utilization_sweep(SweepConfig(policies=("EDF", "staticEDF", "ccEDF"),
                              n_tasks=4, n_sets=1, utilizations=(0.5,),
                              duration=50.0, seed=2001))
print("numpy" in sys.modules)
"""


def _scalar_numpy_lazy() -> bool:
    """Whether a fresh scalar-sweep subprocess stays numpy-free."""
    import subprocess
    proc = subprocess.run(
        [sys.executable, "-c", _SCALAR_LAZINESS_SNIPPET],
        capture_output=True, text=True, check=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    return proc.stdout.strip() == "False"


def _timed_array_sweep(base, engine, numpy_on):
    """One cacheless array-engine sweep with numpy pinned on or off.

    Returns ``(elapsed, result, numpy_used)`` where ``numpy_used``
    records whether the kernels actually had numpy available — measured,
    not assumed, so BENCH_engine.json states which acceleration each
    number was produced with.
    """
    from repro.sim.batch_kernels import numpy_backend, set_numpy_enabled

    set_numpy_enabled(numpy_on)
    try:
        start = time.perf_counter()
        result = utilization_sweep(SweepConfig(**base, engine=engine))
        elapsed = time.perf_counter() - start
        numpy_used = bool(numpy_on and numpy_backend() is not None)
    finally:
        set_numpy_enabled(True)
    return elapsed, result, numpy_used


def bench_fig9_sweep_batch():
    """Column-scale cold sweep: scalar vs batch vs block engine.

    1000 cells (the paper's 10 utilization steps x 100 task sets) under
    the four kernel-envelope policies, every engine serial and cacheless,
    so the ratios are pure simulation throughput: the batch engine's
    per-cell flat-array kernel and the block engine's cross-cell lane
    passes against the discrete-event engine.  The array engines run with
    numpy on *and* off (the off runs pin the pure-Python fallback, whose
    results must stay identical), each variant recording the measured
    ``numpy_used`` flag.  All runs must produce bit-identical curves —
    the engines are execution modes, never semantic forks.  The entry
    also records the scalar-laziness probe (see
    :data:`_SCALAR_LAZINESS_SNIPPET`).
    """
    base = dict(policies=BATCH_WORKLOAD_POLICIES, n_tasks=8, n_sets=100,
                duration=400.0, seed=SEED)
    start = time.perf_counter()
    scalar = utilization_sweep(SweepConfig(**base))
    scalar_s = time.perf_counter() - start
    config = SweepConfig(**base)
    cells = len(config.utilizations) * config.n_sets

    entry = {
        "policies": list(BATCH_WORKLOAD_POLICIES),
        "n_tasks": base["n_tasks"],
        "n_sets": base["n_sets"],
        "utilizations": list(config.utilizations),
        "duration": base["duration"],
        "cells": cells,
        "scalar": {
            "wall_seconds": round(scalar_s, 6),
            "cells_per_sec": round(cells / scalar_s, 2),
            "numpy_used": False,
        },
    }
    for engine in ("batch", "block"):
        for numpy_on in (True, False):
            elapsed, result, numpy_used = _timed_array_sweep(
                base, engine, numpy_on)
            if scalar.raw.rows() != result.raw.rows():
                raise SystemExit(
                    f"fig9_sweep_batch: {engine} engine "
                    f"(numpy={'on' if numpy_on else 'off'}) curves "
                    "diverged from scalar")
            variant = {
                "wall_seconds": round(elapsed, 6),
                "cells_per_sec": round(cells / elapsed, 2),
                "numpy_used": numpy_used,
                "speedup_vs_scalar": round(scalar_s / elapsed, 2),
            }
            if engine == "block":
                variant["block_cells"] = result.block_cells
                variant["fallbacks"] = dict(result.block_fallbacks)
                variant["stage_seconds"] = {
                    key: round(value, 6)
                    for key, value in result.stage_seconds.items()}
            key = engine if numpy_on else f"{engine}_no_numpy"
            entry[key] = variant
    entry["speedup"] = entry["batch"]["speedup_vs_scalar"]
    entry["block_speedup"] = entry["block"]["speedup_vs_scalar"]
    entry["rm_fallbacks"] = scalar.rm_fallbacks
    entry["scalar_numpy_lazy"] = _scalar_numpy_lazy()
    return entry


def check_batch_gates(entry):
    """fig9_sweep_batch regression gates; returns failure strings."""
    failures = []
    if entry["speedup"] < BATCH_TARGET_SPEEDUP:
        failures.append(
            f"fig9_sweep_batch: batch engine {entry['speedup']}x below "
            f"the {BATCH_TARGET_SPEEDUP:g}x cold-sweep floor at "
            f"{entry['cells']} cells")
    if entry["block_speedup"] < BLOCK_TARGET_SPEEDUP:
        failures.append(
            f"fig9_sweep_batch: block engine {entry['block_speedup']}x "
            f"below the {BLOCK_TARGET_SPEEDUP:g}x cold-sweep floor at "
            f"{entry['cells']} cells")
    if not entry["block"]["numpy_used"]:
        failures.append(
            "fig9_sweep_batch: block engine ran without numpy — the "
            "vectorized lane pass never engaged")
    for key in ("batch_no_numpy", "block_no_numpy"):
        if entry[key]["numpy_used"]:
            failures.append(
                f"fig9_sweep_batch: {key} variant reported numpy_used — "
                "set_numpy_enabled(False) did not pin the fallback")
    violation = numpy_violation("fig9_sweep_batch (scalar subprocess)",
                                imported=not entry["scalar_numpy_lazy"])
    if violation:
        failures.append(violation)
    return failures


def _machine_fingerprint():
    """Identity used to decide whether wall-clock numbers are comparable."""
    return {
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
    }


def _previous_serial_rate(out_path):
    """(cells_per_sec, fingerprint) from the previous recording, if any."""
    try:
        with open(out_path, encoding="utf-8") as handle:
            previous = json.load(handle)
        entry = previous["workloads"]["fig9_sweep"]
        return entry["cells_per_sec"], previous.get("fingerprint")
    except (OSError, ValueError, KeyError):
        return None, None


def _previous_memory_rss(out_path):
    """(array peak_rss_kb, fingerprint) from the previous recording."""
    try:
        with open(out_path, encoding="utf-8") as handle:
            previous = json.load(handle)
        entry = previous["workloads"]["memory"]
        return (entry["backends"]["array"]["peak_rss_kb"],
                previous.get("fingerprint"))
    except (OSError, ValueError, KeyError):
        return None, None


def check_sweep_gates(entry, previous_rate, previous_fingerprint):
    """Evaluate the fig9_sweep regression gates; returns failure strings."""
    failures = []
    warm = entry["warm_cache"]
    if warm["simulated_cells"] != 0:
        failures.append(
            f"warm-cache rerun simulated {warm['simulated_cells']} cells "
            "(expected 0 — every cell must come from the cache)")
    if warm["cache_hits"] != entry["cells"]:
        failures.append(
            f"warm-cache rerun hit {warm['cache_hits']}/{entry['cells']} "
            "cells")
    parallel = entry["parallel"]
    # Gate on the worker count that actually ran (post-clamp): the clamp
    # already bounded it by the effective CPU budget, so a 1-CPU box
    # records workers=1/clamped=true and skips the speedup gate instead
    # of failing on a physically impossible ratio.
    lanes = min(parallel["workers"], parallel["effective_cpus"])
    if lanes >= PARALLEL_TARGET_CPUS:
        target = PARALLEL_TARGET_SPEEDUP
    elif lanes > 1:
        target = 0.75 * lanes
    else:
        target = None  # one lane: no parallel speedup physically available
    if target is not None and parallel["speedup_vs_serial"] < target:
        failures.append(
            f"parallel speedup {parallel['speedup_vs_serial']:.2f}x below "
            f"the {target:.2f}x target for {lanes} parallel lanes")
    if previous_rate and previous_fingerprint == _machine_fingerprint():
        floor = SERIAL_REGRESSION_FLOOR * previous_rate
        if entry["cells_per_sec"] < floor:
            failures.append(
                f"serial sweep throughput {entry['cells_per_sec']} "
                f"cells/s regressed below {floor:.1f} "
                f"(70% of previous {previous_rate})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_engine.json")
    parser.add_argument("--parallel-workers", type=int, default=4,
                        help="worker count for the parallel fig9_sweep "
                             "variant (default: 4)")
    args = parser.parse_args(argv)
    previous_rate, previous_fingerprint = _previous_serial_rate(args.out)
    previous_rss, previous_rss_fingerprint = _previous_memory_rss(args.out)

    report = {
        "schema": 3,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "fingerprint": _machine_fingerprint(),
        "seed": SEED,
        "repeats": REPEATS,
        "workloads": {},
    }
    for name, n_tasks, policy_name, duration in WORKLOADS:
        print(f"[bench] {name}: {n_tasks} tasks, {policy_name}, "
              f"duration {duration:g} ...", flush=True)
        entry = bench_workload(name, n_tasks, policy_name, duration)
        report["workloads"][name] = entry
        print(f"[bench]   indexed {entry['indexed']['events_per_sec']:,.0f} "
              f"ev/s vs baseline {entry['baseline']['events_per_sec']:,.0f} "
              f"ev/s -> speedup {entry['speedup_events_per_sec']:.2f}x",
              flush=True)
        print(f"[bench]   instrumented "
              f"{entry['instrumented']['events_per_sec_cpu']:,.0f} ev/s "
              f"(CPU) vs "
              f"{entry['instrumented']['uninstrumented_events_per_sec_cpu']:,.0f}"
              f" -> overhead {entry['instrumented_overhead_pct']:+.2f}%",
              flush=True)
    print("[bench] policy_callbacks ...", flush=True)
    callback_entry = bench_policy_callbacks()
    report["workloads"]["policy_callbacks"] = callback_entry
    top = str(POLICY_CALLBACK_TASK_COUNTS[-1])
    for name, per_size in callback_entry["policies"].items():
        sized = per_size[top]
        print(f"[bench]   {name} @ {top} tasks: "
              f"{sized['incremental']['per_callback_us']} us/callback "
              f"incremental vs {sized['from_scratch']['per_callback_us']} "
              f"us from-scratch -> {sized['speedup']:.2f}x", flush=True)
    print("[bench] steady_fast_path ...", flush=True)
    fast_entry = bench_steady_fast_path()
    report["workloads"]["steady_fast_path"] = fast_entry
    print(f"[bench]   {fast_entry['cells']} eligible cells: full "
          f"{fast_entry['full_wall_seconds']:.2f}s vs fast-path "
          f"{fast_entry['fast_wall_seconds']:.2f}s -> "
          f"{fast_entry['speedup']:.2f}x "
          f"({fast_entry['fast_path_cells']} short-circuited, fallbacks "
          f"{fast_entry['fallbacks']})", flush=True)
    print("[bench] trace_timeline ...", flush=True)
    timeline_entry = bench_trace_timeline()
    report["workloads"]["trace_timeline"] = timeline_entry
    print(f"[bench]   {timeline_entry['slices']} slices: segments "
          f"{timeline_entry['segments']['wall_seconds']:.2f}s vs array "
          f"{timeline_entry['array']['wall_seconds']:.2f}s -> "
          f"{timeline_entry['speedup']:.2f}x "
          f"(blob {timeline_entry['segments']['blob_bytes']} B -> "
          f"{timeline_entry['array']['blob_bytes']} B)", flush=True)
    print("[bench] memory ...", flush=True)
    memory_entry = bench_memory()
    report["workloads"]["memory"] = memory_entry
    print(f"[bench]   peak RSS "
          f"{memory_entry['backends']['segments']['peak_rss_kb']} KB "
          f"(segments) vs "
          f"{memory_entry['backends']['array']['peak_rss_kb']} KB (array) "
          f"-> {memory_entry['rss_reduction_pct']:.1f}% reduction, "
          f"shipped bytes {memory_entry['blob_ratio']:.2f}x smaller",
          flush=True)
    print("[bench] fig9_sweep ...", flush=True)
    sweep_entry = bench_fig9_sweep(args.parallel_workers)
    report["workloads"]["fig9_sweep"] = sweep_entry
    if sweep_entry["parallel"]["clamped"]:
        print(f"[bench]   parallel workers clamped "
              f"{sweep_entry['parallel']['requested_workers']} -> "
              f"{sweep_entry['parallel']['workers']} "
              f"({sweep_entry['parallel']['effective_cpus']} effective "
              "CPUs)", flush=True)
    print(f"[bench]   serial {sweep_entry['cells_per_sec']:.1f} cells/s, "
          f"parallel(x{sweep_entry['parallel']['workers']}) "
          f"{sweep_entry['parallel']['cells_per_sec']:.1f} cells/s "
          f"({sweep_entry['parallel']['speedup_vs_serial']:.2f}x), "
          f"warm cache {sweep_entry['warm_cache']['cells_per_sec']:.1f} "
          f"cells/s with {sweep_entry['warm_cache']['simulated_cells']} "
          "simulations", flush=True)
    print("[bench] fig9_sweep_batch ...", flush=True)
    batch_entry = bench_fig9_sweep_batch()
    report["workloads"]["fig9_sweep_batch"] = batch_entry
    print(f"[bench]   {batch_entry['cells']} cells: scalar "
          f"{batch_entry['scalar']['cells_per_sec']:.1f} cells/s vs batch "
          f"{batch_entry['batch']['cells_per_sec']:.1f} cells/s "
          f"({batch_entry['speedup']:.2f}x) vs block "
          f"{batch_entry['block']['cells_per_sec']:.1f} cells/s "
          f"({batch_entry['block_speedup']:.2f}x), scalar subprocess "
          f"numpy-free: {batch_entry['scalar_numpy_lazy']}", flush=True)
    report["peak_rss_kb"] = _peak_rss_kb()

    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {args.out}")

    headline = report["workloads"]["tasks200"]["speedup_events_per_sec"]
    print(f"[bench] headline (tasks200 speedup): {headline:.2f}x")

    failures = []
    for name, budget in INSTRUMENT_BUDGETS_PCT.items():
        overhead = report["workloads"][name]["instrumented_overhead_pct"]
        print(f"[bench] {name} instrumentation overhead: {overhead:+.2f}% "
              f"(budget {budget:g}%)")
        if overhead > budget:
            failures.append(
                f"{name} instrumentation overhead {overhead:.2f}% exceeds "
                f"the {budget:g}% budget")
    failures.extend(check_callback_gates(callback_entry))
    failures.extend(check_fast_path_gates(fast_entry))
    failures.extend(check_trace_timeline_gates(timeline_entry))
    failures.extend(check_memory_gates(memory_entry, previous_rss,
                                       previous_rss_fingerprint))
    failures.extend(check_sweep_gates(sweep_entry, previous_rate,
                                      previous_fingerprint))
    failures.extend(check_batch_gates(batch_entry))
    for failure in failures:
        print(f"[bench] FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
