"""Shared helpers for the benchmark harness.

Every table and figure in the paper's evaluation has a benchmark here that
*regenerates* it (at reduced scale — pass ``--full`` via the experiment
CLI for paper scale) and asserts the headline shape, so `pytest
benchmarks/ --benchmark-only` both times the harness and re-validates the
reproduction.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweep import SweepConfig, utilization_sweep

#: Micro-scale sweep defaults used by the figure benchmarks: small enough
#: that a benchmark round takes ~a second, large enough that the curve
#: shapes hold.
MICRO = dict(n_sets=3, utilizations=(0.3, 0.5, 0.7, 0.9), duration=600.0)


def micro_sweep(**overrides):
    """Run a micro-scale utilization sweep."""
    params = {**MICRO, **overrides}
    return utilization_sweep(SweepConfig(**params))


def once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round (for second-scale workloads)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
