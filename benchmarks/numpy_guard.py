"""Single source of truth for the numpy-laziness invariant.

The scalar simulation path must never pull numpy into the process: the
memory benchmark's record-path children measure a delta that a stray
~30 MB numpy import would drown, and cold-sweep startup pays the import
latency for nothing.  The only execution paths sanctioned to import numpy
are

* the **batch engine** (``repro.sim.batch_kernels.numpy_backend``, lazily
  and only for blocks past its size threshold), and
* the vectorized RTA in ``repro.model.schedulability``, which only
  static-RM admission reaches (so RM-free workloads stay numpy-free).

This helper used to live as two diverging copies in ``mem_workload.py``
and ``write_bench_json.py``; both now call here, as does the
``fig9_sweep_batch`` benchmark's scalar-subprocess check, so the
invariant cannot rot silently in one copy while the other still passes.
"""

from __future__ import annotations

import sys
from typing import Optional

#: Engine names allowed to import numpy on the simulation path (the
#: batch kernels and the cross-cell block lanes share one lazy seam,
#: ``repro.sim.batch_kernels.numpy_backend``).
ARRAY_ENGINES = ("batch", "block")

#: Backwards-compatible alias (pre-block-engine name).
BATCH_ENGINE = "batch"


def numpy_imported() -> bool:
    """Whether numpy is resident in this process right now."""
    return "numpy" in sys.modules


def numpy_violation(label: str, imported: Optional[bool] = None,
                    engine: str = "scalar") -> Optional[str]:
    """A failure string when the laziness invariant is broken, else None.

    ``imported`` defaults to this process's live state; pass a child
    report's recorded flag when checking a subprocess measurement.
    ``engine`` names the execution path that produced the measurement —
    only the :data:`ARRAY_ENGINES` are allowed to have imported numpy.
    """
    if imported is None:
        imported = numpy_imported()
    if not imported or engine in ARRAY_ENGINES:
        return None
    return (f"{label}: numpy crept into a scalar path — only the "
            "batch/block engines may import numpy (a stray ~30 MB import "
            "skews memory deltas and slows every scalar startup)")
