"""Figs. 12 and 13 — computation-time sensitivity.

Fig. 12: fixed demand fractions 0.9/0.7/0.5 — ccEDF/laEDF improve a lot,
static policies don't move, ccRM barely moves.  Fig. 13: uniform demand
behaves like constant 0.5.
"""

import pytest

from benchmarks.conftest import micro_sweep, once


@pytest.mark.parametrize("fraction", [0.9, 0.7, 0.5])
def test_bench_fig12_panel(benchmark, fraction):
    sweep = once(benchmark, micro_sweep, n_tasks=8, seed=120,
                 demand=fraction)
    la = sweep.normalized.get("laEDF").y_at(0.7)
    edf = sweep.normalized.get("EDF").y_at(0.7)
    assert la < edf


def test_bench_fig12_adaptation(benchmark):
    def panels():
        return (micro_sweep(n_tasks=8, seed=120, demand=0.9),
                micro_sweep(n_tasks=8, seed=120, demand=0.5))

    high, low = once(benchmark, panels)

    def mean_curve(sweep, label):
        ys = sweep.normalized.get(label).ys
        return sum(ys) / len(ys)

    ccedf_gain = mean_curve(high, "ccEDF") - mean_curve(low, "ccEDF")
    ccrm_gain = mean_curve(high, "ccRM") - mean_curve(low, "ccRM")
    static_shift = abs(mean_curve(high, "staticEDF")
                       - mean_curve(low, "staticEDF"))
    assert ccedf_gain > 0.05, "ccEDF must exploit early completions"
    assert ccrm_gain < ccedf_gain, "ccRM adapts much less (paper text)"
    assert static_shift < 0.01, "static scaling ignores actual demand"


def test_bench_fig13_uniform_vs_half(benchmark):
    def panels():
        return (micro_sweep(n_tasks=8, seed=130, demand="uniform"),
                micro_sweep(n_tasks=8, seed=130, demand=0.5))

    uniform, half = once(benchmark, panels)
    for label in ("ccEDF", "laEDF"):
        u = uniform.normalized.get(label).ys
        h = half.normalized.get(label).ys
        gap = max(abs(a - b) for a, b in zip(u, h))
        assert gap < 0.15, \
            f"{label}: uniform demand must look like constant 0.5"
