"""Benchmarks regenerating Table 1 and Table 4."""

import pytest

from repro import (
    PAPER_POLICIES,
    example_taskset,
    machine0,
    make_policy,
    paper_example_trace,
    simulate,
)
from repro.experiments import table1, table4


def test_bench_table1(benchmark):
    """Table 1: laptop power states from the component model."""
    result = benchmark(table1.run)
    assert result.all_checks_pass


def test_bench_table4_experiment(benchmark):
    """Table 4: the full six-policy worked example driver."""
    result = benchmark(table4.run)
    assert result.all_checks_pass


@pytest.mark.parametrize("name,expected", [
    ("EDF", 175.0), ("staticRM", 175.0), ("staticEDF", 112.0),
    ("ccEDF", 91.0), ("ccRM", 125.0), ("laEDF", 77.0),
])
def test_bench_table4_policy(benchmark, name, expected):
    """Table 4, per policy: one 16 ms worked-example simulation."""
    taskset = example_taskset()
    machine = machine0()

    def run():
        return simulate(taskset, machine, make_policy(name),
                        demand=paper_example_trace(), duration=16.0)

    result = benchmark(run)
    assert result.total_energy == pytest.approx(expected)
