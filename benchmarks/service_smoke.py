#!/usr/bin/env python
"""CI smoke for the sweep service: real ``rtdvs serve`` subprocess.

Starts ``python -m repro serve`` on an ephemeral port (``--port 0``),
parses the machine-readable ready line it prints
(``rtdvs-serve ready host=... port=N``), submits the full ``fig9``
scenario at quick scale twice through the blocking client, and asserts
the cache-first contract end to end:

* the first submission simulates every cell (cold cache);
* the second submission simulates **zero** cells — all three panels are
  served from the CTR1 cell cache;
* the streamed aggregate tables of the two submissions are
  byte-identical (JSON round-trips doubles exactly, so ``==`` on the
  decoded rows is a bit-identity check).

Exit status is 0 on success, 1 on any violation — CI runs this as a
blocking step.

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py
    make service-smoke
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import SweepServiceClient  # noqa: E402

SCENARIO = "fig9"
READY_RE = re.compile(r"rtdvs-serve ready host=(?P<host>\S+) "
                      r"port=(?P<port>\d+)")
READY_TIMEOUT_S = 30.0


def start_server(cache_dir):
    """Launch ``rtdvs serve`` and return (process, host, port)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")})
    deadline = time.monotonic() + READY_TIMEOUT_S
    while True:
        if time.monotonic() > deadline:
            process.terminate()
            raise SystemExit("server never printed its ready line")
        line = process.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited before ready (rc={process.poll()})")
        match = READY_RE.search(line)
        if match:
            return process, match["host"], int(match["port"])


def tables(events):
    """Deterministic slice of a response: per-panel aggregate tables."""
    return [{key: event[key]
             for key in ("scenario", "panel", "xs", "labels",
                         "raw", "normalized", "rm_fallbacks")}
            for event in events if event.get("event") == "result"]


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        process, host, port = start_server(os.path.join(tmp, "cells"))
        try:
            client = SweepServiceClient(host=host, port=port)
            print(f"[smoke] server ready on {host}:{port}", flush=True)

            first = client.submit_collect({"scenario": SCENARIO})
            done = first["done"]
            print(f"[smoke] cold: simulated {done['simulated_cells']} "
                  f"cells in {done['elapsed_s']:.2f}s", flush=True)
            if done["simulated_cells"] == 0:
                print("[smoke] FAIL: cold submission simulated nothing")
                return 1

            second = client.submit_collect({"scenario": SCENARIO})
            done = second["done"]
            print(f"[smoke] warm: simulated {done['simulated_cells']} "
                  f"cells, {done['cache_hits']} cache hits in "
                  f"{done['elapsed_s']:.2f}s", flush=True)
            if done["simulated_cells"] != 0:
                print(f"[smoke] FAIL: warm submission simulated "
                      f"{done['simulated_cells']} cells (expected 0)")
                return 1
            if done["cache_hits"] != first["done"]["simulated_cells"]:
                print(f"[smoke] FAIL: warm hit {done['cache_hits']} cells, "
                      f"cold simulated {first['done']['simulated_cells']}")
                return 1

            if tables(second["events"]) != tables(first["events"]):
                print("[smoke] FAIL: warm aggregates diverged from cold")
                return 1
            print(f"[smoke] PASS: {len(tables(first['events']))} panels "
                  "byte-identical across cold and warm submissions",
                  flush=True)
            return 0
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
