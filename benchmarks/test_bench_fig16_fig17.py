"""Figs. 16 and 17 — the platform "measurement" and its simulation twin.

Fig. 16: system power (constant board overhead + calibrated CPU) on the
two-voltage K6-2+ table, 5 tasks at 90 % demand; RT-DVS saves 20-40 %.
Fig. 17: CPU-only simulation with identical parameters; must equal the
measurement minus the constant overhead.
"""

import pytest

from benchmarks.conftest import once
from repro.analysis.sweep import SweepConfig, utilization_sweep
from repro.experiments.fig16 import POLICIES, power_table
from repro.hw.machine import k6_2_plus
from repro.measure.laptop import LaptopPowerModel

MICRO_PLATFORM = dict(
    policies=POLICIES, n_tasks=5, n_sets=3, demand=0.9,
    utilizations=(0.3, 0.5, 0.7, 0.9), duration=600.0, seed=160)


def _measured_sweep():
    laptop = LaptopPowerModel()
    machine = k6_2_plus()
    return utilization_sweep(SweepConfig(
        machine=machine,
        cycle_energy_scale=laptop.cycle_energy_scale_for(machine),
        **MICRO_PLATFORM))


def _simulated_sweep():
    return utilization_sweep(SweepConfig(machine=k6_2_plus(),
                                         **MICRO_PLATFORM))


def test_bench_fig16(benchmark):
    sweep = once(benchmark, _measured_sweep)
    laptop = LaptopPowerModel()
    table = power_table(sweep, laptop, include_overhead=True)
    edf = table.get("EDF")
    la = table.get("laEDF")
    saving = 1.0 - la.y_at(0.7) / edf.y_at(0.7)
    assert 0.10 <= saving <= 0.55, \
        f"system-power saving at U=0.7 out of band: {saving:.0%}"
    assert min(la.ys) >= laptop.board_base, \
        "system power can never drop below the board overhead"


def test_bench_fig17_matches_fig16_minus_overhead(benchmark):
    def both():
        return _measured_sweep(), _simulated_sweep()

    measured, simulated = once(benchmark, both)
    laptop = LaptopPowerModel()
    scale = laptop.cycle_energy_scale_for(k6_2_plus())
    duration = MICRO_PLATFORM["duration"]
    for label in POLICIES:
        m_watts = [y / duration for y in measured.raw.get(label).ys]
        s_watts = [y * scale / duration
                   for y in simulated.raw.get(label).ys]
        for mw, sw in zip(m_watts, s_watts):
            assert mw == pytest.approx(sw, abs=1e-9), label
