"""Command-line front-end: ``rtdvs`` (or ``python -m repro``).

Subcommands
-----------
``list``
    Show available experiments, policies, and machine presets.
``run <experiment> [--full] [--workers N] [--csv DIR] [--no-charts]``
    Run one experiment (``table1``, ``table4``, ``traces``, ``fig9`` ...)
    and print its report.
``run-all [--full] [--workers N] [--out DIR]``
    Run every experiment; write per-experiment reports/CSVs to DIR.
``simulate --tasks "C:P,C:P,..." --policy NAME [options]``
    Simulate an ad-hoc task set and print the energy summary.
``workloads [NAME] [--policy NAME]``
    List the named embedded workloads, or simulate one.
``validate --tasks ... --policy NAME [options]``
    Simulate, then run the independent schedule validator on the trace.
``obs summarize FILE [--csv PATH] [--residency-csv PATH]``
    Render a metrics JSON-lines archive (written by ``simulate
    --metrics``) as a text report; optionally re-export as CSV.
``cache [info|clean] [--dir PATH] [--max-bytes N] [--max-age S]``
    Inspect or trim the content-addressed sweep cell cache.  ``info``
    reports entry count, total bytes and the entry-age spread (for
    sizing eviction bounds); ``clean`` with ``--max-bytes``/``--max-age``
    runs one LRU eviction sweep instead of emptying everything.
``serve [--port N] [--workers N] [--dist-port N] [--max-bytes N] ...``
    Run the sweep service: an HTTP/JSON server answering declarative
    sweep requests cache-first, with single-flight dedup of concurrent
    identical cells and per-tenant admission quotas (429 + Retry-After).
    ``--dist-port`` additionally opens a distributed work queue; cold
    cells are then simulated by ``rtdvs worker`` processes instead of
    in-process workers.
``worker --connect HOST:PORT [--engine E] [--reconnect N]``
    Run one sweep worker: pull leased cell batches from a coordinator
    (``serve --dist-port`` or a :class:`repro.dist.RemoteCellExecutor`),
    simulate them, stream outcomes back.
``submit [SCENARIO] [--spec JSON] [--request-id ID | --resume ID] ...``
    Submit one sweep request to a running service and stream its NDJSON
    events (``--json``) or a human summary.  ``--request-id`` journals
    the run durably under the server's cache dir; ``--resume`` re-submits
    a journaled request, skipping every already-completed cell.
``catalog [list|show|run|audit]``
    The declarative scenario catalog: list the named entries, show one
    entry's canonical JSON, run the experiment a scenario describes
    (identical to ``run`` — the drivers resolve their parameters from
    the catalog), or audit entries by replaying cells with traces and
    re-deriving energies/counters/aggregates independently.

Sweep-driven commands accept ``--workers auto`` (CPU-count derived), show
per-sweep progress/ETA lines with ``--progress``, and reuse cached cell
results by default (disable with ``--no-cache``, redirect with
``--cache-dir``) — an interrupted ``run-all --full`` resumes instead of
restarting.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.cellcache import CellCache, default_cache_dir
from repro.analysis.executor import resolve_workers
from repro.core import available_policies, make_policy
from repro.experiments.runall import (ALL_EXPERIMENTS, run_all,
                                      run_experiment, summary_table)
from repro.hw.machine import MACHINE_PRESETS
from repro.model.task import Task, TaskSet
from repro.sim.engine import simulate


def _workers_arg(text: str):
    """argparse type for ``--workers``: a positive integer or ``auto``."""
    try:
        return resolve_workers(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by every sweep-driving command."""
    parser.add_argument("--workers", type=_workers_arg, default=1,
                        metavar="N|auto",
                        help="parallel worker processes for sweeps "
                             "('auto' = CPU count)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        default=default_cache_dir(),
                        help="content-addressed cell-result cache "
                             "(default: %(default)s)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the cell-result cache")
    parser.add_argument("--progress", action="store_true",
                        help="print per-sweep progress/ETA lines to stderr")
    parser.add_argument("--steady-fast-path", action="store_true",
                        help="enable the hyperperiod short-circuit: cells "
                             "with a finite hyperperiod and verified "
                             "periodic demand simulate warmup + two "
                             "hyperperiods and extrapolate (fallback to "
                             "full simulation whenever verification fails)")
    parser.add_argument("--engine", choices=("scalar", "batch", "block"),
                        default="scalar",
                        help="cell execution backend: 'scalar' simulates "
                             "each cell on the event engine; 'batch' runs "
                             "column-blocked array kernels; 'block' "
                             "advances every cell of a column at once in "
                             "cross-cell vectorized lane passes (both "
                             "bit-identical to scalar, faster cold sweeps)")


def _cache_dir_from(args: argparse.Namespace):
    return None if args.no_cache else args.cache_dir


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Output was piped into something like `head`; not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rtdvs",
        description="RT-DVS reproduction (Pillai & Shin, SOSP 2001)")
    sub = parser.add_subparsers(dest="command")

    p_list = sub.add_parser("list", help="list experiments and policies")
    p_list.set_defaults(handler=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("experiment", choices=sorted(ALL_EXPERIMENTS))
    p_run.add_argument("--full", action="store_true",
                       help="paper-scale parameters (slow)")
    _add_sweep_options(p_run)
    p_run.add_argument("--csv", metavar="DIR",
                       help="also export the data tables as CSV")
    p_run.add_argument("--no-charts", action="store_true",
                       help="omit ASCII charts from the report")
    p_run.set_defaults(handler=_cmd_run)

    p_all = sub.add_parser("run-all", help="run every experiment")
    p_all.add_argument("--full", action="store_true")
    _add_sweep_options(p_all)
    p_all.add_argument("--out", metavar="DIR",
                       help="write reports and CSVs into DIR")
    p_all.add_argument("--audit", action="store_true",
                       help="after the experiments, audit the whole "
                            "scenario catalog (small-N replay profile); "
                            "non-zero exit on any violation; with --out, "
                            "writes audit-report.json there")
    p_all.set_defaults(handler=_cmd_run_all)

    p_sim = sub.add_parser("simulate", help="simulate an ad-hoc task set")
    p_sim.add_argument("--tasks", required=True,
                       help="comma-separated C:P pairs, e.g. '3:8,3:10,1:14'")
    p_sim.add_argument("--policy", default="laEDF",
                       help=f"one of {available_policies()}")
    p_sim.add_argument("--machine", default="machine0",
                       choices=sorted(MACHINE_PRESETS))
    p_sim.add_argument("--demand", default="worst",
                       help="'worst', 'uniform', or a fraction like 0.9")
    p_sim.add_argument("--duration", type=float, default=None)
    p_sim.add_argument("--trace", action="store_true",
                       help="print the execution trace")
    p_sim.add_argument("--metrics", metavar="FILE", default=None,
                       help="collect run metrics (repro.obs) and append "
                            "them to FILE as JSON-lines; '-' prints the "
                            "summary instead")
    p_sim.set_defaults(handler=_cmd_simulate)

    p_work = sub.add_parser("workloads",
                            help="list or simulate named workloads")
    p_work.add_argument("name", nargs="?",
                        help="workload to simulate (omit to list)")
    p_work.add_argument("--policy", default="laEDF")
    p_work.add_argument("--machine", default="machine0",
                        choices=sorted(MACHINE_PRESETS))
    p_work.set_defaults(handler=_cmd_workloads)

    p_val = sub.add_parser(
        "validate",
        help="simulate and independently validate the schedule")
    p_val.add_argument("--tasks", required=True,
                       help="comma-separated C:P pairs")
    p_val.add_argument("--policy", default="laEDF")
    p_val.add_argument("--machine", default="machine0",
                       choices=sorted(MACHINE_PRESETS))
    p_val.add_argument("--demand", default="worst")
    p_val.add_argument("--duration", type=float, default=None)
    p_val.set_defaults(handler=_cmd_validate)

    p_cmp = sub.add_parser(
        "compare", help="compare policies on one workload")
    group = p_cmp.add_mutually_exclusive_group(required=True)
    group.add_argument("--tasks", help="comma-separated C:P pairs")
    group.add_argument("--workload", help="a named workload")
    p_cmp.add_argument("--policies", default=None,
                       help="comma-separated policy names "
                            "(default: the paper's six)")
    p_cmp.add_argument("--machine", default="machine0",
                       choices=sorted(MACHINE_PRESETS))
    p_cmp.add_argument("--demand", default="worst")
    p_cmp.add_argument("--duration", type=float, default=None)
    p_cmp.set_defaults(handler=_cmd_compare)

    p_obs = sub.add_parser(
        "obs", help="observability utilities (metrics archives)")
    obs_sub = p_obs.add_subparsers(dest="obs_command")
    p_obs.set_defaults(handler=_cmd_obs_help, obs_parser=p_obs)
    p_obs_sum = obs_sub.add_parser(
        "summarize", help="render a metrics JSON-lines archive")
    p_obs_sum.add_argument("file", help="metrics .jsonl file "
                                        "(from simulate --metrics)")
    p_obs_sum.add_argument("--csv", metavar="PATH", default=None,
                           help="also export flat per-run CSV to PATH")
    p_obs_sum.add_argument("--residency-csv", metavar="PATH", default=None,
                           help="also export per-frequency residency "
                                "rows to PATH")
    p_obs_sum.set_defaults(handler=_cmd_obs_summarize)

    p_cache = sub.add_parser(
        "cache", help="inspect or empty the sweep cell cache")
    cache_sub = p_cache.add_subparsers(dest="cache_command")
    p_cache.set_defaults(handler=_cmd_cache_help, cache_parser=p_cache)
    for name, help_text, handler in (
            ("info", "show cache location, entry count, size and ages",
             _cmd_cache_info),
            ("clean", "remove cached cell results (all of them, or an "
                      "LRU sweep with --max-bytes/--max-age)",
             _cmd_cache_clean)):
        p_sub = cache_sub.add_parser(name, help=help_text)
        p_sub.add_argument("--dir", metavar="DIR", dest="cache_dir",
                           default=default_cache_dir(),
                           help="cache directory (default: %(default)s)")
        if name == "clean":
            p_sub.add_argument("--max-bytes", type=int, default=None,
                               metavar="N",
                               help="evict least-recently-used entries "
                                    "until the cache fits in N bytes")
            p_sub.add_argument("--max-age", type=float, default=None,
                               metavar="SECONDS",
                               help="evict entries unused for more than "
                                    "SECONDS")
        p_sub.set_defaults(handler=handler)

    p_serve = sub.add_parser(
        "serve", help="run the sweep service (HTTP/JSON, NDJSON streams)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8787,
                         help="listen port; 0 binds an ephemeral port "
                              "(default: %(default)s)")
    p_serve.add_argument("--workers", type=_workers_arg, default="auto",
                         metavar="N|auto",
                         help="cell executor workers (default: auto = "
                              "effective CPUs)")
    p_serve.add_argument("--cache-dir", metavar="DIR",
                         default=default_cache_dir(),
                         help="cell cache directory (default: %(default)s)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="serve without the warm path (every cell "
                              "simulates)")
    p_serve.add_argument("--max-bytes", type=int, default=None, metavar="N",
                         help="bound the cache to N bytes (LRU eviction)")
    p_serve.add_argument("--max-age", type=float, default=None,
                         metavar="SECONDS",
                         help="evict cache entries unused for SECONDS")
    p_serve.add_argument("--sweep-interval", type=float, default=300.0,
                         metavar="SECONDS",
                         help="period of the background eviction sweep "
                              "when bounds are set (default: %(default)s)")
    p_serve.add_argument("--tenant-inflight", type=int, default=4,
                         metavar="N",
                         help="per-tenant concurrent request budget "
                              "(default: %(default)s)")
    p_serve.add_argument("--retry-after", type=float, default=1.0,
                         metavar="SECONDS",
                         help="back-off hint sent with HTTP 429 "
                              "(default: %(default)s)")
    p_serve.add_argument("--max-pending", type=int, default=64, metavar="N",
                         help="bounded admission queue: cells admitted to "
                              "the executor at once (default: %(default)s)")
    p_serve.add_argument("--dist-port", type=int, default=None, metavar="N",
                         help="also open a distributed work queue on this "
                              "port (0 = ephemeral) and serve cold cells "
                              "off connected 'rtdvs worker' processes "
                              "instead of in-process workers")
    p_serve.add_argument("--lease-timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="distributed lease deadline; a worker that "
                              "misses heartbeats this long loses its cells "
                              "back to the queue (default: %(default)s)")
    p_serve.set_defaults(handler=_cmd_serve)

    p_worker = sub.add_parser(
        "worker", help="run one distributed sweep worker")
    p_worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="coordinator work-queue endpoint (the "
                               "dist_port of 'rtdvs serve --dist-port')")
    p_worker.add_argument("--engine", default="auto",
                          choices=("auto", "scalar", "batch", "block"),
                          help="simulation engine; 'auto' follows the "
                               "coordinator's per-lease hint "
                               "(default: %(default)s)")
    p_worker.add_argument("--reconnect", type=int, default=0, metavar="N",
                          help="re-dial up to N times after a dropped "
                               "connection (an orderly shutdown never "
                               "re-dials; default: %(default)s)")
    p_worker.add_argument("--reconnect-delay", type=float, default=0.5,
                          metavar="SECONDS",
                          help="pause between re-dials "
                               "(default: %(default)s)")
    p_worker.add_argument("--max-leases", type=int, default=None,
                          metavar="N",
                          help="exit after simulating N leases "
                               "(default: run until shutdown)")
    p_worker.add_argument("--quiet", action="store_true",
                          help="suppress per-connection log lines")
    p_worker.set_defaults(handler=_cmd_worker)

    p_submit = sub.add_parser(
        "submit", help="submit a sweep request to a running service")
    p_submit.add_argument("scenario", nargs="?",
                          help="catalog scenario name (or use --spec)")
    p_submit.add_argument("--spec", metavar="JSON",
                          help="inline panel-shaped sweep spec as a JSON "
                               "object ('@FILE' reads it from FILE)")
    p_submit.add_argument("--panel", metavar="NAME",
                          help="restrict a scenario to one panel "
                               "(default: all panels)")
    p_submit.add_argument("--full", action="store_true",
                          help="paper-scale parameters (slow)")
    p_submit.add_argument("--engine", choices=("scalar", "batch", "block"),
                          default="scalar",
                          help="cell execution backend on the server")
    p_submit.add_argument("--tenant", default="default",
                          help="tenant identity for quota accounting")
    p_submit.add_argument("--stream-every", type=int, default=0,
                          metavar="N",
                          help="request a partial aggregate event every "
                               "N completed cells (0 = none)")
    p_submit.add_argument("--request-id", metavar="ID", default=None,
                          help="journal this request durably under the "
                               "server's cache dir so it can be resumed "
                               "with --resume after an interruption")
    p_submit.add_argument("--resume", metavar="ID", default=None,
                          help="resume a journaled request: the sweep "
                               "target comes from the journal; cells "
                               "already completed are not re-simulated")
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=8787)
    p_submit.add_argument("--timeout", type=float, default=300.0,
                          metavar="SECONDS")
    p_submit.add_argument("--json", action="store_true",
                          help="print the raw NDJSON events instead of a "
                               "summary")
    p_submit.set_defaults(handler=_cmd_submit)

    p_cat = sub.add_parser(
        "catalog", help="list, show, run, or audit catalog scenarios")
    cat_sub = p_cat.add_subparsers(dest="catalog_command")
    p_cat.set_defaults(handler=_cmd_catalog_help, catalog_parser=p_cat)
    p_cat_list = cat_sub.add_parser(
        "list", help="list the named scenario entries")
    p_cat_list.set_defaults(handler=_cmd_catalog_list)
    p_cat_show = cat_sub.add_parser(
        "show", help="print one scenario's canonical JSON + fingerprint")
    p_cat_show.add_argument("scenario")
    p_cat_show.set_defaults(handler=_cmd_catalog_show)
    p_cat_run = cat_sub.add_parser(
        "run", help="run the experiment a scenario describes")
    p_cat_run.add_argument("scenario")
    p_cat_run.add_argument("--full", action="store_true",
                           help="paper-scale parameters (slow)")
    _add_sweep_options(p_cat_run)
    p_cat_run.add_argument("--no-charts", action="store_true",
                           help="omit ASCII charts from the report")
    p_cat_run.set_defaults(handler=_cmd_catalog_run)
    p_cat_audit = cat_sub.add_parser(
        "audit", help="replay scenarios with traces and audit the "
                      "results against their declared invariants")
    p_cat_audit.add_argument("scenarios", nargs="*", metavar="SCENARIO",
                             help="entries to audit (default: all)")
    _add_sweep_options(p_cat_audit)
    p_cat_audit.add_argument("--sets", type=int, default=2, metavar="N",
                             help="task sets per utilization point "
                                  "(default: %(default)s)")
    p_cat_audit.add_argument("--points", type=int, default=4, metavar="N",
                             help="utilization points per panel "
                                  "(default: %(default)s)")
    p_cat_audit.add_argument("--audit-duration", type=float, default=300.0,
                             metavar="MS",
                             help="replay horizon in ms "
                                  "(default: %(default)s)")
    p_cat_audit.add_argument("--report", metavar="FILE",
                             help="also write the JSON audit report here")
    p_cat_audit.set_defaults(handler=_cmd_catalog_audit)
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    print("experiments:")
    for experiment_id in ALL_EXPERIMENTS:
        print(f"  {experiment_id}")
    print("policies:")
    for name in available_policies():
        print(f"  {name}")
    print("machines:")
    for name in sorted(MACHINE_PRESETS):
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_experiment(args.experiment, quick=not args.full,
                            workers=args.workers,
                            cache_dir=_cache_dir_from(args),
                            progress=args.progress,
                            steady_fast_path=args.steady_fast_path,
                            engine=args.engine)
    print(result.render(charts=not args.no_charts))
    if args.csv:
        for path in result.write_csvs(args.csv):
            print(f"wrote {path}")
    return 0 if result.all_checks_pass else 1


def _cmd_run_all(args: argparse.Namespace) -> int:
    results = run_all(quick=not args.full, workers=args.workers,
                      output_dir=args.out,
                      cache_dir=_cache_dir_from(args),
                      progress=args.progress,
                      steady_fast_path=args.steady_fast_path,
                      engine=args.engine)
    print(summary_table(results))
    code = 0 if all(r.all_checks_pass for r in results) else 1
    if args.audit:
        from repro.catalog import (audit_catalog, render_reports,
                                   reports_to_json)
        reports = audit_catalog(cache_dir=_cache_dir_from(args),
                                workers=args.workers, engine=args.engine)
        print(render_reports(reports))
        if args.out:
            import os
            path = os.path.join(args.out, "audit-report.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(reports_to_json(reports))
            print(f"wrote {path}")
        if not all(r.ok for r in reports):
            code = 1
    return code


def _cmd_simulate(args: argparse.Namespace) -> int:
    tasks = []
    for index, chunk in enumerate(args.tasks.split(",")):
        try:
            wcet_text, period_text = chunk.split(":")
            tasks.append(Task(wcet=float(wcet_text),
                              period=float(period_text)))
        except (ValueError, TypeError):
            print(f"bad task spec {chunk!r}; expected C:P", file=sys.stderr)
            return 2
    taskset = TaskSet(tasks)
    machine = MACHINE_PRESETS[args.machine]()
    demand = args.demand
    try:
        demand = float(demand)
    except ValueError:
        pass
    collector = None
    if args.metrics is not None:
        from repro.obs import MetricsCollector
        collector = MetricsCollector()
    result = simulate(taskset, machine, make_policy(args.policy),
                      demand=demand, duration=args.duration,
                      record_trace=args.trace, on_miss="drop",
                      instrument=collector)
    print(result.summary())
    if args.trace and result.trace is not None:
        from repro.sim.trace import render_trace
        print(render_trace(result.trace))
    if collector is not None:
        from repro.obs import format_metrics, metrics_to_jsonl
        if args.metrics == "-":
            print(format_metrics(collector.metrics))
        else:
            metrics_to_jsonl(collector, path=args.metrics)
            print(f"appended metrics to {args.metrics}")
    return 0 if result.met_all_deadlines else 1


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import WORKLOADS, load

    if args.name is None:
        print("available workloads:")
        for name in sorted(WORKLOADS):
            taskset, _ = load(name)
            print(f"  {name:<12} {len(taskset)} tasks, "
                  f"U={taskset.utilization:.2f}")
        return 0
    try:
        taskset, demand = load(args.name)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    machine = MACHINE_PRESETS[args.machine]()
    duration = 4.0 * max(t.period for t in taskset)
    result = simulate(taskset, machine, make_policy(args.policy),
                      demand=demand, duration=duration, on_miss="drop")
    print(result.summary())
    return 0 if result.met_all_deadlines else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.sim.validation import validate_schedule

    tasks = []
    for chunk in args.tasks.split(","):
        try:
            wcet_text, period_text = chunk.split(":")
            tasks.append(Task(wcet=float(wcet_text),
                              period=float(period_text)))
        except (ValueError, TypeError):
            print(f"bad task spec {chunk!r}; expected C:P", file=sys.stderr)
            return 2
    taskset = TaskSet(tasks)
    machine = MACHINE_PRESETS[args.machine]()
    demand = args.demand
    try:
        demand = float(demand)
    except ValueError:
        pass
    result = simulate(taskset, machine, make_policy(args.policy),
                      demand=demand, duration=args.duration,
                      record_trace=True, on_miss="drop")
    print(result.summary())
    violations = validate_schedule(result)
    if violations:
        print(f"{len(violations)} violation(s):")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print("schedule validated: priority, work-conservation, budget and "
          "energy conformance all hold")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import compare_policies, comparison_table
    from repro.core import PAPER_POLICIES

    if args.workload:
        from repro.workloads import load
        try:
            taskset, workload_demand = load(args.workload)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        demand = workload_demand if args.demand == "worst" else args.demand
    else:
        tasks = []
        for chunk in args.tasks.split(","):
            try:
                wcet_text, period_text = chunk.split(":")
                tasks.append(Task(wcet=float(wcet_text),
                                  period=float(period_text)))
            except (ValueError, TypeError):
                print(f"bad task spec {chunk!r}; expected C:P",
                      file=sys.stderr)
                return 2
        taskset = TaskSet(tasks)
        demand = args.demand
    if isinstance(demand, str):
        try:
            demand = float(demand)
        except ValueError:
            pass
    policies = (tuple(p.strip() for p in args.policies.split(","))
                if args.policies else PAPER_POLICIES)
    machine = MACHINE_PRESETS[args.machine]()
    rows = compare_policies(taskset, machine, policies=policies,
                            demand=demand, duration=args.duration)
    print(comparison_table(rows))
    return 0


def _cmd_obs_help(args: argparse.Namespace) -> int:
    args.obs_parser.print_help()
    return 2


def _cmd_catalog_help(args: argparse.Namespace) -> int:
    args.catalog_parser.print_help()
    return 2


def _cmd_catalog_list(args: argparse.Namespace) -> int:
    from repro.catalog import catalog_summary
    print(catalog_summary())
    return 0


def _cmd_catalog_show(args: argparse.Namespace) -> int:
    from repro.catalog import get_scenario
    scenario = get_scenario(args.scenario)
    print(scenario.to_json(indent=2))
    print(f"fingerprint: {scenario.fingerprint()}")
    return 0


def _cmd_catalog_run(args: argparse.Namespace) -> int:
    from repro.catalog import run_scenario
    result = run_scenario(args.scenario, quick=not args.full,
                          workers=args.workers,
                          cache_dir=_cache_dir_from(args),
                          progress=args.progress,
                          steady_fast_path=args.steady_fast_path,
                          engine=args.engine)
    print(result.render(charts=not args.no_charts))
    return 0 if result.all_checks_pass else 1


def _cmd_catalog_audit(args: argparse.Namespace) -> int:
    from repro.catalog import (AuditProfile, audit_catalog,
                               render_reports, reports_to_json)
    profile = AuditProfile(n_sets=args.sets, max_points=args.points,
                           duration=args.audit_duration)
    reports = audit_catalog(args.scenarios or None, profile=profile,
                            cache_dir=_cache_dir_from(args),
                            workers=args.workers, engine=args.engine)
    print(render_reports(reports))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(reports_to_json(reports, profile=profile))
        print(f"wrote {args.report}")
    return 0 if all(r.ok for r in reports) else 1


def _cmd_cache_help(args: argparse.Namespace) -> int:
    args.cache_parser.print_help()
    return 2


def _format_age(seconds: float) -> str:
    if seconds >= 86400:
        return f"{seconds / 86400:.1f}d"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def _cmd_cache_info(args: argparse.Namespace) -> int:
    cache = CellCache(args.cache_dir)
    summary = cache.age_summary()
    print(f"cell cache: {cache.root}")
    if summary is None:
        print("entries:    0")
        print("size:       0 bytes")
    else:
        entries, total_bytes, newest_age, oldest_age = summary
        print(f"entries:    {entries}")
        print(f"size:       {total_bytes} bytes "
              f"({total_bytes / 1024.0:.1f} KiB)")
        print(f"entry age:  newest {_format_age(newest_age)}, "
              f"oldest {_format_age(oldest_age)} (since last use)")
    swallowed = cache.swallowed_log_lines()
    print(f"swallowed:  {len(swallowed)} unexpected error(s) recorded")
    if swallowed:
        print(f"  last: {swallowed[-1]}")
        print("  (cache operations hit unexpected errors; see "
              f"{cache.root / cache.SWALLOWED_LOG})")
    return 0


def _cmd_cache_clean(args: argparse.Namespace) -> int:
    cache = CellCache(args.cache_dir)
    if args.max_bytes is not None or args.max_age is not None:
        stats = cache.sweep(max_bytes=args.max_bytes, max_age=args.max_age)
        print(f"swept {cache.root}: scanned {stats.scanned}, "
              f"expired {stats.expired}, evicted {stats.evicted}, "
              f"reclaimed {stats.reclaimed_bytes} bytes")
        print(f"remaining: {stats.remaining_entries} entr(ies), "
              f"{stats.remaining_bytes} bytes")
        return 0
    removed = cache.clear()
    print(f"removed {removed} cached cell result(s) from {cache.root}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import AdmissionQueue, SweepService, TenantQuotas

    cache = None
    if not args.no_cache:
        cache = CellCache(args.cache_dir, max_bytes=args.max_bytes,
                          max_age=args.max_age)
    executor = None
    if args.dist_port is not None:
        from repro.dist import RemoteCellExecutor
        executor = RemoteCellExecutor(host=args.host, port=args.dist_port,
                                      lease_timeout=args.lease_timeout)
    service = SweepService(
        cache=cache,
        executor=executor,
        workers=args.workers,
        quotas=TenantQuotas(max_inflight=args.tenant_inflight,
                            retry_after=args.retry_after),
        admission=AdmissionQueue(max_pending=args.max_pending),
        host=args.host, port=args.port,
        sweep_interval=args.sweep_interval)

    async def _main() -> None:
        await service.start()
        # Machine-parseable ready line (the smoke harness reads the
        # ephemeral port from it).
        ready = f"rtdvs-serve ready host={service.host} port={service.port}"
        if executor is not None:
            ready += f" dist_port={executor.port}"
        print(ready, flush=True)
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        if executor is not None:
            executor.shutdown()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.dist import WorkerError, parse_connect, run_worker

    try:
        host, port = parse_connect(args.connect)
        stats = run_worker(host, port, engine=args.engine,
                           max_leases=args.max_leases,
                           reconnect=args.reconnect,
                           reconnect_delay=args.reconnect_delay,
                           log=None if args.quiet else sys.stderr)
    except WorkerError as exc:
        print(exc, file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130
    print(f"worker done: {stats['leases']} lease(s), "
          f"{stats['cells']} cell(s), {stats['bytes_out']} bytes out, "
          f"{stats['reconnects']} reconnect(s), "
          f"{stats['errors']} error(s)")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceError, SweepServiceClient

    if args.resume is not None:
        if args.scenario is not None or args.spec is not None \
                or args.panel or args.request_id is not None:
            print("--resume takes no sweep target (the journal has it); "
                  "drop SCENARIO/--spec/--panel/--request-id",
                  file=sys.stderr)
            return 2
        request: dict = {"resume": True, "request_id": args.resume}
        return _submit_request(args, request)
    if (args.scenario is None) == (args.spec is None):
        print("submit needs exactly one of SCENARIO, --spec, or --resume",
              file=sys.stderr)
        return 2
    request = {"quick": not args.full}
    if args.spec is not None:
        text = args.spec
        if text.startswith("@"):
            try:
                with open(text[1:], "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError as exc:
                print(exc, file=sys.stderr)
                return 2
        try:
            request["spec"] = json.loads(text)
        except ValueError as exc:
            print(f"bad --spec JSON: {exc}", file=sys.stderr)
            return 2
    else:
        request["scenario"] = args.scenario
        if args.panel:
            request["panel"] = args.panel
    if args.tenant != "default":
        request["tenant"] = args.tenant
    if args.engine != "scalar":
        request["engine"] = args.engine
    if args.stream_every:
        request["stream_every"] = args.stream_every
    if args.request_id is not None:
        request["request_id"] = args.request_id
    return _submit_request(args, request)


def _submit_request(args: argparse.Namespace, request: dict) -> int:
    import json

    from repro.service import ServiceError, SweepServiceClient

    client = SweepServiceClient(host=args.host, port=args.port,
                                timeout=args.timeout)
    saw_done = False
    try:
        for event in client.submit(request):
            if args.json:
                print(json.dumps(event), flush=True)
                if event.get("event") == "done":
                    saw_done = True
                continue
            kind = event.get("event")
            if kind == "started":
                print(f"accepted: {event['total_cells']} cell(s) across "
                      f"{len(event['jobs'])} panel(s)")
            elif kind == "job":
                print(f"[{event['scenario']}/{event['panel']}] "
                      f"{event['warm']}/{event['cells']} warm")
            elif kind == "partial":
                print(f"[{event['scenario']}/{event['panel']}] "
                      f"{event['done']}/{event['total']} cells",
                      flush=True)
            elif kind == "result":
                print(f"[{event['scenario']}/{event['panel']}] result: "
                      f"cache_hits={event['cache_hits']} "
                      f"simulated={event['simulated_cells']} "
                      f"coalesced={event['coalesced_cells']}")
            elif kind == "done":
                saw_done = True
                line = (f"done in {event['elapsed_s']:.2f}s: "
                        f"cache_hits={event['cache_hits']} "
                        f"simulated={event['simulated_cells']} "
                        f"coalesced={event['coalesced_cells']}")
                if "request_id" in event:
                    line += (f" journal={event['request_id']} "
                             f"(done={event['journal_done']}, "
                             f"skipped={event['journal_skipped']})")
                print(line)
    except ServiceError as exc:
        print(exc, file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach service at {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    finally:
        client.close()
    return 0 if saw_done else 1


def _cmd_obs_summarize(args: argparse.Namespace) -> int:
    from repro.obs import load_jsonl, summarize_records
    from repro.obs.metrics import RunMetrics

    try:
        records = load_jsonl(args.file)
    except OSError as exc:
        print(exc, file=sys.stderr)
        return 2
    if not records:
        print(f"{args.file}: no metrics records")
        return 1
    print(summarize_records(records))
    if args.csv or args.residency_csv:
        from repro.obs import metrics_to_csv, residency_to_csv
        metrics = [RunMetrics.from_dict(r) for r in records]
        if args.csv:
            metrics_to_csv(metrics, path=args.csv)
            print(f"wrote {args.csv}")
        if args.residency_csv:
            residency_to_csv(metrics, path=args.residency_csv)
            print(f"wrote {args.residency_csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
