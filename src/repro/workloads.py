"""A library of named, realistic embedded workloads.

The paper motivates RT-DVS with "digital camcorders, cellular phones, and
portable medical devices".  These presets give the examples, benchmarks
and users concrete task sets in that spirit — each documented with its
rationale, each schedulable under EDF at full speed, and each paired with
a plausible demand model.

All functions return plain :class:`~repro.model.task.TaskSet` objects, so
they compose with every policy/machine in the library.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.model.demand import (ConstantFractionDemand, DemandModel,
                                TraceDemand, UniformFractionDemand)
from repro.model.task import Task, TaskSet


def camcorder() -> TaskSet:
    """The paper's motivating device (Secs. 1 and 2.2).

    A sensor-reaction task with the 5 ms deadline / 3 ms WCET from the
    paper's example, plus video pipeline and housekeeping.  U ~= 0.86.
    """
    return TaskSet([
        Task(wcet=3.0, period=5.0, name="sensor"),
        Task(wcet=8.0, period=33.0, name="encode"),     # ~30 fps frame
        Task(wcet=2.0, period=100.0, name="autofocus"),
        Task(wcet=1.0, period=500.0, name="osd"),       # on-screen display
    ])


def cellphone() -> TaskSet:
    """A GSM-era handset: codec frames, radio bursts, protocol, UI.

    U ~= 0.57; mirrors the mixed short/long periods the paper's generator
    models.
    """
    return TaskSet([
        Task(wcet=4.0, period=20.0, name="codec"),
        Task(wcet=1.5, period=10.0, name="radio"),
        Task(wcet=6.0, period=50.0, name="stack"),
        Task(wcet=8.0, period=100.0, name="display"),
        Task(wcet=10.0, period=500.0, name="agenda"),
    ])


def medical_monitor() -> TaskSet:
    """A portable patient monitor (the paper's 'portable medical devices').

    Tight sensing loops plus slow logging; U ~= 0.57.
    """
    return TaskSet([
        Task(wcet=0.8, period=2.0, name="ecg"),
        Task(wcet=1.0, period=10.0, name="spo2"),
        Task(wcet=2.0, period=40.0, name="alarm-scan"),
        Task(wcet=5.0, period=250.0, name="trend-log"),
    ])


def avionics_harmonic() -> TaskSet:
    """A classic harmonic avionics-style set (periods 5/10/20/40/80 ms).

    Harmonic periods make the set RM-schedulable up to U = 1, which
    exercises the region where the exact RM test beats the Liu-Layland
    bound.  U = 0.95.
    """
    return TaskSet([
        Task(wcet=1.5, period=5.0, name="attitude"),
        Task(wcet=2.0, period=10.0, name="nav"),
        Task(wcet=4.0, period=20.0, name="guidance"),
        Task(wcet=8.0, period=40.0, name="mission"),
        Task(wcet=4.0, period=80.0, name="telemetry"),
    ])


def videophone() -> TaskSet:
    """Audio+video conferencing terminal; U ~= 0.75."""
    return TaskSet([
        Task(wcet=2.0, period=10.0, name="audio-in"),
        Task(wcet=2.0, period=10.0, name="audio-out"),
        Task(wcet=12.0, period=66.0, name="video-dec"),
        Task(wcet=10.0, period=66.0, name="video-enc"),
        Task(wcet=2.0, period=100.0, name="ui"),
    ])


def camcorder_demand() -> DemandModel:
    """Sensor mostly quiet with bursts; pipeline steady at ~80%."""
    return TraceDemand({
        "sensor": [0.5] * 19 + [3.0],
        "encode": [6.5],
        "autofocus": [1.2],
        "osd": [0.5],
    })


def steady_demand(fraction: float = 0.8) -> DemandModel:
    """Invocations at a steady fraction of the worst case."""
    return ConstantFractionDemand(fraction)


def bursty_demand(seed: int = 0) -> DemandModel:
    """Widely varying demands (uniform over [0.1, 1.0] of worst case)."""
    return UniformFractionDemand(low=0.1, high=1.0, seed=seed)


#: name -> (taskset factory, suggested demand-model factory)
WORKLOADS: Dict[str, Tuple] = {
    "camcorder": (camcorder, camcorder_demand),
    "cellphone": (cellphone, lambda: bursty_demand(seed=1)),
    "medical": (medical_monitor, lambda: steady_demand(0.7)),
    "avionics": (avionics_harmonic, lambda: steady_demand(0.9)),
    "videophone": (videophone, lambda: bursty_demand(seed=2)),
}


def load(name: str):
    """Look up a workload by name: returns (taskset, demand_model)."""
    try:
        taskset_factory, demand_factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: "
            f"{sorted(WORKLOADS)}") from None
    return taskset_factory(), demand_factory()
