"""Random task-set generation following the paper's methodology (Sec. 3.1).

"Each task has an equal probability of having a short (1-10ms), medium
(10-100ms), or long (100-1000ms) period.  Within each range, task periods
are uniformly distributed. ... The computation requirements of the tasks are
assigned randomly using a similar 3 range uniform distribution.  Finally,
the task computation requirements are scaled by a constant chosen such that
the sum of the utilizations of the tasks in the task set reaches a desired
value."

The same methodology was used for the EMERALDS microkernel evaluation
(Zuberi, Pillai & Shin, SOSP'99), which the paper cites.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import TaskModelError
from repro.model.task import Task, TaskSet


@dataclass(frozen=True)
class PeriodBand:
    """A uniform range of periods (or raw computation times)."""

    low: float
    high: float

    def __post_init__(self):
        if not 0 < self.low <= self.high:
            raise TaskModelError(
                f"band must satisfy 0 < low <= high, got [{self.low}, "
                f"{self.high}]")

    def sample(self, rng: random.Random) -> float:
        """Draw uniformly from the band."""
        return rng.uniform(self.low, self.high)


#: The paper's three period bands: short 1-10 ms, medium 10-100 ms,
#: long 100-1000 ms.
DEFAULT_BANDS: Tuple[PeriodBand, ...] = (
    PeriodBand(1.0, 10.0),
    PeriodBand(10.0, 100.0),
    PeriodBand(100.0, 1000.0),
)


class TaskSetGenerator:
    """Generates random task sets with a target total worst-case utilization.

    Parameters
    ----------
    n_tasks:
        Number of tasks per set.
    utilization:
        Target total worst-case utilization (``ΣC_i/P_i``); must be in
        (0, 1] so at least EDF can schedule the result at full frequency.
    bands:
        Period bands; each task picks one band uniformly, then a period
        uniformly within it.  Raw computation times are drawn the same way
        and then rescaled.
    seed:
        Seed for the internal PRNG.  Two generators with equal parameters
        and seed produce identical sequences of task sets.

    Notes
    -----
    Scaling raw computation draws to the target utilization can make some
    ``C_i`` exceed ``P_i`` (an infeasible task); such draws are rejected and
    redrawn, which leaves the conditional distribution unchanged for the
    feasible region — the paper does not discuss this corner, and at the
    utilizations it evaluates (<= 1) rejections are rare.
    """

    def __init__(self, n_tasks: int, utilization: float,
                 bands: Sequence[PeriodBand] = DEFAULT_BANDS,
                 seed: Optional[int] = None):
        if n_tasks <= 0:
            raise TaskModelError(f"n_tasks must be positive, got {n_tasks}")
        if not 0.0 < utilization <= 1.0:
            raise TaskModelError(
                f"target utilization must be in (0, 1], got {utilization}")
        if not bands:
            raise TaskModelError("at least one period band is required")
        self.n_tasks = n_tasks
        self.utilization = utilization
        self.bands = tuple(bands)
        self._rng = random.Random(seed)

    def generate(self, max_attempts: int = 1000) -> TaskSet:
        """Draw one task set.

        Raises
        ------
        TaskModelError
            If no feasible draw is found in ``max_attempts`` attempts
            (practically impossible for utilization <= 1 with the default
            bands, but guards against degenerate custom bands).
        """
        for _ in range(max_attempts):
            candidate = self._draw_once()
            if candidate is not None:
                return candidate
        raise TaskModelError(
            f"could not generate a feasible task set with n={self.n_tasks}, "
            f"U={self.utilization} in {max_attempts} attempts")

    def generate_many(self, count: int) -> List[TaskSet]:
        """Draw ``count`` independent task sets."""
        if count < 0:
            raise TaskModelError(f"count must be >= 0, got {count}")
        return [self.generate() for _ in range(count)]

    # -- internals ----------------------------------------------------------
    def _draw_once(self) -> Optional[TaskSet]:
        rng = self._rng
        periods = [self._sample_band(rng) for _ in range(self.n_tasks)]
        raw_comp = [self._sample_band(rng) for _ in range(self.n_tasks)]
        raw_utilization = sum(c / p for c, p in zip(raw_comp, periods))
        scale = self.utilization / raw_utilization
        tasks = []
        for c, p in zip(raw_comp, periods):
            wcet = c * scale
            if wcet > p:
                return None  # reject: infeasible task after scaling
            tasks.append(Task(wcet=wcet, period=p))
        return TaskSet(tasks)

    def _sample_band(self, rng: random.Random) -> float:
        band = self.bands[rng.randrange(len(self.bands))]
        return band.sample(rng)
