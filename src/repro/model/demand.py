"""Per-invocation computation-demand models.

The paper's simulator (Sec. 3.1) parameterizes "the actual fraction of the
worst-case execution cycles that the tasks will require for each invocation"
as either a constant (e.g. ``c = 0.9``) or a random function (e.g. a
uniformly-distributed multiplier per invocation).  This module provides those
two models plus a worst-case model and a trace-driven model used to replay
the paper's worked example (Table 3).

All models are deterministic given their seed, so experiments are exactly
reproducible.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence, Union

from repro.errors import TaskModelError
from repro.model.task import Task


class DemandModel(ABC):
    """Maps (task, invocation index) to the actual cycles that invocation
    will consume.  Results must never exceed the task's worst case (the
    paper's guarantee condition C2)."""

    @abstractmethod
    def demand(self, task: Task, invocation: int) -> float:
        """Actual cycles required by invocation ``invocation`` of ``task``."""

    def reset(self) -> None:
        """Restore the model to its initial state (re-seed randomness)."""

    @property
    def mean_fraction(self) -> Optional[float]:
        """Expected demand as a fraction of the worst case, if known.

        Used by analysis helpers; ``None`` when the model cannot say
        (e.g. trace-driven demand).
        """
        return None


class WorstCaseDemand(DemandModel):
    """Every invocation consumes exactly the worst case (``c = 1``)."""

    def demand(self, task: Task, invocation: int) -> float:
        return task.wcet

    @property
    def mean_fraction(self) -> float:
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "WorstCaseDemand()"


class ConstantFractionDemand(DemandModel):
    """Every invocation consumes a fixed fraction ``c`` of the worst case.

    The paper evaluates ``c`` in {0.9, 0.7, 0.5} (Fig. 12).
    """

    def __init__(self, fraction: float):
        if not 0.0 < fraction <= 1.0:
            raise TaskModelError(
                f"demand fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    def demand(self, task: Task, invocation: int) -> float:
        return task.wcet * self.fraction

    @property
    def mean_fraction(self) -> float:
        return self.fraction

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantFractionDemand({self.fraction})"


class UniformFractionDemand(DemandModel):
    """Each invocation independently draws a uniform fraction of the worst
    case in ``[low, high]`` (paper's Fig. 13 uses ``[0, 1]``).

    Draws are memoized per (task name, invocation), so repeated queries for
    the same invocation — e.g. from a policy and the engine — agree, and two
    simulations over the same model instance see identical demands until
    :meth:`reset` is called.
    """

    def __init__(self, low: float = 0.0, high: float = 1.0,
                 seed: Optional[int] = 0):
        if not (0.0 <= low <= high <= 1.0):
            raise TaskModelError(
                f"uniform demand bounds must satisfy 0 <= low <= high <= 1, "
                f"got [{low}, {high}]")
        self.low = low
        self.high = high
        self.seed = seed
        self._rng = random.Random(seed)
        self._memo: Dict[tuple, float] = {}

    def demand(self, task: Task, invocation: int) -> float:
        key = (task.name, invocation)
        if key not in self._memo:
            fraction = self._rng.uniform(self.low, self.high)
            self._memo[key] = task.wcet * fraction
        return self._memo[key]

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self._memo.clear()

    @property
    def mean_fraction(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"UniformFractionDemand(low={self.low}, high={self.high}, "
                f"seed={self.seed})")


class TraceDemand(DemandModel):
    """Replay explicit per-invocation demands, as in the paper's Table 3.

    Parameters
    ----------
    trace:
        Maps task name to the list of actual computation times for its
        successive invocations.
    repeat:
        If True (default), the list wraps around for later invocations;
        otherwise invocations past the end of the list use the fallback.
    fallback_fraction:
        Fraction of the worst case used when a task or invocation is not
        covered by the trace and ``repeat`` is False.

    Every fallback use is counted in :attr:`fallback_draws`, so callers
    that *require* full trace coverage (e.g. sweep cells, where a silent
    worst-case substitution would corrupt the policy comparison) can
    detect underflow instead of averaging corrupt data.
    """

    def __init__(self, trace: Dict[str, Sequence[float]], repeat: bool = True,
                 fallback_fraction: float = 1.0):
        if not 0.0 < fallback_fraction <= 1.0:
            raise TaskModelError(
                f"fallback fraction must be in (0, 1], got {fallback_fraction}")
        self.trace = {name: list(values) for name, values in trace.items()}
        for name, values in self.trace.items():
            if not values:
                raise TaskModelError(
                    f"trace for task {name!r} must not be empty")
            for value in values:
                if value < 0:
                    raise TaskModelError(
                        f"trace demand for {name!r} must be >= 0, got {value}")
        self.repeat = repeat
        self.fallback_fraction = fallback_fraction
        #: Times an uncovered (task, invocation) fell back to
        #: ``fallback_fraction`` of the worst case.
        self.fallback_draws = 0

    def demand(self, task: Task, invocation: int) -> float:
        values = self.trace.get(task.name)
        if values is None:
            self.fallback_draws += 1
            return task.wcet * self.fallback_fraction
        if invocation < len(values):
            return values[invocation]
        if self.repeat:
            return values[invocation % len(values)]
        self.fallback_draws += 1
        return task.wcet * self.fallback_fraction

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceDemand({self.trace!r}, repeat={self.repeat})"


def demand_from_spec(spec: Union[str, float, DemandModel],
                     seed: Optional[int] = 0) -> DemandModel:
    """Build a demand model from a compact specification.

    Accepted forms:

    * an existing :class:`DemandModel` (returned unchanged);
    * a float ``c`` in (0, 1] — :class:`ConstantFractionDemand` (``1.0``
      yields :class:`WorstCaseDemand`);
    * the string ``"worst"`` or ``"wcet"`` — :class:`WorstCaseDemand`;
    * the string ``"uniform"`` — :class:`UniformFractionDemand` on [0, 1].

    This mirrors the paper's simulator input: "a constant (e.g., 0.9 ...) or
    ... a uniformly-distributed random multiplier for each invocation".
    """
    if isinstance(spec, DemandModel):
        return spec
    if isinstance(spec, str):
        lowered = spec.strip().lower()
        if lowered in ("worst", "wcet", "worst-case"):
            return WorstCaseDemand()
        if lowered == "uniform":
            return UniformFractionDemand(seed=seed)
        raise TaskModelError(f"unknown demand spec {spec!r}")
    try:
        fraction = float(spec)
    except (TypeError, ValueError):
        raise TaskModelError(f"unknown demand spec {spec!r}") from None
    if fraction == 1.0:
        return WorstCaseDemand()
    return ConstantFractionDemand(fraction)


def paper_example_trace() -> TraceDemand:
    """Actual computation requirements of the worked example (Table 3).

    Invocation 1 uses (2, 1, 1) ms for (T1, T2, T3); invocation 2 uses
    (1, 1, 1) ms.  Later invocations repeat the pattern.
    """
    return TraceDemand({
        "T1": [2.0, 1.0],
        "T2": [1.0, 1.0],
        "T3": [1.0, 1.0],
    })
