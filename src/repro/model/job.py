"""Jobs: single invocations of a periodic task.

A :class:`Job` is created by the simulator each time a task is released.  It
records the release time, absolute deadline, the *actual* cycle demand of
this invocation (drawn from the task set's demand model), and what happened
to it (completion time, cycles executed, whether the deadline was met).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import TaskModelError
from repro.model.task import Task


class JobOutcome(enum.Enum):
    """Terminal status of a job at the end of a simulation."""

    COMPLETED = "completed"          #: finished all its cycles by its deadline
    MISSED = "missed"                #: finished or still running past deadline
    UNFINISHED = "unfinished"        #: simulation ended before its deadline


@dataclass(slots=True)
class Job:
    """One invocation of a periodic task.

    The class is slotted: the simulator allocates one instance per release,
    so on large sweeps the fixed slot layout measurably cuts memory traffic
    and attribute-access time on the engine's hot path.

    Attributes
    ----------
    task:
        The task this job belongs to.
    release_time:
        Absolute time at which the job became ready.
    demand:
        Actual cycles this invocation needs (``≤ task.wcet``).
    index:
        Zero-based invocation number of this task.
    executed:
        Cycles executed so far (maintained by the simulator).
    completion_time:
        Set when the job finishes.
    """

    task: Task
    release_time: float
    demand: float
    index: int
    executed: float = 0.0
    completion_time: Optional[float] = None

    def __post_init__(self):
        if self.demand < 0:
            raise TaskModelError(
                f"job demand must be non-negative, got {self.demand}")
        # Note: demand may exceed task.wcet when the simulator is run with
        # enforce_wcet=False (cold-start overrun emulation, Sec. 4.3); by
        # default the engine clamps demand to the worst case (condition C2).

    @property
    def absolute_deadline(self) -> float:
        """Deadline = release time + period (deadline equals period)."""
        return self.release_time + self.task.period

    @property
    def remaining(self) -> float:
        """Actual cycles still to execute."""
        return max(0.0, self.demand - self.executed)

    @property
    def is_complete(self) -> bool:
        """Whether all the demanded cycles have been executed."""
        return self.completion_time is not None

    @property
    def worst_case_remaining(self) -> float:
        """Cycles left against the *worst-case* budget (``c_left`` in the
        paper's pseudo-code): ``C_i`` minus the cycles executed so far, zero
        after completion."""
        if self.is_complete:
            return 0.0
        return max(0.0, self.task.wcet - self.executed)

    def outcome(self, now: float) -> JobOutcome:
        """Classify this job at simulation time ``now``."""
        if self.is_complete:
            if self.completion_time <= self.absolute_deadline + 1e-9:
                return JobOutcome.COMPLETED
            return JobOutcome.MISSED
        if now >= self.absolute_deadline - 1e-9:
            return JobOutcome.MISSED
        return JobOutcome.UNFINISHED

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Job({self.task.name}#{self.index} r={self.release_time:g} "
                f"d={self.absolute_deadline:g} demand={self.demand:g})")
