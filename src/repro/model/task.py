"""Periodic real-time tasks and task sets.

The model follows Sec. 2.2 of the paper: a task ``T_i`` is released once per
period ``P_i``, requires at most ``C_i`` cycles per invocation (``C_i`` is the
computation time at the maximum processor frequency, so "cycles" and
"milliseconds at full speed" are interchangeable), and must complete by the
end of its period.

Units
-----
Times are plain floats in an arbitrary unit (the paper uses milliseconds).
Work is measured in *cycles*, normalized so that relative frequency 1.0
executes one cycle per time unit.  A task's worst case is therefore both
``C_i`` time units at full speed and ``C_i`` cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import TaskModelError


@dataclass(frozen=True)
class Task:
    """A periodic real-time task.

    Parameters
    ----------
    wcet:
        Worst-case computation time per invocation, expressed at the maximum
        processor frequency (equivalently: worst-case cycles, normalized).
    period:
        Release period; the relative deadline equals the period (classic
        Liu & Layland model, as assumed by the paper).
    name:
        Optional human-readable name; auto-assigned by :class:`TaskSet` when
        empty.
    """

    wcet: float
    period: float
    name: str = ""

    def __post_init__(self):
        if not (self.wcet > 0 and math.isfinite(self.wcet)):
            raise TaskModelError(
                f"task wcet must be positive and finite, got {self.wcet!r}")
        if not (self.period > 0 and math.isfinite(self.period)):
            raise TaskModelError(
                f"task period must be positive and finite, got {self.period!r}")
        if self.wcet > self.period:
            raise TaskModelError(
                f"task wcet ({self.wcet}) exceeds its period ({self.period}); "
                "such a task can never meet its deadline on one processor")

    @property
    def utilization(self) -> float:
        """Worst-case utilization ``C_i / P_i``."""
        return self.wcet / self.period

    @property
    def deadline(self) -> float:
        """Relative deadline (equals the period in this model)."""
        return self.period

    def with_name(self, name: str) -> "Task":
        """Return a copy of this task carrying ``name``."""
        return replace(self, name=name)

    def scaled(self, factor: float) -> "Task":
        """Return a copy with the worst-case computation scaled by ``factor``.

        Used by the task-set generator to hit a target total utilization.
        """
        if factor <= 0:
            raise TaskModelError(f"scale factor must be positive, got {factor}")
        return replace(self, wcet=self.wcet * factor)

    def release_times(self, until: float, start: float = 0.0) -> Iterator[float]:
        """Yield the release times of this task in ``[start, until)``.

        The first release is at ``start`` (phase 0, as in the paper).
        """
        k = 0
        while True:
            t = start + k * self.period
            if t >= until:
                return
            yield t
            k += 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "task"
        return f"{label}(C={self.wcet:g}, P={self.period:g})"


class TaskSet:
    """An ordered collection of :class:`Task` objects.

    The order is preserved and used for deterministic tie-breaking in the
    schedulers (lower index wins among equal priorities).  Task names are
    made unique on construction: unnamed tasks get ``T1``, ``T2``, ...

    ``TaskSet`` behaves as an immutable sequence of tasks.
    """

    def __init__(self, tasks: Iterable[Task]):
        tasks = list(tasks)
        if not tasks:
            raise TaskModelError("a task set must contain at least one task")
        named: List[Task] = []
        seen = set()
        for index, task in enumerate(tasks):
            if not isinstance(task, Task):
                raise TaskModelError(
                    f"task set entries must be Task instances, got {task!r}")
            name = task.name or f"T{index + 1}"
            if name in seen:
                raise TaskModelError(f"duplicate task name {name!r}")
            seen.add(name)
            named.append(task if task.name == name else task.with_name(name))
        self._tasks: Tuple[Task, ...] = tuple(named)
        self._hyperperiod_cache: dict = {}

    # -- sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __getitem__(self, index) -> Task:
        return self._tasks[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, TaskSet):
            return NotImplemented
        return self._tasks == other._tasks

    def __hash__(self) -> int:
        return hash(self._tasks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(t) for t in self._tasks)
        return f"TaskSet([{inner}])"

    # -- derived quantities ------------------------------------------------
    @property
    def tasks(self) -> Tuple[Task, ...]:
        """The tasks, in construction order."""
        return self._tasks

    @property
    def utilization(self) -> float:
        """Total worst-case utilization ``ΣC_i/P_i``."""
        return sum(t.utilization for t in self._tasks)

    def by_name(self, name: str) -> Task:
        """Return the task called ``name``.

        Raises
        ------
        KeyError
            If no task has that name.
        """
        for task in self._tasks:
            if task.name == name:
                return task
        raise KeyError(name)

    def index_of(self, task: Task) -> int:
        """Return the construction index of ``task``."""
        return self._tasks.index(task)

    def sorted_by_period(self) -> List[Task]:
        """Tasks in RM priority order (shortest period first, stable)."""
        return sorted(self._tasks, key=lambda t: t.period)

    def hyperperiod(self, resolution: float = 1e-6) -> Optional[float]:
        """Least common multiple of the periods, if they are commensurable.

        Periods are snapped to an integer grid of ``resolution`` before the
        LCM is computed.  Returns ``None`` when the LCM would be absurdly
        large (more than ``1e12`` resolution ticks), which indicates
        effectively incommensurable periods.

        The result is cached per ``resolution`` (the task tuple is
        immutable), so per-cell eligibility checks and ccRM pacing do not
        repay the LCM computation.
        """
        try:
            return self._hyperperiod_cache[resolution]
        except KeyError:
            pass
        result = self._hyperperiod_uncached(resolution)
        self._hyperperiod_cache[resolution] = result
        return result

    def _hyperperiod_uncached(self, resolution: float) -> Optional[float]:
        ticks: List[int] = []
        for task in self._tasks:
            scaled = task.period / resolution
            tick = round(scaled)
            if tick <= 0 or abs(scaled - tick) > 1e-6 * max(1.0, scaled):
                return None
            ticks.append(tick)
        lcm = 1
        for tick in ticks:
            lcm = lcm * tick // math.gcd(lcm, tick)
            if lcm > 1e12:
                return None
        return lcm * resolution

    def scaled_to_utilization(self, target: float) -> "TaskSet":
        """Return a copy whose total utilization equals ``target``.

        All worst-case computation times are multiplied by the same constant,
        exactly the scaling step in the paper's task-set generator
        (Sec. 3.1).  Raises :class:`TaskModelError` if scaling would push any
        task's wcet above its period (target too high for this set).
        """
        if target <= 0:
            raise TaskModelError(
                f"target utilization must be positive, got {target}")
        factor = target / self.utilization
        return TaskSet([t.scaled(factor) for t in self._tasks])

    def with_task(self, task: Task) -> "TaskSet":
        """Return a new task set with ``task`` appended."""
        return TaskSet(list(self._tasks) + [task])

    def without_task(self, name: str) -> "TaskSet":
        """Return a new task set without the task called ``name``."""
        remaining = [t for t in self._tasks if t.name != name]
        if len(remaining) == len(self._tasks):
            raise KeyError(name)
        return TaskSet(remaining)


def example_taskset() -> TaskSet:
    """The worked example of the paper (Table 2).

    Three tasks with computing times 3, 3, 1 ms and periods 8, 10, 14 ms,
    for a total worst-case utilization of ~0.746.
    """
    return TaskSet([
        Task(wcet=3.0, period=8.0, name="T1"),
        Task(wcet=3.0, period=10.0, name="T2"),
        Task(wcet=1.0, period=14.0, name="T3"),
    ])
