"""Task model: periodic tasks, jobs, demand models, generators, tests.

This subpackage implements the classic periodic real-time task model used by
the paper (Sec. 2.2): each task ``T_i`` has a period ``P_i`` and a worst-case
computation time ``C_i`` expressed at the maximum processor frequency, with
deadline equal to the end of the period.
"""

from repro.model.task import Task, TaskSet
from repro.model.job import Job, JobOutcome
from repro.model.demand import (
    DemandModel,
    WorstCaseDemand,
    ConstantFractionDemand,
    UniformFractionDemand,
    TraceDemand,
    demand_from_spec,
)
from repro.model.generator import TaskSetGenerator, PeriodBand, DEFAULT_BANDS
from repro.model.schedulability import (
    edf_schedulable,
    rm_liu_layland_bound,
    rm_liu_layland_schedulable,
    rm_exact_schedulable,
    rm_rta_schedulable,
    rm_scheduling_points,
    response_time_analysis,
)

__all__ = [
    "Task",
    "TaskSet",
    "Job",
    "JobOutcome",
    "DemandModel",
    "WorstCaseDemand",
    "ConstantFractionDemand",
    "UniformFractionDemand",
    "TraceDemand",
    "demand_from_spec",
    "TaskSetGenerator",
    "PeriodBand",
    "DEFAULT_BANDS",
    "edf_schedulable",
    "rm_liu_layland_bound",
    "rm_liu_layland_schedulable",
    "rm_exact_schedulable",
    "rm_rta_schedulable",
    "rm_scheduling_points",
    "response_time_analysis",
]
