"""Schedulability tests for EDF and RM, with frequency scaling.

These are the tests the paper's static voltage-scaling algorithm (Fig. 1)
evaluates at each candidate operating frequency.  Scaling the operating
frequency by a factor ``alpha`` (0 < alpha <= 1, relative to the maximum)
multiplies every worst-case computation time by ``1/alpha``; equivalently,
the right-hand side of each test is multiplied by ``alpha``.

Three tests are provided:

* :func:`edf_schedulable` — the necessary and sufficient EDF utilization
  test ``ΣC_i/P_i <= alpha`` [Liu & Layland 1973].
* :func:`rm_liu_layland_schedulable` — the sufficient (not necessary)
  utilization bound ``ΣU_i <= alpha * n(2^{1/n} - 1)``.
* :func:`rm_exact_schedulable` — the exact scheduling-point test of
  Lehoczky, Sha & Ding (1989): task ``T_i`` is schedulable iff the
  cumulative demand of ``T_i`` and all higher-priority tasks fits before
  some scheduling point ``t <= P_i``.
* :func:`rm_rta_schedulable` — the same exact criterion expressed as
  response-time analysis [Joseph & Pandya 1986, Audsley et al. 1993],
  iterated as a whole-vector fixed point and memoized per
  ``(task set, alpha)``.  The scheduling-point test enumerates every
  multiple of every higher-priority period up to ``P_i`` — O(n² · k)
  points for hyperperiod-rich sets — which is why a 200-task static-RM
  setup used to cost ~half a second; the RTA fixed point converges in a
  handful of O(n²) array sweeps instead.

The paper's Figure 1 presents the scheduling-point style test; its example
(Table 2, Fig. 2: "Static RM fails at 0.75") is reproduced by all RM tests.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

from repro.errors import TaskModelError
from repro.model.task import Task

#: Relative tolerance for the "<=" comparisons, so that utilization sums that
#: are exactly equal to the bound (up to floating-point noise) pass, matching
#: the paper's use of exact arithmetic in the examples (e.g. U = 0.746 at
#: alpha = 0.75).
_EPS = 1e-9


def _check_alpha(alpha: float) -> None:
    if not 0.0 < alpha <= 1.0 + _EPS:
        raise TaskModelError(
            f"frequency scaling factor must be in (0, 1], got {alpha}")


def edf_schedulable(tasks: Iterable[Task], alpha: float = 1.0) -> bool:
    """EDF test at relative frequency ``alpha``: ``ΣC_i/P_i <= alpha``.

    Necessary and sufficient for the periodic, deadline-equals-period,
    preemptive, independent-task model.
    """
    _check_alpha(alpha)
    total = sum(t.utilization for t in tasks)
    return total <= alpha + _EPS


def rm_liu_layland_bound(n: int) -> float:
    """The Liu & Layland utilization bound ``n(2^{1/n} - 1)`` for n tasks."""
    if n <= 0:
        raise TaskModelError(f"task count must be positive, got {n}")
    return n * (2.0 ** (1.0 / n) - 1.0)


def rm_liu_layland_schedulable(tasks: Iterable[Task],
                               alpha: float = 1.0) -> bool:
    """Sufficient RM test at relative frequency ``alpha``.

    ``ΣU_i <= alpha * n(2^{1/n} - 1)``.  Conservative: may reject task sets
    that the exact test accepts.
    """
    _check_alpha(alpha)
    tasks = list(tasks)
    total = sum(t.utilization for t in tasks)
    return total <= alpha * rm_liu_layland_bound(len(tasks)) + _EPS


def rm_scheduling_points(tasks: Sequence[Task], i: int) -> List[float]:
    """Scheduling points for task ``tasks[i]`` (tasks sorted by period).

    The points are every multiple of every period of priority >= tasks[i]
    (shorter or equal period) that is <= tasks[i].period, plus tasks[i]'s
    own period.  Demand only needs to be checked at these points [Lehoczky,
    Sha & Ding 1989].
    """
    if not 0 <= i < len(tasks):
        raise TaskModelError(f"task index {i} out of range")
    horizon = tasks[i].period
    points = set()
    for j in range(i + 1):
        period = tasks[j].period
        k = 1
        while k * period <= horizon + _EPS:
            points.add(k * period)
            k += 1
    points.add(horizon)
    return sorted(points)


def rm_exact_schedulable(tasks: Iterable[Task], alpha: float = 1.0) -> bool:
    """Exact (necessary and sufficient) RM test at relative frequency
    ``alpha`` via the scheduling-point criterion.

    Task ``T_i`` (in period order) is schedulable iff there exists a
    scheduling point ``t <= P_i`` with ``Σ_{j<=i} ceil(t/P_j) * C_j <=
    alpha * t``.  The whole set is schedulable iff every task is.

    For the paper's example set {(3,8), (3,10), (1,14)} this fails at
    ``alpha = 0.75`` and passes at ``alpha = 1.0``, matching Fig. 2.
    """
    _check_alpha(alpha)
    ordered = sorted(tasks, key=lambda t: t.period)
    if not ordered:
        raise TaskModelError("cannot test an empty task set")
    for i in range(len(ordered)):
        if not _rm_task_feasible(ordered, i, alpha):
            return False
    return True


def _rm_task_feasible(ordered: Sequence[Task], i: int, alpha: float) -> bool:
    """Exact feasibility of ``ordered[i]`` under RM at frequency ``alpha``."""
    for point in rm_scheduling_points(ordered, i):
        demand = 0.0
        for j in range(i + 1):
            demand += math.ceil(point / ordered[j].period - _EPS) \
                * ordered[j].wcet
        if demand <= alpha * point + _EPS:
            return True
    return False


#: Memo for :func:`rm_rta_schedulable`, keyed on the period-ordered
#: ``(period, wcet)`` tuple and ``alpha``.  Static RM policies re-run the
#: full test at every candidate operating point on every setup / admission
#: event; within a sweep the same (task set, frequency) pair recurs across
#: cells, so a process-wide table pays for itself immediately.  Bounded:
#: wholesale-cleared when full (simple, and the working set of distinct
#: task sets in one process is far below the cap in practice).
_RTA_MEMO: dict = {}
_RTA_MEMO_MAX = 4096


def _rta_memo_clear() -> None:
    """Drop all memoized RTA verdicts (test hook)."""
    _RTA_MEMO.clear()


def rm_rta_schedulable(tasks: Iterable[Task], alpha: float = 1.0,
                       max_iterations: int = 10_000) -> bool:
    """Exact RM schedulability at relative frequency ``alpha`` via
    vectorized response-time analysis.

    Equivalent to :func:`rm_exact_schedulable` (both are necessary and
    sufficient for the synchronous, deadline-equals-period model) but
    computed as a single whole-vector fixed point: with tasks sorted by
    period (ties broken by input order, matching the scalar tests), the
    iteration is

    ``R <- C/alpha + (L ∘ ceil(R/Pᵀ - eps)) · (C/alpha)``

    where ``L`` is the strict lower-triangular mask selecting each task's
    higher-priority interferers.  Rows are independent, so the vector
    iteration reproduces the per-task scalar iteration of
    :func:`response_time_analysis` exactly, with the same convergence
    (``|demand - R| <= eps * max(1, demand)``) and failure
    (``demand > period + eps``) tolerances.  The iteration is monotone
    non-decreasing from ``R = C/alpha``, so any transient overshoot of a
    period already proves unschedulability.

    Results are memoized per ``(period-ordered task parameters, alpha)``;
    the paper's example set {(3,8), (3,10), (1,14)} fails at
    ``alpha = 0.75`` and passes at ``alpha = 1.0`` like the other tests.
    """
    _check_alpha(alpha)
    ordered = sorted(tasks, key=lambda t: t.period)
    if not ordered:
        raise TaskModelError("cannot test an empty task set")
    key = (tuple((t.period, t.wcet) for t in ordered), alpha)
    hit = _RTA_MEMO.get(key)
    if hit is not None:
        return hit
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy ships with the repo
        verdict = response_time_analysis(ordered, alpha,
                                         max_iterations) is not None
    else:
        periods = np.array([t.period for t in ordered], dtype=np.float64)
        scaled_c = np.array([t.wcet for t in ordered],
                            dtype=np.float64) / alpha
        n = len(ordered)
        lower = np.tril(np.ones((n, n), dtype=np.float64), k=-1)
        response = scaled_c.copy()
        verdict = None
        for _ in range(max_iterations):
            interference = lower * np.ceil(
                response[:, None] / periods[None, :] - _EPS)
            demand = scaled_c + interference @ scaled_c
            if bool(np.any(demand > periods + _EPS)):
                verdict = False
                break
            if bool(np.all(np.abs(demand - response)
                           <= _EPS * np.maximum(1.0, demand))):
                verdict = True
                response = demand
                break
            response = demand
        if verdict is None:  # pragma: no cover - defensive, as scalar
            raise TaskModelError(
                "response-time iteration did not converge")
    if len(_RTA_MEMO) >= _RTA_MEMO_MAX:
        _RTA_MEMO.clear()
    _RTA_MEMO[key] = verdict
    return verdict


def response_time_analysis(tasks: Iterable[Task], alpha: float = 1.0,
                           max_iterations: int = 10_000
                           ) -> Optional[List[float]]:
    """Worst-case response times under RM at relative frequency ``alpha``.

    Uses the standard fixed-point iteration
    ``R = C_i/alpha + Σ_{j higher prio} ceil(R/P_j) * C_j/alpha``.

    Returns the response times in the order of the *input* iterable, or
    ``None`` if any task's response time exceeds its period (unschedulable).
    This complements :func:`rm_exact_schedulable` and is used by tests as an
    independent oracle.
    """
    _check_alpha(alpha)
    original = list(tasks)
    ordered = sorted(range(len(original)), key=lambda k: original[k].period)
    responses: List[Optional[float]] = [None] * len(original)
    higher: List[Task] = []
    for rank, k in enumerate(ordered):
        task = original[k]
        scaled_c = task.wcet / alpha
        response = scaled_c
        for _ in range(max_iterations):
            demand = scaled_c + sum(
                math.ceil(response / h.period - _EPS) * (h.wcet / alpha)
                for h in higher)
            if demand > task.period + _EPS:
                return None
            if abs(demand - response) <= _EPS * max(1.0, demand):
                response = demand
                break
            response = demand
        else:  # pragma: no cover - defensive; iteration always converges
            raise TaskModelError("response-time iteration did not converge")
        responses[k] = response
        higher.append(task)
    return [r for r in responses]  # type: ignore[misc]


def min_edf_frequency(tasks: Iterable[Task]) -> float:
    """Smallest continuous relative frequency keeping the set EDF-schedulable
    (= total worst-case utilization)."""
    return sum(t.utilization for t in tasks)


def min_rm_frequency(tasks: Iterable[Task], exact: bool = True,
                     tolerance: float = 1e-6) -> float:
    """Smallest continuous relative frequency keeping the set RM-schedulable.

    Found by bisection over ``alpha`` (both RM tests are monotone in
    ``alpha``).  ``exact`` selects the scheduling-point test; otherwise the
    Liu-Layland bound is inverted in closed form.
    """
    tasks = list(tasks)
    if not exact:
        return min(1.0, sum(t.utilization for t in tasks)
                   / rm_liu_layland_bound(len(tasks)))
    if not rm_exact_schedulable(tasks, 1.0):
        raise TaskModelError(
            "task set is not RM-schedulable even at full frequency")
    lo = sum(t.utilization for t in tasks)  # necessary condition: alpha >= U
    hi = 1.0
    if rm_exact_schedulable(tasks, lo):
        return lo
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if rm_exact_schedulable(tasks, mid):
            hi = mid
        else:
            lo = mid
    return hi
