"""repro — a reproduction of Pillai & Shin, "Real-Time Dynamic Voltage
Scaling for Low-Power Embedded Operating Systems" (SOSP 2001).

The package provides:

* the task model and schedulability tests (:mod:`repro.model`);
* DVS-capable machine and energy models (:mod:`repro.hw`);
* a discrete-event real-time scheduling simulator (:mod:`repro.sim`);
* the paper's RT-DVS algorithms (:mod:`repro.core`);
* a Linux-module-style prototype substrate (:mod:`repro.kernel`);
* a power-measurement emulation (:mod:`repro.measure`);
* sweep/aggregation tooling (:mod:`repro.analysis`) and per-figure
  experiment drivers (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import (Task, TaskSet, machine0, make_policy, simulate)
>>> ts = TaskSet([Task(3, 8), Task(3, 10), Task(1, 14)])
>>> result = simulate(ts, machine0(), make_policy("ccEDF"), demand=0.9,
...                   duration=1000.0)
>>> result.met_all_deadlines
True
"""

from repro.errors import (
    AdmissionError,
    DeadlineMissError,
    KernelError,
    MachineError,
    PolicyStateError,
    PowerNowError,
    ReproError,
    SchedulabilityError,
    SimulationError,
    TaskModelError,
)
from repro.model import (
    ConstantFractionDemand,
    DemandModel,
    Job,
    JobOutcome,
    Task,
    TaskSet,
    TaskSetGenerator,
    TraceDemand,
    UniformFractionDemand,
    WorstCaseDemand,
    demand_from_spec,
    edf_schedulable,
    rm_exact_schedulable,
    rm_liu_layland_schedulable,
)
from repro.model.task import example_taskset
from repro.model.demand import paper_example_trace
from repro.hw import (
    Battery,
    EnergyModel,
    Machine,
    OperatingPoint,
    SwitchingModel,
    k6_2_plus,
    machine0,
    machine1,
    machine2,
)
from repro.sim import (
    Admission,
    ExecutionTrace,
    SimResult,
    Simulator,
    simulate,
    steady_state_energy,
    theoretical_bound,
    rederive_counters,
    validate_schedule,
)
from repro.core import (
    AveragingDVS,
    ClairvoyantEDF,
    CycleConservingEDF,
    CycleConservingRM,
    DVSPolicy,
    FixedSpeed,
    LookAheadEDF,
    NoDVS,
    PAPER_POLICIES,
    StaticEDF,
    StaticRM,
    StatisticalEDF,
    available_policies,
    make_policy,
)

__version__ = "1.7.0"

__all__ = [
    # errors
    "ReproError", "TaskModelError", "MachineError", "SchedulabilityError",
    "SimulationError", "DeadlineMissError", "KernelError", "AdmissionError",
    "PowerNowError", "PolicyStateError",
    # model
    "Task", "TaskSet", "Job", "JobOutcome", "TaskSetGenerator",
    "DemandModel", "WorstCaseDemand", "ConstantFractionDemand",
    "UniformFractionDemand", "TraceDemand", "demand_from_spec",
    "edf_schedulable", "rm_exact_schedulable", "rm_liu_layland_schedulable",
    "example_taskset", "paper_example_trace",
    # hw
    "Machine", "OperatingPoint", "EnergyModel", "SwitchingModel",
    "Battery", "machine0", "machine1", "machine2", "k6_2_plus",
    # sim
    "Admission", "Simulator", "simulate", "SimResult", "ExecutionTrace",
    "theoretical_bound", "steady_state_energy", "validate_schedule",
    "rederive_counters",
    # core
    "DVSPolicy", "NoDVS", "StaticEDF", "StaticRM", "CycleConservingEDF",
    "CycleConservingRM", "LookAheadEDF", "AveragingDVS", "FixedSpeed",
    "ClairvoyantEDF", "StatisticalEDF", "PAPER_POLICIES",
    "available_policies", "make_policy",
    "__version__",
]
