"""A lumped thermal model: from power traces to die temperature.

The paper's closing argument: RT-DVS "can also reduce the heat generated
by the real-time embedded controllers in various factory or home
automation products, or even reduce cooling requirements and costs"
(Sec. 6).  This module quantifies that: the standard first-order lumped
RC model

    C · dT/dt = P(t) − (T − T_ambient) / R

driven by a recorded run's piecewise-constant power.  Within each trace
segment the power is constant, so the exact solution is exponential decay
toward ``T_ambient + P·R`` — no numeric integration error.

Outputs: the temperature trajectory at segment boundaries, the peak
temperature (what a heat sink must be sized for), and the steady-state
mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import MachineError, SimulationError
from repro.sim.results import SimResult


@dataclass(frozen=True)
class ThermalModel:
    """First-order thermal RC lump.

    Parameters
    ----------
    resistance:
        Thermal resistance junction-to-ambient (°C per power unit).
    capacitance:
        Thermal capacitance (energy units per °C); with millisecond time
        units, ``R·C`` is the thermal time constant in ms.
    ambient:
        Ambient temperature (°C).
    """

    resistance: float
    capacitance: float
    ambient: float = 25.0

    def __post_init__(self):
        if self.resistance <= 0:
            raise MachineError(
                f"thermal resistance must be positive, got "
                f"{self.resistance}")
        if self.capacitance <= 0:
            raise MachineError(
                f"thermal capacitance must be positive, got "
                f"{self.capacitance}")

    @property
    def time_constant(self) -> float:
        """R·C, in the trace's time units."""
        return self.resistance * self.capacitance

    def steady_state(self, power: float) -> float:
        """Equilibrium temperature under constant ``power``."""
        return self.ambient + power * self.resistance

    def step(self, temperature: float, power: float,
             duration: float) -> float:
        """Exact temperature after ``duration`` at constant ``power``."""
        target = self.steady_state(power)
        decay = math.exp(-duration / self.time_constant)
        return target + (temperature - target) * decay


@dataclass(frozen=True)
class ThermalTrajectory:
    """Result of driving a thermal model with a run's power trace."""

    times: Tuple[float, ...]
    temperatures: Tuple[float, ...]

    @property
    def peak(self) -> float:
        return max(self.temperatures)

    @property
    def final(self) -> float:
        return self.temperatures[-1]

    def mean(self) -> float:
        """Time-weighted mean temperature (trapezoidal, exactness is not
        needed for reporting)."""
        if len(self.times) < 2:
            return self.temperatures[0]
        total = 0.0
        for i in range(len(self.times) - 1):
            dt = self.times[i + 1] - self.times[i]
            total += dt * (self.temperatures[i]
                           + self.temperatures[i + 1]) / 2.0
        return total / (self.times[-1] - self.times[0])


def thermal_trajectory(result: SimResult, model: ThermalModel,
                       initial: Optional[float] = None,
                       power_scale: float = 1.0) -> ThermalTrajectory:
    """Integrate the thermal model over a recorded run.

    ``power_scale`` converts the run's energy units to the thermal
    model's power units (e.g. the laptop calibration constant).  The
    temperature is sampled at every segment boundary; within a segment
    temperature moves monotonically, and the per-segment peak is captured
    because the extremum of a first-order response lies at a boundary.
    """
    if result.trace is None:
        raise SimulationError(
            "thermal_trajectory needs a run with record_trace=True")
    temperature = model.ambient if initial is None else initial
    times: List[float] = [0.0]
    temperatures: List[float] = [temperature]
    for segment in result.trace:
        if segment.duration <= 0:
            continue
        power = power_scale * segment.energy / segment.duration
        temperature = model.step(temperature, power, segment.duration)
        times.append(segment.end)
        temperatures.append(temperature)
    return ThermalTrajectory(times=tuple(times),
                             temperatures=tuple(temperatures))
