"""A component power model of the Hewlett-Packard N3350 laptop.

Calibrated so that the four states of the paper's Table 1 reproduce
exactly:

=====================  ============  ===========  ========
Screen                 Disk          CPU          Power
=====================  ============  ===========  ========
On                     Spinning      Idle         13.5 W
On                     Standby       Idle         13.0 W
Off                    Standby       Idle          7.1 W
Off                    Standby       Max. load    27.3 W
=====================  ============  ===========  ========

Decomposition: a constant board+idle-CPU floor of 7.1 W, a 5.9 W display
backlight, a 0.5 W spinning disk, and a 20.2 W CPU-subsystem swing between
idle and maximum load.  At max load the CPU subsystem accounts for ~60 % of
system power — the paper's motivating observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import MachineError
from repro.hw.machine import Machine


@dataclass(frozen=True)
class PowerState:
    """A whole-system operating state."""

    screen_on: bool
    disk_spinning: bool
    cpu_load: float  # 0.0 = idle, 1.0 = max load at full speed

    def __post_init__(self):
        if not 0.0 <= self.cpu_load <= 1.0:
            raise MachineError(
                f"cpu_load must be in [0, 1], got {self.cpu_load}")


@dataclass(frozen=True)
class LaptopPowerModel:
    """Additive component model of laptop power draw (watts).

    Parameters default to the N3350 calibration described in the module
    docstring.
    """

    board_base: float = 7.1
    display_backlight: float = 5.9
    disk_spinning: float = 0.5
    cpu_max_delta: float = 20.2

    def __post_init__(self):
        for field_name in ("board_base", "display_backlight",
                           "disk_spinning", "cpu_max_delta"):
            value = getattr(self, field_name)
            if value < 0:
                raise MachineError(
                    f"{field_name} must be >= 0, got {value}")

    def power(self, state: PowerState) -> float:
        """System power in the given state (CPU load linear in between)."""
        watts = self.board_base
        if state.screen_on:
            watts += self.display_backlight
        if state.disk_spinning:
            watts += self.disk_spinning
        watts += self.cpu_max_delta * state.cpu_load
        return watts

    def system_power(self, cpu_watts: float, screen_on: bool = False,
                     disk_spinning: bool = False) -> float:
        """System power given an explicit CPU-subsystem dynamic power.

        Used when the CPU draw comes from the simulator's V² model rather
        than a load fraction.  The display was off for the paper's Fig. 16
        measurements ("with this on, there would have been an additional
        constant 6 W").
        """
        if cpu_watts < 0:
            raise MachineError(f"cpu_watts must be >= 0, got {cpu_watts}")
        watts = self.board_base + cpu_watts
        if screen_on:
            watts += self.display_backlight
        if disk_spinning:
            watts += self.disk_spinning
        return watts

    def cycle_energy_scale_for(self, machine: Machine) -> float:
        """Energy-model scale making the simulated CPU match the laptop.

        Chosen so full-speed execution on ``machine`` dissipates exactly
        ``cpu_max_delta`` watts; all other operating points then scale by
        the f·V² model.
        """
        return self.cpu_max_delta / machine.fastest.power

    @property
    def max_load_cpu_fraction(self) -> float:
        """CPU share of system power at max load, screen off (the paper
        reports "nearly 60%")."""
        total = self.board_base + self.cpu_max_delta
        return self.cpu_max_delta / total


def table1_rows(model: LaptopPowerModel = LaptopPowerModel()
                ) -> List[Tuple[str, str, str, float]]:
    """The four rows of the paper's Table 1, computed from the model."""
    states = [
        ("On", "Spinning", "Idle",
         PowerState(screen_on=True, disk_spinning=True, cpu_load=0.0)),
        ("On", "Standby", "Idle",
         PowerState(screen_on=True, disk_spinning=False, cpu_load=0.0)),
        ("Off", "Standby", "Idle",
         PowerState(screen_on=False, disk_spinning=False, cpu_load=0.0)),
        ("Off", "Standby", "Max. Load",
         PowerState(screen_on=False, disk_spinning=False, cpu_load=1.0)),
    ]
    return [(screen, disk, cpu, model.power(state))
            for screen, disk, cpu, state in states]
