"""Current-probe and oscilloscope emulation (Fig. 15).

"The laptop battery is removed and the system is run using the external DC
power adapter.  Using a special current probe, a digital oscilloscope is
used to measure the power consumed by the laptop as the product of the
current and voltage supplied ... our power measurements are averaged over
15 to 30 second intervals."

:class:`PowerTrace` reconstructs the instantaneous system-power signal from
a simulation's execution trace (per-segment energy over duration, plus the
constant platform overhead); :class:`DigitalOscilloscope` samples it and
produces long-duration averages, including the transient view a multimeter
would miss.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import SimulationError
from repro.measure.laptop import LaptopPowerModel
from repro.sim.results import SimResult


class PowerTrace:
    """Instantaneous system power over a simulated run.

    Parameters
    ----------
    result:
        A simulation result that recorded an execution trace
        (``record_trace=True``).
    laptop:
        Platform overhead model; ``None`` measures the CPU alone (the
        simulator's own units).
    screen_on, disk_spinning:
        Platform state during the "measurement".
    """

    def __init__(self, result: SimResult,
                 laptop: Optional[LaptopPowerModel] = None,
                 screen_on: bool = False, disk_spinning: bool = False):
        if result.trace is None:
            raise SimulationError(
                "PowerTrace needs a run with record_trace=True")
        self.result = result
        self.laptop = laptop
        self.screen_on = screen_on
        self.disk_spinning = disk_spinning
        self._starts: List[float] = [s.start for s in result.trace]
        self._segments = result.trace.segments

    @property
    def duration(self) -> float:
        return self.result.duration

    def cpu_power_at(self, time: float) -> float:
        """CPU power at ``time`` (segment energy rate)."""
        if not 0.0 <= time <= self.duration + 1e-9:
            raise SimulationError(
                f"time {time} outside the recorded run [0, {self.duration}]")
        index = bisect.bisect_right(self._starts, time) - 1
        if index < 0:
            return 0.0
        segment = self._segments[index]
        if time > segment.end + 1e-9:
            return 0.0  # trailing gap (e.g. zero-length tail)
        if segment.duration <= 0:
            return 0.0
        return segment.energy / segment.duration

    def power_at(self, time: float) -> float:
        """System power at ``time`` (CPU plus platform overhead)."""
        cpu = self.cpu_power_at(time)
        if self.laptop is None:
            return cpu
        return self.laptop.system_power(cpu, screen_on=self.screen_on,
                                        disk_spinning=self.disk_spinning)

    def mean_power(self, start: float = 0.0,
                   end: Optional[float] = None) -> float:
        """Exact time-weighted mean power over ``[start, end]``."""
        end = self.duration if end is None else end
        if not 0.0 <= start < end <= self.duration + 1e-9:
            raise SimulationError(
                f"bad averaging window [{start}, {end}] for a run of "
                f"duration {self.duration}")
        energy = 0.0
        for segment in self._segments:
            lo = max(segment.start, start)
            hi = min(segment.end, end)
            if hi > lo and segment.duration > 0:
                energy += segment.energy * (hi - lo) / segment.duration
        cpu_mean = energy / (end - start)
        if self.laptop is None:
            return cpu_mean
        return self.laptop.system_power(cpu_mean, screen_on=self.screen_on,
                                        disk_spinning=self.disk_spinning)


@dataclass(frozen=True)
class Acquisition:
    """One oscilloscope acquisition: samples plus summary statistics."""

    times: Tuple[float, ...]
    watts: Tuple[float, ...]
    mean: float
    peak: float
    trough: float

    def __len__(self) -> int:
        return len(self.times)


class DigitalOscilloscope:
    """Sampling front-end over a :class:`PowerTrace`.

    The mean reported by :meth:`acquire` is the *exact* time-weighted
    average ("true average power consumption over long intervals"), while
    the sample list shows the transient behaviour a slow multimeter would
    miss — the two capabilities the paper calls out.
    """

    def __init__(self, sample_interval: float = 0.1):
        if sample_interval <= 0:
            raise SimulationError(
                f"sample_interval must be positive, got {sample_interval}")
        self.sample_interval = sample_interval

    def acquire(self, trace: PowerTrace, start: float = 0.0,
                end: Optional[float] = None) -> Acquisition:
        """Capture samples over ``[start, end]`` plus exact statistics."""
        end = trace.duration if end is None else end
        times: List[float] = []
        watts: List[float] = []
        t = start
        while t <= end + 1e-9:
            times.append(min(t, end))
            watts.append(trace.power_at(min(t, end)))
            t += self.sample_interval
        return Acquisition(
            times=tuple(times),
            watts=tuple(watts),
            mean=trace.mean_power(start, end),
            peak=max(watts),
            trough=min(watts),
        )
