"""Power-measurement substrate (Sec. 4.3, Fig. 15, Table 1).

The paper measures whole-system power on an HP N3350 laptop by removing the
battery, clamping a current probe on the DC adapter, and averaging with a
digital oscilloscope over 15-30 s windows.  We cannot ship a laptop, so
this package provides the closest synthetic equivalent:

* :class:`~repro.measure.laptop.LaptopPowerModel` — a component model of
  the N3350 calibrated to Table 1 (board, display backlight, disk, CPU
  subsystem);
* :class:`~repro.measure.probe.PowerTrace` — instantaneous system power
  reconstructed from a simulation's execution trace (the current-probe
  signal);
* :class:`~repro.measure.probe.DigitalOscilloscope` — sampling and
  long-duration averaging of that signal.

The CPU portion is exactly the simulator's V² energy model, so Fig. 16
(measured) differs from Fig. 17 (simulated) by precisely the constant
system overhead — which is the paper's own conclusion.
"""

from repro.measure.laptop import LaptopPowerModel, PowerState, table1_rows
from repro.measure.probe import Acquisition, DigitalOscilloscope, PowerTrace
from repro.measure.profile import EnergyProfiler, TaskEnergyProfile
from repro.measure.thermal import (ThermalModel, ThermalTrajectory,
                                   thermal_trajectory)

__all__ = [
    "EnergyProfiler",
    "TaskEnergyProfile",
    "ThermalModel",
    "ThermalTrajectory",
    "thermal_trajectory",
    "LaptopPowerModel",
    "PowerState",
    "table1_rows",
    "PowerTrace",
    "DigitalOscilloscope",
    "Acquisition",
]
