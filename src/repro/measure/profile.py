"""Per-task energy attribution — a PowerScope-style profiler.

The paper's measurement methodology "is very similar to the one used in
the PowerScope [6]" tool, whose whole point is attributing energy to
program activity.  This module does that for simulated runs: walk the
execution trace and charge every segment's energy to the task that ran
(idle/switch energy to the system), then report totals, shares, and
per-operating-point breakdowns.

Useful for questions the aggregate numbers hide, e.g. "which task pays
for the high-voltage catch-up periods under laEDF?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import SimulationError
from repro.hw.operating_point import OperatingPoint
from repro.sim.results import SimResult

IDLE_LABEL = "(idle)"
SWITCH_LABEL = "(switch)"


@dataclass
class TaskEnergyProfile:
    """Energy attribution for one task (or the idle/switch pseudo-tasks).

    ``by_point`` maps each operating point to (cycles, energy) executed
    there.
    """

    name: str
    energy: float = 0.0
    cycles: float = 0.0
    busy_time: float = 0.0
    by_point: Dict[OperatingPoint, Tuple[float, float]] = \
        field(default_factory=dict)

    def add(self, point: OperatingPoint, cycles: float, energy: float,
            duration: float) -> None:
        self.energy += energy
        self.cycles += cycles
        self.busy_time += duration
        old_cycles, old_energy = self.by_point.get(point, (0.0, 0.0))
        self.by_point[point] = (old_cycles + cycles, old_energy + energy)

    @property
    def mean_energy_per_cycle(self) -> float:
        """Average V² actually paid per cycle (reveals which tasks ran at
        high voltage)."""
        if self.cycles <= 0:
            return 0.0
        return self.energy / self.cycles


class EnergyProfiler:
    """Attribute a recorded run's energy to its tasks."""

    def __init__(self, result: SimResult):
        if result.trace is None:
            raise SimulationError(
                "energy profiling needs a run with record_trace=True")
        self.result = result
        self._profiles: Dict[str, TaskEnergyProfile] = {}
        for segment in result.trace:
            label = segment.task if segment.task else (
                SWITCH_LABEL if segment.kind == "switch" else IDLE_LABEL)
            profile = self._profiles.setdefault(
                label, TaskEnergyProfile(name=label))
            profile.add(segment.point, segment.cycles, segment.energy,
                        segment.duration)

    def profile(self, task_name: str) -> TaskEnergyProfile:
        """The profile of one task (KeyError if it never ran)."""
        return self._profiles[task_name]

    def profiles(self) -> List[TaskEnergyProfile]:
        """All profiles, tasks first (by energy), system entries last."""
        tasks = [p for name, p in self._profiles.items()
                 if name not in (IDLE_LABEL, SWITCH_LABEL)]
        system = [p for name, p in self._profiles.items()
                  if name in (IDLE_LABEL, SWITCH_LABEL)]
        tasks.sort(key=lambda p: -p.energy)
        return tasks + system

    @property
    def total_energy(self) -> float:
        return sum(p.energy for p in self._profiles.values())

    def share(self, task_name: str) -> float:
        """Fraction of the run's energy attributed to ``task_name``."""
        total = self.total_energy
        if total <= 0:
            return 0.0
        return self._profiles[task_name].energy / total

    def table(self) -> str:
        """A Markdown table of the attribution."""
        lines = ["| task | energy | share | cycles | mean V²/cycle |",
                 "|---|---|---|---|---|"]
        total = self.total_energy
        for profile in self.profiles():
            share = profile.energy / total if total > 0 else 0.0
            per_cycle = (f"{profile.mean_energy_per_cycle:.2f}"
                         if profile.cycles > 0 else "—")
            lines.append(
                f"| {profile.name} | {profile.energy:.1f} | {share:.1%} | "
                f"{profile.cycles:.1f} | {per_cycle} |")
        return "\n".join(lines)
