"""Sweep-as-a-service: the multi-tenant experiment serving tier.

Promotes the cell machinery (content-addressed cache, barrier-free
executor, catalog resolution) behind an asyncio HTTP/JSON front end:
``rtdvs serve`` runs :class:`SweepService`, ``rtdvs submit`` drives it
through :class:`SweepServiceClient`.  See :mod:`repro.service.server`
for the serving-layer design and :mod:`repro.service.protocol` for the
wire format.
"""

from repro.service.client import ServiceError, SweepServiceClient
from repro.service.dedup import SingleFlight
from repro.service.protocol import (PROTOCOL_VERSION, ProtocolError,
                                    SweepJob, SweepRequest, parse_request,
                                    resolve_jobs)
from repro.service.quotas import (AdmissionQueue, QuotaExceeded,
                                  TenantQuotas)
from repro.service.server import ServiceStats, ServiceThread, SweepService

__all__ = [
    "PROTOCOL_VERSION",
    "AdmissionQueue",
    "ProtocolError",
    "QuotaExceeded",
    "ServiceError",
    "ServiceStats",
    "ServiceThread",
    "SingleFlight",
    "SweepJob",
    "SweepRequest",
    "SweepService",
    "SweepServiceClient",
    "TenantQuotas",
    "parse_request",
    "resolve_jobs",
]
