"""Admission control: per-tenant quotas and the bounded cell queue.

The serving tier's third perf layer.  Two mechanisms, two failure
modes:

* :class:`TenantQuotas` bounds each tenant's concurrent *requests*.  An
  over-budget submission is rejected immediately with
  :class:`QuotaExceeded` (HTTP 429 + ``Retry-After``) — the tenant is
  told to back off rather than silently queued, so one noisy client
  cannot monopolize the executor.
* :class:`AdmissionQueue` bounds how many *cells* are admitted to the
  executor at once, across all tenants.  Admission waits (asyncio
  backpressure) instead of erroring: an accepted request always
  completes, it just streams more slowly while the queue drains.

Both are event-loop-confined (no locks): every acquire/release happens
on the server loop.
"""

import asyncio
from contextlib import contextmanager
from typing import Dict

from repro.errors import ReproError


class QuotaExceeded(ReproError):
    """A tenant's in-flight request budget is exhausted."""

    def __init__(self, tenant: str, limit: int, retry_after: float):
        super().__init__(
            f"tenant {tenant!r} has {limit} request(s) in flight "
            f"(limit {limit}); retry after {retry_after:g}s")
        self.tenant = tenant
        self.limit = limit
        self.retry_after = retry_after


class TenantQuotas:
    """Per-tenant concurrent-request budgets.

    ``max_inflight`` is the per-tenant ceiling; ``retry_after`` is the
    back-off hint (seconds) carried by :class:`QuotaExceeded` and
    surfaced as the HTTP ``Retry-After`` header.
    """

    def __init__(self, max_inflight: int = 4, retry_after: float = 1.0):
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}")
        if retry_after <= 0:
            raise ValueError(
                f"retry_after must be > 0, got {retry_after}")
        self.max_inflight = max_inflight
        self.retry_after = retry_after
        self._inflight: Dict[str, int] = {}
        #: Requests rejected over budget (the 429 count).
        self.rejected = 0

    def acquire(self, tenant: str) -> None:
        """Claim one request slot for ``tenant`` or raise
        :class:`QuotaExceeded` — never blocks."""
        count = self._inflight.get(tenant, 0)
        if count >= self.max_inflight:
            self.rejected += 1
            raise QuotaExceeded(tenant, self.max_inflight,
                                self.retry_after)
        self._inflight[tenant] = count + 1

    def release(self, tenant: str) -> None:
        count = self._inflight.get(tenant, 0)
        if count <= 1:
            self._inflight.pop(tenant, None)
        else:
            self._inflight[tenant] = count - 1

    @contextmanager
    def held(self, tenant: str):
        self.acquire(tenant)
        try:
            yield
        finally:
            self.release(tenant)

    def inflight(self, tenant: str) -> int:
        return self._inflight.get(tenant, 0)

    def snapshot(self) -> Dict[str, object]:
        return {"max_inflight": self.max_inflight,
                "retry_after": self.retry_after,
                "inflight": dict(self._inflight),
                "rejected": self.rejected}


class AdmissionQueue:
    """Bounded gate between request handlers and the executor.

    ``async with queue:`` admits one cell, waiting while the queue is
    full.  Tracks the high-water mark so operators can tell whether the
    bound ever mattered.
    """

    def __init__(self, max_pending: int = 64):
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self._semaphore = asyncio.Semaphore(max_pending)
        self._pending = 0
        self.admitted = 0
        self.peak_pending = 0

    async def __aenter__(self) -> "AdmissionQueue":
        await self._semaphore.acquire()
        self._pending += 1
        self.admitted += 1
        if self._pending > self.peak_pending:
            self.peak_pending = self._pending
        return self

    async def __aexit__(self, *exc_info) -> None:
        self._pending -= 1
        self._semaphore.release()

    @property
    def pending(self) -> int:
        return self._pending

    def snapshot(self) -> Dict[str, int]:
        return {"max_pending": self.max_pending, "pending": self._pending,
                "admitted": self.admitted,
                "peak_pending": self.peak_pending}
