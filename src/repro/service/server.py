"""The sweep service: an asyncio, stdlib-only HTTP/JSON server.

Three perf layers front the existing cell machinery:

1. **Cache-first reads** — every request's cells are probed against the
   content-addressed :class:`~repro.analysis.cellcache.CellCache`
   (off-loop, in a worker thread) before anything is scheduled; warm
   cells never touch the executor.
2. **Single-flight dedup** (:mod:`repro.service.dedup`) — cold cells
   are keyed by their cache fingerprint, so N concurrent identical
   requests coalesce into one simulation whose outcome fans back out.
3. **Bounded admission with per-tenant quotas**
   (:mod:`repro.service.quotas`) — an over-budget tenant gets HTTP 429
   + ``Retry-After`` up front; admitted cells flow through a bounded
   queue into the shared :class:`~repro.analysis.executor.CellExecutor`
   (never blocking the event loop: cells resolve via
   :meth:`~repro.analysis.executor.CellExecutor.submit_cell` futures).

Responses stream NDJSON (:mod:`repro.service.protocol`), close-delimited
(``Connection: close``): partial aggregates render incrementally, the
final per-panel tables are bit-identical to an in-process
:func:`~repro.analysis.sweep.utilization_sweep` because they are
produced by the same aggregation over the same outcome dicts.

HTTP support is deliberately minimal — HTTP/1.1, ``Content-Length``
bodies, no keep-alive, no TLS — because the clients are `rtdvs submit`,
`curl`, and the benchmarks, all on a trusted network.
"""

import asyncio
import contextlib
import json
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import __version__
from repro.analysis.cellcache import CellCache
from repro.analysis.executor import CellExecutor
from repro.analysis.sweep import aggregate_outcomes
from repro.service.dedup import SingleFlight
from repro.service.protocol import (ProtocolError, SweepJob, SweepRequest,
                                    done_event, error_event, job_event,
                                    parse_request, partial_event,
                                    resolve_jobs, result_event,
                                    started_event)
from repro.service.quotas import AdmissionQueue, QuotaExceeded, TenantQuotas

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 429: "Too Many Requests",
            500: "Internal Server Error"}

#: Hard caps on request framing; anything larger is hostile or broken.
_MAX_HEADER_LINES = 64
_MAX_BODY_BYTES = 1 << 20


@dataclass
class ServiceStats:
    """Lifetime counters, surfaced by ``GET /v1/stats``."""

    requests: int = 0
    errors: int = 0
    cells_served: int = 0
    cache_hits: int = 0
    simulated_cells: int = 0
    coalesced_cells: int = 0
    bytes_streamed: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"requests": self.requests, "errors": self.errors,
                "cells_served": self.cells_served,
                "cache_hits": self.cache_hits,
                "simulated_cells": self.simulated_cells,
                "coalesced_cells": self.coalesced_cells,
                "bytes_streamed": self.bytes_streamed}


class SweepService:
    """One serving instance: HTTP front end over cache + executor.

    Parameters
    ----------
    cache:
        Shared :class:`CellCache` (``None`` disables the warm path —
        every cell simulates).  Give it ``max_bytes``/``max_age`` and a
        positive ``sweep_interval`` to bound growth for server-lifetime
        workloads.
    executor:
        Shared :class:`CellExecutor`; when omitted one is created from
        ``workers`` and owned (shut down by :meth:`stop`).
    port:
        ``0`` binds an ephemeral port; :attr:`port` holds the real one
        after :meth:`start`.
    """

    def __init__(self, cache: Optional[CellCache] = None,
                 executor: Optional[CellExecutor] = None,
                 workers=1,
                 quotas: Optional[TenantQuotas] = None,
                 admission: Optional[AdmissionQueue] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 sweep_interval: float = 0.0):
        self.cache = cache
        self._own_executor = executor is None
        self.executor = executor if executor is not None \
            else CellExecutor(workers)
        self.quotas = quotas if quotas is not None else TenantQuotas()
        self.admission = admission if admission is not None \
            else AdmissionQueue()
        self.single_flight = SingleFlight()
        self.stats = ServiceStats()
        self.host = host
        self.port = port
        self.sweep_interval = sweep_interval
        self._server: Optional[asyncio.AbstractServer] = None
        self._sweeper: Optional[asyncio.Task] = None

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "SweepService":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if (self.cache is not None and self.sweep_interval > 0
                and (self.cache.max_bytes is not None
                     or self.cache.max_age is not None)):
            self._sweeper = asyncio.create_task(self._sweeper_loop())
        return self

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._sweeper is not None:
            self._sweeper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sweeper
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._own_executor:
            await asyncio.to_thread(self.executor.shutdown)

    async def _sweeper_loop(self) -> None:
        # Periodic backstop for read-mostly servers: puts already trigger
        # maybe_sweep, but a warm server can go hours without one.
        while True:
            await asyncio.sleep(self.sweep_interval)
            await asyncio.to_thread(self.cache.maybe_sweep)

    # -- HTTP plumbing ------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, target, body = await self._read_request(reader)
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                    UnicodeDecodeError, ValueError) as exc:
                await self._send_json(writer, 400,
                                      {"error": f"malformed request: {exc}"})
                return
            if target == "/v1/healthz":
                if method != "GET":
                    await self._send_json(writer, 405,
                                          {"error": "use GET"})
                    return
                await self._send_json(writer, 200,
                                      {"ok": True, "version": __version__})
            elif target == "/v1/stats":
                if method != "GET":
                    await self._send_json(writer, 405,
                                          {"error": "use GET"})
                    return
                payload = await asyncio.to_thread(self.stats_payload)
                await self._send_json(writer, 200, payload)
            elif target == "/v1/sweep":
                if method != "POST":
                    await self._send_json(writer, 405,
                                          {"error": "use POST"})
                    return
                await self._handle_sweep(writer, body)
            else:
                await self._send_json(writer, 404,
                                      {"error": f"no route {target!r}"})
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; in-flight leaders finish regardless
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader,
                            ) -> Tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("ascii")
        parts = request_line.split()
        if len(parts) != 3:
            raise ValueError(f"bad request line {request_line!r}")
        method, target, _version = parts
        content_length = 0
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("ascii").partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        else:
            raise ValueError("too many header lines")
        if content_length > _MAX_BODY_BYTES:
            raise ValueError(f"body too large ({content_length} bytes)")
        body = await reader.readexactly(content_length) \
            if content_length else b""
        return method, target, body

    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         payload: Dict[str, object],
                         extra_headers: Tuple[Tuple[str, str], ...] = (),
                         ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (f"HTTP/1.1 {status} {_REASONS[status]}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n")
        for name, value in extra_headers:
            head += f"{name}: {value}\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("ascii") + body)
        await writer.drain()

    async def _start_stream(self, writer: asyncio.StreamWriter) -> None:
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()

    async def _send_event(self, writer: asyncio.StreamWriter,
                          payload: Dict[str, object]) -> None:
        data = (json.dumps(payload, separators=(",", ":")) + "\n") \
            .encode("utf-8")
        self.stats.bytes_streamed += len(data)
        writer.write(data)
        await writer.drain()

    # -- the sweep endpoint -------------------------------------------------
    async def _handle_sweep(self, writer: asyncio.StreamWriter,
                            body: bytes) -> None:
        self.stats.requests += 1
        try:
            request = parse_request(json.loads(body.decode("utf-8")))
            jobs = resolve_jobs(request)
        except (ValueError, ProtocolError) as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
            return
        try:
            self.quotas.acquire(request.tenant)
        except QuotaExceeded as exc:
            await self._send_json(
                writer, 429,
                {"error": str(exc), "retry_after": exc.retry_after},
                extra_headers=(("Retry-After", f"{exc.retry_after:g}"),))
            return
        started_at = time.monotonic()
        try:
            await self._start_stream(writer)
            await self._send_event(writer, started_event(request, jobs))
            totals = {"cache_hits": 0, "simulated": 0, "coalesced": 0}
            for job in jobs:
                await self._run_job(writer, request, job, totals)
            await self._send_event(writer, done_event(
                totals["cache_hits"], totals["simulated"],
                totals["coalesced"], time.monotonic() - started_at))
        except (ConnectionResetError, BrokenPipeError):
            raise
        except Exception as exc:
            self.stats.errors += 1
            with contextlib.suppress(Exception):
                await self._send_event(writer, error_event(str(exc)))
        finally:
            self.quotas.release(request.tenant)

    async def _run_job(self, writer: asyncio.StreamWriter,
                       request: SweepRequest, job: SweepJob,
                       totals: Dict[str, int]) -> None:
        outcomes: List[Optional[Dict[str, object]]] = [None] * job.cells
        warm = 0
        if self.cache is not None:
            hits = await asyncio.to_thread(self._probe, job.keys)
            for index, outcome in hits:
                outcomes[index] = outcome
            warm = len(hits)
        await self._send_event(writer, job_event(job, warm))

        pending = [i for i in range(job.cells) if outcomes[i] is None]
        cache_hits = warm
        simulated = coalesced = 0
        done = warm
        tasks = [asyncio.create_task(self._run_cell(request, job, index))
                 for index in pending]
        try:
            for future in asyncio.as_completed(tasks):
                index, source, outcome = await future
                outcomes[index] = outcome
                done += 1
                if source == "simulated":
                    simulated += 1
                elif source == "coalesced":
                    coalesced += 1
                else:  # a leader that found the cell freshly cached
                    cache_hits += 1
                if request.stream_every and done < job.cells \
                        and (done - warm) % request.stream_every == 0:
                    await self._send_event(
                        writer, partial_event(job, done, outcomes))
        except BaseException:
            # Drop *our* waiters; shielded leaders keep running so other
            # requests coalesced onto them still get their outcomes.
            for task in tasks:
                task.cancel()
            raise

        self.stats.cache_hits += cache_hits
        self.stats.simulated_cells += simulated
        self.stats.coalesced_cells += coalesced
        self.stats.cells_served += job.cells
        totals["cache_hits"] += cache_hits
        totals["simulated"] += simulated
        totals["coalesced"] += coalesced

        result = aggregate_outcomes(job.config, outcomes)
        await self._send_event(writer, result_event(
            job, result, cache_hits, simulated, coalesced))

    def _probe(self, keys: List[Optional[str]],
               ) -> List[Tuple[int, Dict[str, object]]]:
        """Warm-path batch read (runs on a worker thread)."""
        hits = []
        for index, key in enumerate(keys):
            if key is None:
                continue
            outcome = self.cache.get(key)
            if outcome is not None:
                hits.append((index, outcome))
        return hits

    async def _run_cell(self, request: SweepRequest, job: SweepJob,
                        index: int) -> Tuple[int, str, Dict[str, object]]:
        """Resolve one cold cell; returns ``(index, source, outcome)``
        with ``source`` in ``{"simulated", "coalesced", "cached"}``."""
        key = job.keys[index]
        spec = job.specs[index]

        async def factory() -> Tuple[str, Dict[str, object]]:
            if self.cache is not None and key is not None:
                # Re-probe under the single-flight lock: a previous
                # leader may have cached this cell after our batch probe
                # missed it.
                cached = await asyncio.to_thread(self.cache.get, key)
                if cached is not None:
                    return "cached", cached
            async with self.admission:
                outcome = await asyncio.wrap_future(
                    self.executor.submit_cell(job.context, spec,
                                              engine=request.engine))
            if self.cache is not None and key is not None:
                await asyncio.to_thread(self.cache.put, key, outcome)
            return "simulated", outcome

        if key is None:  # uncacheable: nothing to coalesce on
            source, outcome = await factory()
            return index, source, outcome
        led, (source, outcome) = await self.single_flight.run(key, factory)
        return index, (source if led else "coalesced"), outcome

    # -- introspection ------------------------------------------------------
    def stats_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "version": __version__,
            "workers": self.executor.workers,
        }
        payload.update(self.stats.to_dict())
        payload["single_flight"] = self.single_flight.stats()
        payload["quotas"] = self.quotas.snapshot()
        payload["admission"] = self.admission.snapshot()
        if self.cache is not None:
            payload["cache"] = {"entries": len(self.cache),
                                "bytes": self.cache.size_bytes()}
        return payload


class ServiceThread:
    """Run a :class:`SweepService` on a dedicated event-loop thread.

    The synchronous harness for tests, benchmarks, and anything else
    that wants to drive the server with a blocking client from the same
    process::

        with ServiceThread(SweepService(cache=cache)) as handle:
            client = SweepServiceClient(port=handle.port)
            ...
    """

    def __init__(self, service: SweepService):
        self.service = service
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "ServiceThread":
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        failure: List[BaseException] = []

        def main() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.service.start())
            except BaseException as exc:  # surface bind errors to caller
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                self._loop.run_forever()
            finally:
                self._loop.run_until_complete(self.service.stop())
                self._loop.close()

        self._thread = threading.Thread(target=main, name="sweep-service",
                                        daemon=True)
        self._thread.start()
        started.wait()
        if failure:
            raise failure[0]
        return self

    @property
    def port(self) -> int:
        return self.service.port

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
