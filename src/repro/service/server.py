"""The sweep service: an asyncio, stdlib-only HTTP/JSON server.

Three perf layers front the existing cell machinery:

1. **Cache-first reads** — every request's cells are probed against the
   content-addressed :class:`~repro.analysis.cellcache.CellCache`
   (off-loop, in a worker thread) before anything is scheduled; warm
   cells never touch the executor.
2. **Single-flight dedup** (:mod:`repro.service.dedup`) — cold cells
   are keyed by their cache fingerprint, so N concurrent identical
   requests coalesce into one simulation whose outcome fans back out.
3. **Bounded admission with per-tenant quotas**
   (:mod:`repro.service.quotas`) — an over-budget tenant gets HTTP 429
   + ``Retry-After`` up front; admitted cells flow through a bounded
   queue into the shared :class:`~repro.analysis.executor.CellExecutor`
   (never blocking the event loop: cells resolve via
   :meth:`~repro.analysis.executor.CellExecutor.submit_cell` futures).

Responses stream NDJSON (:mod:`repro.service.protocol`): partial
aggregates render incrementally, and the final per-panel tables are
bit-identical to an in-process
:func:`~repro.analysis.sweep.utilization_sweep` because they are
produced by the same aggregation over the same outcome dicts.  The
stable table fragment of each ``result`` event is encoded once and
reused across subscribers of the same cells (only the per-request
counters differ), so fan-out does not re-serialize megabyte tables.

HTTP/1.1 connections are kept alive by default (streams switch to
chunked transfer encoding so the response stays self-delimiting); a
client that sends ``Connection: close`` — or speaks HTTP/1.0 — gets the
legacy close-delimited framing.  Support is otherwise deliberately
minimal — ``Content-Length`` bodies, no TLS — because the clients are
`rtdvs submit`, `curl`, and the benchmarks, all on a trusted network.

Requests that carry a ``request_id`` are additionally journaled
(:mod:`repro.dist.journal`) under the cache directory: the request body
plus every completed cell fingerprint.  A ``resume`` request replays
the journaled body and answers already-journaled cells from the cache,
so a restarted coordinator re-simulates nothing that already finished.
"""

import asyncio
import contextlib
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro import __version__
from repro.analysis.cellcache import CellCache
from repro.analysis.executor import CellExecutor
from repro.analysis.sweep import aggregate_outcomes
from repro.dist.journal import JournalError, JournalWriter, SweepJournal
from repro.service.dedup import SingleFlight
from repro.service.protocol import (ProtocolError, SweepJob, SweepRequest,
                                    done_event, error_event, job_event,
                                    parse_request, partial_event,
                                    resolve_jobs, result_event,
                                    started_event)
from repro.service.quotas import AdmissionQueue, QuotaExceeded, TenantQuotas

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 429: "Too Many Requests",
            500: "Internal Server Error"}

#: Hard caps on request framing; anything larger is hostile or broken.
_MAX_HEADER_LINES = 64
_MAX_BODY_BYTES = 1 << 20

#: Distinct result tables kept in the encode-reuse cache.  Each entry is
#: one job's serialized tables (tens of KB for quick sweeps); the cache
#: only pays off while identical requests overlap, so a handful of
#: entries covers the fan-out case without holding stale tables forever.
_RESULT_CACHE_MAX = 8


@dataclass
class ServiceStats:
    """Lifetime counters, surfaced by ``GET /v1/stats``."""

    requests: int = 0
    connections: int = 0
    errors: int = 0
    cells_served: int = 0
    cache_hits: int = 0
    simulated_cells: int = 0
    coalesced_cells: int = 0
    bytes_streamed: int = 0
    result_reuses: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"requests": self.requests,
                "connections": self.connections,
                "errors": self.errors,
                "cells_served": self.cells_served,
                "cache_hits": self.cache_hits,
                "simulated_cells": self.simulated_cells,
                "coalesced_cells": self.coalesced_cells,
                "bytes_streamed": self.bytes_streamed,
                "result_reuses": self.result_reuses}


class _JournalState:
    """Per-request journal bookkeeping shared across a request's jobs."""

    def __init__(self, writer: JournalWriter, completed: Set[str]):
        self.writer = writer
        #: Fingerprints known journaled (pre-loaded on resume, grown as
        #: this run completes cells).
        self.completed = completed


class SweepService:
    """One serving instance: HTTP front end over cache + executor.

    Parameters
    ----------
    cache:
        Shared :class:`CellCache` (``None`` disables the warm path —
        every cell simulates — and journaling, which lives under the
        cache directory).  Give it ``max_bytes``/``max_age`` and a
        positive ``sweep_interval`` to bound growth for server-lifetime
        workloads.
    executor:
        Shared :class:`CellExecutor`; when omitted one is created from
        ``workers`` and owned (shut down by :meth:`stop`).  A
        :class:`~repro.dist.coordinator.RemoteCellExecutor` slots in
        here unchanged — the service then serves cold cells off a
        distributed worker fleet.
    port:
        ``0`` binds an ephemeral port; :attr:`port` holds the real one
        after :meth:`start`.
    """

    def __init__(self, cache: Optional[CellCache] = None,
                 executor: Optional[CellExecutor] = None,
                 workers=1,
                 quotas: Optional[TenantQuotas] = None,
                 admission: Optional[AdmissionQueue] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 sweep_interval: float = 0.0):
        self.cache = cache
        self._own_executor = executor is None
        self.executor = executor if executor is not None \
            else CellExecutor(workers)
        self.quotas = quotas if quotas is not None else TenantQuotas()
        self.admission = admission if admission is not None \
            else AdmissionQueue()
        self.single_flight = SingleFlight()
        self.stats = ServiceStats()
        self.host = host
        self.port = port
        self.sweep_interval = sweep_interval
        self._server: Optional[asyncio.AbstractServer] = None
        self._sweeper: Optional[asyncio.Task] = None
        self._conns: Set[asyncio.StreamWriter] = set()
        self._result_cache: "OrderedDict[Tuple[str, ...], str]" = \
            OrderedDict()

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "SweepService":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if (self.cache is not None and self.sweep_interval > 0
                and (self.cache.max_bytes is not None
                     or self.cache.max_age is not None)):
            self._sweeper = asyncio.create_task(self._sweeper_loop())
        return self

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._sweeper is not None:
            self._sweeper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sweeper
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Kick idle keep-alive connections loose so their handler tasks
        # unwind instead of being destroyed with the loop.
        for writer in list(self._conns):
            with contextlib.suppress(Exception):
                writer.close()
        if self._own_executor:
            await asyncio.to_thread(self.executor.shutdown)

    async def _sweeper_loop(self) -> None:
        # Periodic backstop for read-mostly servers: puts already trigger
        # maybe_sweep, but a warm server can go hours without one.
        while True:
            await asyncio.sleep(self.sweep_interval)
            await asyncio.to_thread(self.cache.maybe_sweep)

    # -- HTTP plumbing ------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.stats.connections += 1
        self._conns.add(writer)
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except (asyncio.IncompleteReadError,
                        asyncio.LimitOverrunError,
                        UnicodeDecodeError, ValueError) as exc:
                    # Framing is lost; answer and drop the connection.
                    await self._send_json(
                        writer, 400,
                        {"error": f"malformed request: {exc}"},
                        keep_alive=False)
                    return
                if parsed is None:
                    return  # clean EOF between requests
                method, target, body, keep_alive = parsed
                if target == "/v1/healthz":
                    if method != "GET":
                        await self._send_json(writer, 405,
                                              {"error": "use GET"},
                                              keep_alive=keep_alive)
                    else:
                        await self._send_json(
                            writer, 200,
                            {"ok": True, "version": __version__},
                            keep_alive=keep_alive)
                elif target == "/v1/stats":
                    if method != "GET":
                        await self._send_json(writer, 405,
                                              {"error": "use GET"},
                                              keep_alive=keep_alive)
                    else:
                        payload = await asyncio.to_thread(self.stats_payload)
                        await self._send_json(writer, 200, payload,
                                              keep_alive=keep_alive)
                elif target == "/v1/sweep":
                    if method != "POST":
                        await self._send_json(writer, 405,
                                              {"error": "use POST"},
                                              keep_alive=keep_alive)
                    else:
                        keep_alive = await self._handle_sweep(
                            writer, body, keep_alive)
                else:
                    await self._send_json(writer, 404,
                                          {"error": f"no route {target!r}"},
                                          keep_alive=keep_alive)
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; in-flight leaders finish regardless
        finally:
            self._conns.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader,
                            ) -> Optional[Tuple[str, str, bytes, bool]]:
        """Read one request; ``None`` on clean EOF between requests.

        The returned flag says whether the connection may be kept alive
        afterwards (HTTP/1.1 default unless the client said
        ``Connection: close``; HTTP/1.0 must opt in with
        ``keep-alive``).
        """
        request_line = (await reader.readline()).decode("ascii")
        if not request_line:
            return None
        parts = request_line.split()
        if len(parts) != 3:
            raise ValueError(f"bad request line {request_line!r}")
        method, target, version = parts
        keep_alive = version.upper() != "HTTP/1.0"
        content_length = 0
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("ascii").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                content_length = int(value.strip())
            elif name == "connection":
                token = value.strip().lower()
                if token == "close":
                    keep_alive = False
                elif token == "keep-alive":
                    keep_alive = True
        else:
            raise ValueError("too many header lines")
        if content_length > _MAX_BODY_BYTES:
            raise ValueError(f"body too large ({content_length} bytes)")
        body = await reader.readexactly(content_length) \
            if content_length else b""
        return method, target, body, keep_alive

    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         payload: Dict[str, object],
                         extra_headers: Tuple[Tuple[str, str], ...] = (),
                         keep_alive: bool = False) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (f"HTTP/1.1 {status} {_REASONS[status]}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n")
        for name, value in extra_headers:
            head += f"{name}: {value}\r\n"
        head += ("Connection: keep-alive\r\n\r\n" if keep_alive
                 else "Connection: close\r\n\r\n")
        writer.write(head.encode("ascii") + body)
        await writer.drain()

    async def _start_stream(self, writer: asyncio.StreamWriter,
                            chunked: bool) -> None:
        if chunked:
            writer.write(b"HTTP/1.1 200 OK\r\n"
                         b"Content-Type: application/x-ndjson\r\n"
                         b"Transfer-Encoding: chunked\r\n"
                         b"Connection: keep-alive\r\n\r\n")
        else:
            writer.write(b"HTTP/1.1 200 OK\r\n"
                         b"Content-Type: application/x-ndjson\r\n"
                         b"Connection: close\r\n\r\n")
        await writer.drain()

    async def _send_raw(self, writer: asyncio.StreamWriter, data: bytes,
                        chunked: bool) -> None:
        # bytes_streamed counts payload bytes, not chunk framing, so the
        # counter is comparable across framings.
        self.stats.bytes_streamed += len(data)
        if chunked:
            writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
        else:
            writer.write(data)
        await writer.drain()

    async def _send_event(self, writer: asyncio.StreamWriter,
                          payload: Dict[str, object],
                          chunked: bool) -> None:
        data = (json.dumps(payload, separators=(",", ":")) + "\n") \
            .encode("utf-8")
        await self._send_raw(writer, data, chunked)

    async def _end_stream(self, writer: asyncio.StreamWriter,
                          chunked: bool) -> None:
        if chunked:
            writer.write(b"0\r\n\r\n")
            await writer.drain()

    # -- journaling ---------------------------------------------------------
    def _journal_store(self) -> SweepJournal:
        if self.cache is None:
            raise ProtocolError(
                "'request_id'/'resume' need a cache-backed server; the "
                "journal lives under the cache directory")
        return SweepJournal(Path(self.cache.root) / "journal")

    async def _resume_request(self, request: SweepRequest):
        """Replay a journaled request: re-parse its stored body.

        Returns ``(request, jobs, writer, completed_fps)`` where
        ``request`` is the full journaled request (same ``request_id``)
        and ``completed_fps`` are the fingerprints already journaled.
        """
        store = self._journal_store()
        stored, completed, _torn = await asyncio.to_thread(
            store.load, request.request_id)
        body = dict(stored)
        body.pop("resume", None)
        body["request_id"] = request.request_id
        try:
            full = parse_request(body)
        except ProtocolError as exc:
            raise ProtocolError(
                f"journaled request {request.request_id!r} no longer "
                f"parses: {exc}") from exc
        jobs = resolve_jobs(full)
        writer = await asyncio.to_thread(store.append, request.request_id)
        return full, jobs, writer, completed

    async def _create_journal(self, request_id: str,
                              data: Dict[str, object]) -> JournalWriter:
        store = self._journal_store()
        stored = {key: value for key, value in data.items()
                  if key not in ("request_id", "resume")}
        return await asyncio.to_thread(store.create, request_id, stored)

    # -- the sweep endpoint -------------------------------------------------
    async def _handle_sweep(self, writer: asyncio.StreamWriter,
                            body: bytes, keep_alive: bool) -> bool:
        """Serve one sweep request; returns whether the connection
        survives (chunked streams do, close-delimited ones by
        definition do not)."""
        self.stats.requests += 1
        try:
            data = json.loads(body.decode("utf-8"))
            request = parse_request(data)
        except (ValueError, ProtocolError) as exc:
            await self._send_json(writer, 400, {"error": str(exc)},
                                  keep_alive=keep_alive)
            return keep_alive
        journal: Optional[_JournalState] = None
        resumed = False
        try:
            if request.resume:
                request, jobs, journal_writer, completed = \
                    await self._resume_request(request)
                journal = _JournalState(journal_writer, completed)
                resumed = True
            else:
                jobs = resolve_jobs(request)
                if request.request_id is not None:
                    journal = _JournalState(
                        await self._create_journal(request.request_id, data),
                        set())
        except (ProtocolError, JournalError) as exc:
            await self._send_json(writer, 400, {"error": str(exc)},
                                  keep_alive=keep_alive)
            return keep_alive
        try:
            self.quotas.acquire(request.tenant)
        except QuotaExceeded as exc:
            if journal is not None:
                await asyncio.to_thread(journal.writer.close)
            await self._send_json(
                writer, 429,
                {"error": str(exc), "retry_after": exc.retry_after},
                extra_headers=(("Retry-After", f"{exc.retry_after:g}"),),
                keep_alive=keep_alive)
            return keep_alive
        started_at = time.monotonic()
        chunked = keep_alive
        try:
            await self._start_stream(writer, chunked)
            await self._send_event(writer,
                                   started_event(request, jobs, resumed),
                                   chunked)
            totals = {"cache_hits": 0, "simulated": 0, "coalesced": 0,
                      "journal_skipped": 0}
            for job in jobs:
                await self._run_job(writer, chunked, request, job, totals,
                                    journal)
            done_kwargs: Dict[str, object] = {}
            if request.request_id is not None:
                done_kwargs = {
                    "request_id": request.request_id,
                    "journal_done": len(journal.completed)
                    if journal is not None else 0,
                    "journal_skipped": totals["journal_skipped"],
                }
            await self._send_event(writer, done_event(
                totals["cache_hits"], totals["simulated"],
                totals["coalesced"], time.monotonic() - started_at,
                **done_kwargs), chunked)
            await self._end_stream(writer, chunked)
            return chunked
        except (ConnectionResetError, BrokenPipeError):
            raise
        except Exception as exc:
            self.stats.errors += 1
            with contextlib.suppress(Exception):
                await self._send_event(writer, error_event(str(exc)),
                                       chunked)
                await self._end_stream(writer, chunked)
            return False
        finally:
            self.quotas.release(request.tenant)
            if journal is not None:
                await asyncio.to_thread(journal.writer.close)

    async def _run_job(self, writer: asyncio.StreamWriter, chunked: bool,
                       request: SweepRequest, job: SweepJob,
                       totals: Dict[str, int],
                       journal: Optional[_JournalState]) -> None:
        outcomes: List[Optional[Dict[str, object]]] = [None] * job.cells
        warm = 0
        if self.cache is not None:
            hits = await asyncio.to_thread(self._probe, job.keys)
            for index, outcome in hits:
                outcomes[index] = outcome
            warm = len(hits)
            if journal is not None and hits:
                fresh: List[str] = []
                for index, _ in hits:
                    fingerprint = job.keys[index]
                    if fingerprint in journal.completed:
                        # Journaled by the interrupted run, answered
                        # from cache now: the cell resume exists for.
                        totals["journal_skipped"] += 1
                    else:
                        journal.completed.add(fingerprint)
                        fresh.append(fingerprint)
                if fresh:
                    await asyncio.to_thread(journal.writer.mark_many, fresh)
        await self._send_event(writer, job_event(job, warm), chunked)

        pending = [i for i in range(job.cells) if outcomes[i] is None]
        cache_hits = warm
        simulated = coalesced = 0
        done = warm
        tasks = [asyncio.create_task(self._run_cell(request, job, index))
                 for index in pending]
        try:
            for future in asyncio.as_completed(tasks):
                index, source, outcome = await future
                outcomes[index] = outcome
                done += 1
                if source == "simulated":
                    simulated += 1
                elif source == "coalesced":
                    coalesced += 1
                else:  # a leader that found the cell freshly cached
                    cache_hits += 1
                if journal is not None:
                    fingerprint = job.keys[index]
                    if fingerprint is not None \
                            and fingerprint not in journal.completed:
                        journal.completed.add(fingerprint)
                        await asyncio.to_thread(journal.writer.mark,
                                                fingerprint)
                if request.stream_every and done < job.cells \
                        and (done - warm) % request.stream_every == 0:
                    await self._send_event(
                        writer, partial_event(job, done, outcomes), chunked)
        except BaseException:
            # Drop *our* waiters; shielded leaders keep running so other
            # requests coalesced onto them still get their outcomes.
            for task in tasks:
                task.cancel()
            raise

        self.stats.cache_hits += cache_hits
        self.stats.simulated_cells += simulated
        self.stats.coalesced_cells += coalesced
        self.stats.cells_served += job.cells
        totals["cache_hits"] += cache_hits
        totals["simulated"] += simulated
        totals["coalesced"] += coalesced

        await self._send_raw(
            writer,
            self._encode_result(job, outcomes, cache_hits, simulated,
                                coalesced),
            chunked)

    def _encode_result(self, job: SweepJob,
                       outcomes: List[Optional[Dict[str, object]]],
                       cache_hits: int, simulated: int,
                       coalesced: int) -> bytes:
        """Serialize one ``result`` event, reusing the stable fragment.

        The tables (xs/labels/raw/normalized/rm_fallbacks) are a pure
        function of the job's ordered cell fingerprints, so subscribers
        fanning out over the same cells share one aggregation + one
        ``json.dumps`` of the heavy fragment; only the per-request
        counters are encoded fresh and spliced in.
        """
        key: Optional[Tuple[str, ...]] = None
        if all(k is not None for k in job.keys):
            key = (job.scenario, job.panel, *job.keys)
        stable = self._result_cache.get(key) if key is not None else None
        if stable is None:
            result = aggregate_outcomes(job.config, outcomes)
            payload = result_event(job, result, 0, 0, 0)
            for counter in ("cache_hits", "simulated_cells",
                            "coalesced_cells"):
                del payload[counter]
            stable = json.dumps(payload, separators=(",", ":"))
            if key is not None:
                self._result_cache[key] = stable
                while len(self._result_cache) > _RESULT_CACHE_MAX:
                    self._result_cache.popitem(last=False)
        else:
            self.stats.result_reuses += 1
            self._result_cache.move_to_end(key)
        counters = json.dumps(
            {"cache_hits": cache_hits, "simulated_cells": simulated,
             "coalesced_cells": coalesced}, separators=(",", ":"))
        # Merge `{...stable}` and `{...counters}` into one JSON object.
        return (stable[:-1] + "," + counters[1:] + "\n").encode("utf-8")

    def _probe(self, keys: List[Optional[str]],
               ) -> List[Tuple[int, Dict[str, object]]]:
        """Warm-path batch read (runs on a worker thread)."""
        hits = []
        for index, key in enumerate(keys):
            if key is None:
                continue
            outcome = self.cache.get(key)
            if outcome is not None:
                hits.append((index, outcome))
        return hits

    async def _run_cell(self, request: SweepRequest, job: SweepJob,
                        index: int) -> Tuple[int, str, Dict[str, object]]:
        """Resolve one cold cell; returns ``(index, source, outcome)``
        with ``source`` in ``{"simulated", "coalesced", "cached"}``."""
        key = job.keys[index]
        spec = job.specs[index]

        async def factory() -> Tuple[str, Dict[str, object]]:
            if self.cache is not None and key is not None:
                # Re-probe under the single-flight lock: a previous
                # leader may have cached this cell after our batch probe
                # missed it.
                cached = await asyncio.to_thread(self.cache.get, key)
                if cached is not None:
                    return "cached", cached
            async with self.admission:
                outcome = await asyncio.wrap_future(
                    self.executor.submit_cell(job.context, spec,
                                              engine=request.engine))
            if self.cache is not None and key is not None:
                await asyncio.to_thread(self.cache.put, key, outcome)
            return "simulated", outcome

        if key is None:  # uncacheable: nothing to coalesce on
            source, outcome = await factory()
            return index, source, outcome
        led, (source, outcome) = await self.single_flight.run(key, factory)
        return index, (source if led else "coalesced"), outcome

    # -- introspection ------------------------------------------------------
    def stats_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "version": __version__,
            "workers": self.executor.workers,
        }
        payload.update(self.stats.to_dict())
        payload["single_flight"] = self.single_flight.stats()
        payload["quotas"] = self.quotas.snapshot()
        payload["admission"] = self.admission.snapshot()
        if self.cache is not None:
            payload["cache"] = {"entries": len(self.cache),
                                "bytes": self.cache.size_bytes()}
        return payload


class ServiceThread:
    """Run a :class:`SweepService` on a dedicated event-loop thread.

    The synchronous harness for tests, benchmarks, and anything else
    that wants to drive the server with a blocking client from the same
    process::

        with ServiceThread(SweepService(cache=cache)) as handle:
            client = SweepServiceClient(port=handle.port)
            ...
    """

    def __init__(self, service: SweepService):
        self.service = service
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "ServiceThread":
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        failure: List[BaseException] = []

        def main() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self.service.start())
            except BaseException as exc:  # surface bind errors to caller
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                self._loop.run_forever()
            finally:
                self._loop.run_until_complete(self.service.stop())
                self._loop.close()

        self._thread = threading.Thread(target=main, name="sweep-service",
                                        daemon=True)
        self._thread.start()
        started.wait()
        if failure:
            raise failure[0]
        return self

    @property
    def port(self) -> int:
        return self.service.port

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
