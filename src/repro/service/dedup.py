"""Single-flight request coalescing.

The serving tier's second perf layer: when N concurrent requests need
the same cell (identical content fingerprint), exactly one simulation
runs — the *leader* — and its outcome fans back out to every waiter.
Combined with the cache-first read path this turns a thundering herd of
identical sweep submissions into one sweep's worth of work.

The table is keyed by the cell cache key, i.e. the same content hash
that addresses outcomes on disk, so "identical" here is exactly
"would produce a bit-identical outcome".

Single-threaded by design: all access happens on the server's event
loop, so a plain dict needs no locking.  The leader's work runs as an
independent :class:`asyncio.Task`; waiters await it through
:func:`asyncio.shield`, so one cancelled request (client disconnect)
never cancels the simulation out from under the other waiters — or the
cache write that follows it.
"""

import asyncio
from typing import Awaitable, Callable, Dict, Tuple


class SingleFlight:
    """Coalesce concurrent identical work under one in-flight task."""

    def __init__(self):
        self._inflight: Dict[str, asyncio.Task] = {}
        #: Calls that started new work (one simulated cell each).
        self.leads = 0
        #: Calls that joined an already-in-flight computation.
        self.joins = 0

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    async def run(self, key: str,
                  factory: Callable[[], Awaitable[object]],
                  ) -> Tuple[bool, object]:
        """Run ``factory`` under ``key``, coalescing with any in-flight
        computation of the same key.

        Returns ``(led, outcome)`` — ``led`` is True iff this call
        started the work (its caller owns the simulated-cell count; a
        joiner accounts the cell as coalesced instead).  If the leader's
        factory raises, every waiter sees the same exception.
        """
        task = self._inflight.get(key)
        if task is None:
            self.leads += 1
            led = True
            task = asyncio.ensure_future(factory())
            self._inflight[key] = task

            def _cleanup(done: asyncio.Task, key: str = key) -> None:
                # Guard against a newer task having replaced this entry
                # (possible if cleanup is delayed past a re-lead).
                if self._inflight.get(key) is done:
                    del self._inflight[key]

            task.add_done_callback(_cleanup)
        else:
            self.joins += 1
            led = False
        return led, await asyncio.shield(task)

    def stats(self) -> Dict[str, int]:
        return {"leads": self.leads, "joins": self.joins,
                "inflight": self.inflight}
