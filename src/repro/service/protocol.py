"""Wire protocol of the sweep service.

One request describes one *sweep intent* — either a catalog scenario
(optionally narrowed to a single panel) or an inline panel-shaped spec —
plus execution hints that never enter cell identity (``quick``,
``engine``, ``stream_every``, ``tenant``).  The server resolves the
request to the exact seed-level :class:`~repro.analysis.sweep.CellSpec`
list the in-process sweep would run, so every cell is content-addressed
by the same fingerprint the :mod:`~repro.analysis.cellcache` uses and a
service response is bit-identical to a local run by construction.

Parsing follows the catalog's strict-schema rule: unknown keys are
rejected at every level (a typoed ``n_taks`` must fail loudly, not
silently sweep something else).

The response is a stream of NDJSON events, one JSON object per line:

``started``
    Request accepted; lists the resolved jobs and total cell count.
``job``
    One job (scenario panel) begins; reports its warm-cell count.
``partial``
    Incremental aggregate over the cells completed so far (every
    ``stream_every`` completions).  Means are computed over the
    completed subset only; ``sets_done`` says how deep each
    utilization column is.
``result``
    One job's final tables — the full row-major raw/normalized
    aggregates, bit-identical to ``utilization_sweep`` on the same
    config.
``done``
    Request finished; totals across all jobs.
``error``
    Terminal mid-stream failure (the HTTP status is already 200 by
    then; clients must treat this event as fatal).
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.aggregate import mean
from repro.analysis.sweep import (CellSpec, SweepConfig, SweepContext,
                                  SweepResult, cell_cache_key,
                                  sweep_cell_specs, sweep_context,
                                  sweep_result_labels)
from repro.catalog.catalog import get_scenario
from repro.catalog.schema import PanelSpec
from repro.errors import ReproError

#: Version tag of the request/event wire format; bump on any
#: incompatible change.  ``started`` events carry it so clients can
#: detect a server they do not understand.
PROTOCOL_VERSION = 1

_REQUEST_KEYS = ("scenario", "panel", "spec", "quick", "tenant",
                 "engine", "stream_every", "request_id", "resume")


class ProtocolError(ReproError):
    """A request failed wire-schema validation."""


@dataclass(frozen=True)
class SweepRequest:
    """One parsed, validated sweep request."""

    scenario: Optional[str] = None
    panel: Optional[str] = None
    spec: Optional[PanelSpec] = None
    quick: bool = True
    tenant: str = "default"
    engine: str = "scalar"
    #: Emit a ``partial`` aggregate event every N completed cells
    #: (0 disables partials; warm cells never trigger them).
    stream_every: int = 0
    #: Durable-journal identity: naming a request journals its spec and
    #: every completed cell fingerprint under the cache dir, so the
    #: request can be resumed after a coordinator restart.
    request_id: Optional[str] = None
    #: Resume a journaled request: the body carries only ``request_id``
    #: (+ ``resume: true``); the sweep target comes from the journal.
    resume: bool = False


@dataclass
class SweepJob:
    """One resolved sweep: a panel bound to runnable cell specs.

    ``keys`` aligns with ``specs``; an entry is ``None`` only for
    uncacheable (trace-carrying) cells, which a wire request can never
    produce but the server still guards against.
    """

    scenario: str
    panel: str
    config: SweepConfig
    context: SweepContext
    specs: List[CellSpec]
    keys: List[Optional[str]]

    @property
    def cells(self) -> int:
        return len(self.specs)


def parse_request(data: object) -> SweepRequest:
    """Validate a decoded request body into a :class:`SweepRequest`.

    Raises :class:`ProtocolError` on unknown keys, missing/conflicting
    target (exactly one of ``scenario`` / ``spec``), or ill-typed
    fields.  Catalog-level validation of an inline spec (unknown
    machine, bad policy names...) surfaces as the catalog's own
    :class:`~repro.catalog.schema.CatalogError`, re-raised as
    :class:`ProtocolError` so the server maps both to HTTP 400.
    """
    if not isinstance(data, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got {type(data).__name__}")
    data = dict(data)
    payload: Dict[str, object] = {}
    for key in _REQUEST_KEYS:
        if key in data:
            payload[key] = data.pop(key)
    if data:
        raise ProtocolError(
            f"request has unknown key(s) {sorted(data)}; "
            f"accepted: {sorted(_REQUEST_KEYS)}")

    resume = payload.get("resume", False)
    if not isinstance(resume, bool):
        raise ProtocolError("'resume' must be a boolean")
    request_id = payload.get("request_id")
    if request_id is not None:
        from repro.dist.journal import JournalError, validate_request_id
        try:
            validate_request_id(request_id)
        except JournalError as exc:
            raise ProtocolError(str(exc)) from exc
    if resume and request_id is None:
        raise ProtocolError("'resume' requires a 'request_id'")

    scenario = payload.get("scenario")
    spec_data = payload.get("spec")
    if resume:
        if scenario is not None or spec_data is not None \
                or payload.get("panel") is not None:
            raise ProtocolError(
                "a resume request names only its 'request_id'; the sweep "
                "target comes from the journal")
    elif (scenario is None) == (spec_data is None):
        raise ProtocolError(
            "request must carry exactly one of 'scenario' or 'spec'")
    if scenario is not None and not isinstance(scenario, str):
        raise ProtocolError("'scenario' must be a string")
    panel = payload.get("panel")
    if panel is not None:
        if spec_data is not None:
            raise ProtocolError("'panel' only applies to 'scenario' requests")
        if not isinstance(panel, str):
            raise ProtocolError("'panel' must be a string")

    spec: Optional[PanelSpec] = None
    if spec_data is not None:
        if not isinstance(spec_data, dict):
            raise ProtocolError("'spec' must be a JSON object")
        spec_data = dict(spec_data)
        spec_data.setdefault("label", "inline")
        try:
            spec = PanelSpec.from_dict(spec_data)
        except ReproError as exc:
            raise ProtocolError(f"invalid inline spec: {exc}") from exc

    quick = payload.get("quick", True)
    if not isinstance(quick, bool):
        raise ProtocolError("'quick' must be a boolean")
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("'tenant' must be a non-empty string")
    engine = payload.get("engine", "scalar")
    if engine not in ("scalar", "batch", "block"):
        raise ProtocolError(
            f"unknown engine {engine!r}; expected 'scalar', 'batch', "
            f"or 'block'")
    stream_every = payload.get("stream_every", 0)
    if not isinstance(stream_every, int) or isinstance(stream_every, bool) \
            or stream_every < 0:
        raise ProtocolError("'stream_every' must be a non-negative integer")

    return SweepRequest(scenario=scenario, panel=panel, spec=spec,
                        quick=quick, tenant=tenant, engine=engine,
                        stream_every=stream_every,
                        request_id=request_id, resume=resume)


def resolve_jobs(request: SweepRequest) -> List[SweepJob]:
    """Resolve a request to its jobs: one per panel, in catalog order.

    A scenario request without ``panel`` fans out to *all* panels of the
    scenario; an inline spec is a single job under the scenario name
    ``"inline"``.  Unknown scenario/panel names surface as
    :class:`ProtocolError` (HTTP 400 — the client named something that
    does not exist, the server is fine).
    """
    if request.resume:
        raise ProtocolError(
            "resume requests resolve through the journal; the server "
            "re-parses the journaled body first")
    pairs: List[tuple] = []
    if request.spec is not None:
        pairs.append(("inline", request.spec))
    else:
        try:
            scenario = get_scenario(request.scenario)
            panels = ([scenario.panel(request.panel)]
                      if request.panel is not None else list(scenario.panels))
        except ReproError as exc:
            raise ProtocolError(str(exc)) from exc
        if not panels:
            raise ProtocolError(
                f"scenario {request.scenario!r} declares no sweep panels; "
                "nothing to serve")
        pairs.extend((request.scenario, panel) for panel in panels)

    jobs: List[SweepJob] = []
    for scenario_name, panel in pairs:
        config = panel.sweep_config(quick=request.quick,
                                    engine=request.engine)
        context = sweep_context(config)
        specs = sweep_cell_specs(config)
        keys = [cell_cache_key(context, spec) if spec.cacheable else None
                for spec in specs]
        jobs.append(SweepJob(scenario=scenario_name, panel=panel.label,
                             config=config, context=context,
                             specs=specs, keys=keys))
    return jobs


# ---------------------------------------------------------------------------
# event payloads (server -> client)
# ---------------------------------------------------------------------------

def started_event(request: SweepRequest, jobs: List[SweepJob],
                  resumed: bool = False) -> Dict[str, object]:
    event = {
        "event": "started",
        "protocol": PROTOCOL_VERSION,
        "quick": request.quick,
        "engine": request.engine,
        "tenant": request.tenant,
        "jobs": [{"scenario": job.scenario, "panel": job.panel,
                  "cells": job.cells} for job in jobs],
        "total_cells": sum(job.cells for job in jobs),
    }
    if request.request_id is not None:
        event["request_id"] = request.request_id
        event["resumed"] = resumed
    return event


def job_event(job: SweepJob, warm: int) -> Dict[str, object]:
    return {"event": "job", "scenario": job.scenario, "panel": job.panel,
            "cells": job.cells, "warm": warm}


def partial_aggregate(config: SweepConfig,
                      outcomes: List[Optional[Dict[str, object]]],
                      ) -> Dict[str, object]:
    """Aggregate the *completed subset* of a sweep's outcomes.

    Per utilization point, means are taken over however many sets have
    finished (``None`` entries are skipped); a point with no completed
    sets yields ``None``.  This is deliberately raw-energy only — the
    normalized tables need the full column, so they arrive with the
    final ``result`` event.
    """
    labels = sweep_result_labels(config)
    xs = list(config.utilizations)
    n_sets = config.n_sets
    sets_done: List[int] = []
    raw_mean: Dict[str, List[Optional[float]]] = {
        label: [] for label in labels}
    for u_index in range(len(xs)):
        row = [o for o in outcomes[u_index * n_sets:(u_index + 1) * n_sets]
               if o is not None]
        sets_done.append(len(row))
        for label in labels:
            raw_mean[label].append(
                mean([o[label] for o in row]) if row else None)
    return {"xs": xs, "labels": labels, "sets_done": sets_done,
            "raw_mean": raw_mean}


def partial_event(job: SweepJob, done: int,
                  outcomes: List[Optional[Dict[str, object]]],
                  ) -> Dict[str, object]:
    return {"event": "partial", "scenario": job.scenario,
            "panel": job.panel, "done": done, "total": job.cells,
            "aggregate": partial_aggregate(job.config, outcomes)}


def result_event(job: SweepJob, result: SweepResult, cache_hits: int,
                 simulated: int, coalesced: int) -> Dict[str, object]:
    """One job's final tables.

    ``raw`` / ``normalized`` are row-major (one row per utilization,
    columns in ``labels`` order) — the same layout
    :meth:`~repro.analysis.series.SweepTable.rows` produces, so equality
    against an in-process run is a plain ``==`` on the decoded JSON
    (Python floats survive a JSON round-trip bit-exactly).
    """
    return {
        "event": "result",
        "scenario": job.scenario,
        "panel": job.panel,
        "xs": list(result.raw.xs),
        "labels": result.raw.labels(),
        "raw": result.raw.rows(),
        "normalized": result.normalized.rows(),
        "rm_fallbacks": result.rm_fallbacks,
        "cache_hits": cache_hits,
        "simulated_cells": simulated,
        "coalesced_cells": coalesced,
    }


def done_event(cache_hits: int, simulated: int, coalesced: int,
               elapsed_s: float,
               request_id: Optional[str] = None,
               journal_done: Optional[int] = None,
               journal_skipped: Optional[int] = None) -> Dict[str, object]:
    event = {"event": "done", "cache_hits": cache_hits,
             "simulated_cells": simulated, "coalesced_cells": coalesced,
             "elapsed_s": elapsed_s}
    if request_id is not None:
        event["request_id"] = request_id
        # Total fingerprints in the journal after this run / cells this
        # run skipped because a previous run had journaled them.
        event["journal_done"] = journal_done
        event["journal_skipped"] = journal_skipped
    return event


def error_event(message: str) -> Dict[str, object]:
    return {"event": "error", "message": message}
