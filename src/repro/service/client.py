"""Thin blocking client for the sweep service (`rtdvs submit`).

Stdlib :mod:`http.client` over the service's NDJSON stream, with one
**persistent keep-alive connection** per client: the TCP + HTTP setup
cost is paid once, not per request (the serving-overhead benchmark
gates on this).  ``http.client`` decodes the server's chunked framing
transparently; a server that answers ``Connection: close`` (or a
pre-keep-alive one) simply costs a reconnect per request.

Failure handling, in increasing severity:

* **HTTP 429** — retried after honoring the server's ``Retry-After``
  hint, up to ``max_retries`` attempts (the cooperative half of the
  quota contract).
* **Stale keep-alive** — a server may close an idle persistent
  connection between requests; the first send on a *reused* connection
  that dies (``ConnectionResetError``/``BrokenPipeError``) gets one
  free immediate retry on a fresh connection.
* **Connection refused/reset on a fresh connection** — the service is
  down or restarting; re-dial with capped exponential backoff and
  deterministic jitter, up to ``connect_retries`` attempts.

``sleep`` is injectable so tests observe every back-off decision
without actually waiting, and the jitter is a pure function of
``(host, port, attempt)`` so retry schedules are reproducible.
"""

import contextlib
import hashlib
import json
import time
from http.client import HTTPConnection
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import ReproError

#: Exceptions meaning "the TCP connection died under us" — eligible for
#: the stale-reuse free retry (``RemoteDisconnected`` subclasses
#: ``ConnectionResetError``).
_CONN_DIED = (ConnectionResetError, BrokenPipeError, ConnectionAbortedError)


class ServiceError(ReproError):
    """The service rejected or aborted a request."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


def backoff_delay(host: str, port: int, attempt: int,
                  base: float, cap: float) -> float:
    """Capped exponential backoff with deterministic jitter.

    ``min(cap, base * 2**attempt)`` scaled into ``[0.5, 1.0)`` by a
    jitter factor hashed from ``(host, port, attempt)`` — spread-out
    like random jitter, but reproducible for tests and debugging.
    """
    delay = min(cap, base * (2 ** attempt))
    seed = hashlib.sha256(f"{host}:{port}:{attempt}".encode()).hexdigest()
    jitter = 0.5 + (int(seed[:8], 16) % 1000) / 2000.0
    return delay * jitter


class SweepServiceClient:
    """One service endpoint: persistent connection, 429- and
    reconnect-aware submission.

    The client is not thread-safe (one in-flight request per
    connection); give each thread its own instance.  Use as a context
    manager, or call :meth:`close`, to drop the persistent connection
    deterministically.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout: float = 300.0, max_retries: int = 8,
                 retry_cap: float = 5.0,
                 connect_retries: int = 4,
                 backoff_base: float = 0.1,
                 backoff_cap: float = 2.0,
                 sleep: Callable[[float], None] = time.sleep):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max_retries
        self.retry_cap = retry_cap
        self.connect_retries = connect_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._conn: Optional[HTTPConnection] = None
        #: 429 responses absorbed by retrying (observability for the
        #: backpressure differential tests).
        self.retries_429 = 0
        #: Re-dials after connection refused/reset on a fresh connection.
        self.retries_connect = 0
        #: Free retries after a reused keep-alive connection went stale.
        self.stale_retries = 0

    # -- connection management ----------------------------------------------
    def close(self) -> None:
        """Drop the persistent connection (idempotent)."""
        if self._conn is not None:
            with contextlib.suppress(Exception):
                self._conn.close()
            self._conn = None

    def __enter__(self) -> "SweepServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _connect(self) -> HTTPConnection:
        """Dial the service, backing off on refused/reset."""
        attempt = 0
        while True:
            conn = HTTPConnection(self.host, self.port,
                                  timeout=self.timeout)
            try:
                conn.connect()
                return conn
            except _CONN_DIED + (ConnectionRefusedError, OSError) as exc:
                conn.close()
                if attempt >= self.connect_retries:
                    raise ServiceError(
                        f"cannot reach sweep service at "
                        f"{self.host}:{self.port} after {attempt + 1} "
                        f"attempt(s): {exc}") from exc
                self.retries_connect += 1
                self._sleep(backoff_delay(self.host, self.port, attempt,
                                          self.backoff_base,
                                          self.backoff_cap))
                attempt += 1

    def _send(self, method: str, path: str, body: Optional[bytes] = None,
              headers: Optional[Dict[str, str]] = None):
        """Issue one request on the persistent connection.

        A send that dies on a *reused* connection gets one free retry on
        a fresh one (the server legitimately closes idle keep-alive
        connections); a fresh connection dying is a real failure.
        """
        reused = self._conn is not None
        if self._conn is None:
            self._conn = self._connect()
        try:
            self._conn.request(method, path, body=body,
                               headers=headers or {})
            return self._conn.getresponse()
        except _CONN_DIED as exc:
            self.close()
            if not reused:
                raise ServiceError(
                    f"connection to {self.host}:{self.port} died: "
                    f"{exc}") from exc
            self.stale_retries += 1
            self._conn = self._connect()
            try:
                self._conn.request(method, path, body=body,
                                   headers=headers or {})
                return self._conn.getresponse()
            except _CONN_DIED as retry_exc:
                self.close()
                raise ServiceError(
                    f"connection to {self.host}:{self.port} died: "
                    f"{retry_exc}") from retry_exc
        except Exception:
            self.close()
            raise

    def _finish_response(self, response) -> None:
        """Body fully read; keep the connection unless the server said
        (or framing implies) it is closing."""
        if response.will_close:
            self.close()

    # -- submission ---------------------------------------------------------
    def submit(self, request: Dict[str, object]) -> Iterator[Dict[str, object]]:
        """POST a sweep request; yield its NDJSON events as dicts.

        Raises :class:`ServiceError` on non-200 responses (after
        exhausting 429 retries) and on a terminal ``error`` event.
        Abandoning the iterator mid-stream drops the connection (the
        unread stream cannot be reused).
        """
        body = json.dumps(request).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        attempts = 0
        while True:
            response = self._send("POST", "/v1/sweep", body, headers)
            if response.status == 429:
                retry_after = float(
                    response.getheader("Retry-After") or 1.0)
                response.read()
                self._finish_response(response)
                if attempts >= self.max_retries:
                    raise ServiceError(
                        f"quota exhausted after {attempts} retries",
                        status=429)
                attempts += 1
                self.retries_429 += 1
                self._sleep(min(retry_after, self.retry_cap))
                continue
            if response.status != 200:
                detail = response.read().decode("utf-8", "replace")
                self._finish_response(response)
                raise ServiceError(
                    f"HTTP {response.status}: {detail}",
                    status=response.status)
            complete = False
            try:
                for line in response:
                    line = line.strip()
                    if not line:
                        continue
                    event = json.loads(line)
                    if event.get("event") == "error":
                        raise ServiceError(
                            f"server error: {event.get('message')}")
                    yield event
                complete = True
                return
            finally:
                if complete:
                    self._finish_response(response)
                else:  # aborted mid-stream: connection is poisoned
                    self.close()

    def submit_collect(self, request: Dict[str, object],
                       ) -> Dict[str, object]:
        """Submit and drain the stream; returns events grouped by kind.

        ``results`` holds the per-panel ``result`` events in order;
        ``done`` the terminal totals (``None`` if the stream ended
        early, which callers should treat as a failure).
        """
        events: List[Dict[str, object]] = list(self.submit(request))
        results = [e for e in events if e.get("event") == "result"]
        done = next((e for e in events if e.get("event") == "done"), None)
        return {"events": events, "results": results, "done": done}

    # -- introspection ------------------------------------------------------
    def _get(self, path: str) -> Dict[str, object]:
        response = self._send("GET", path)
        payload = response.read()
        self._finish_response(response)
        if response.status != 200:
            raise ServiceError(
                f"HTTP {response.status} for {path}: "
                f"{payload.decode('utf-8', 'replace')}",
                status=response.status)
        return json.loads(payload)

    def healthz(self) -> Dict[str, object]:
        return self._get("/v1/healthz")

    def stats(self) -> Dict[str, object]:
        return self._get("/v1/stats")
