"""Thin blocking client for the sweep service (`rtdvs submit`).

Stdlib :mod:`http.client` over the close-delimited NDJSON stream: the
response has no ``Content-Length``, so events are read line-by-line
until the server closes the connection.  HTTP 429 responses are
retried after honoring the server's ``Retry-After`` hint, up to
``max_retries`` attempts — the cooperative half of the quota contract.
"""

import json
import time
from http.client import HTTPConnection
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import ReproError


class ServiceError(ReproError):
    """The service rejected or aborted a request."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class SweepServiceClient:
    """One service endpoint, with 429-aware submission.

    ``sleep`` is injectable so tests can observe the Retry-After
    back-off without actually waiting.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout: float = 300.0, max_retries: int = 8,
                 retry_cap: float = 5.0,
                 sleep: Callable[[float], None] = time.sleep):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max_retries
        self.retry_cap = retry_cap
        self._sleep = sleep
        #: 429 responses absorbed by retrying (observability for the
        #: backpressure differential tests).
        self.retries_429 = 0

    # -- submission ---------------------------------------------------------
    def submit(self, request: Dict[str, object]) -> Iterator[Dict[str, object]]:
        """POST a sweep request; yield its NDJSON events as dicts.

        Raises :class:`ServiceError` on non-200 responses (after
        exhausting 429 retries) and on a terminal ``error`` event.
        """
        body = json.dumps(request).encode("utf-8")
        attempts = 0
        while True:
            connection = HTTPConnection(self.host, self.port,
                                        timeout=self.timeout)
            try:
                connection.request(
                    "POST", "/v1/sweep", body=body,
                    headers={"Content-Type": "application/json"})
                response = connection.getresponse()
                if response.status == 429:
                    retry_after = float(
                        response.getheader("Retry-After") or 1.0)
                    response.read()
                    if attempts >= self.max_retries:
                        raise ServiceError(
                            f"quota exhausted after {attempts} retries",
                            status=429)
                    attempts += 1
                    self.retries_429 += 1
                    self._sleep(min(retry_after, self.retry_cap))
                    continue
                if response.status != 200:
                    detail = response.read().decode("utf-8", "replace")
                    raise ServiceError(
                        f"HTTP {response.status}: {detail}",
                        status=response.status)
                for line in response:
                    line = line.strip()
                    if not line:
                        continue
                    event = json.loads(line)
                    if event.get("event") == "error":
                        raise ServiceError(
                            f"server error: {event.get('message')}")
                    yield event
                return
            finally:
                connection.close()

    def submit_collect(self, request: Dict[str, object],
                       ) -> Dict[str, object]:
        """Submit and drain the stream; returns events grouped by kind.

        ``results`` holds the per-panel ``result`` events in order;
        ``done`` the terminal totals (``None`` if the stream ended
        early, which callers should treat as a failure).
        """
        events: List[Dict[str, object]] = list(self.submit(request))
        results = [e for e in events if e.get("event") == "result"]
        done = next((e for e in events if e.get("event") == "done"), None)
        return {"events": events, "results": results, "done": done}

    # -- introspection ------------------------------------------------------
    def _get(self, path: str) -> Dict[str, object]:
        connection = HTTPConnection(self.host, self.port,
                                    timeout=self.timeout)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            payload = response.read()
            if response.status != 200:
                raise ServiceError(
                    f"HTTP {response.status} for {path}: "
                    f"{payload.decode('utf-8', 'replace')}",
                    status=response.status)
            return json.loads(payload)
        finally:
            connection.close()

    def healthz(self) -> Dict[str, object]:
        return self._get("/v1/healthz")

    def stats(self) -> Dict[str, object]:
        return self._get("/v1/stats")
