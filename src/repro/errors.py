"""Exception hierarchy for the RT-DVS reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch a single base class.  The hierarchy mirrors the subsystems:
task-model validation, hardware-model validation, simulation failures, and
the kernel-emulation layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TaskModelError(ReproError):
    """Invalid task, task set, or demand-model specification."""


class MachineError(ReproError):
    """Invalid machine (frequency/voltage table) specification."""


class SchedulabilityError(ReproError):
    """A task set failed a schedulability test where one was required.

    Raised, for example, by the static voltage-scaling policies when no
    available operating frequency makes the task set schedulable.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class PolicyStateError(ReproError):
    """An incrementally-maintained policy aggregate diverged from its
    from-scratch recomputation.

    Raised only in a policy's ``strict`` mode, where every selection
    cross-checks the running aggregates (utilization sums, quota tables,
    deferral orderings) against a fresh recomputation.  Outside strict
    mode the policies bound drift by periodic exact resync instead.
    """


class DeadlineMissError(SimulationError):
    """A job missed its deadline and the simulator was configured to raise.

    Attributes
    ----------
    task_name:
        Name of the task whose job missed its deadline.
    release_time:
        Release time of the offending job.
    deadline:
        Absolute deadline that was missed.
    time:
        Simulation time at which the miss was detected.
    """

    def __init__(self, task_name: str, release_time: float, deadline: float,
                 time: float):
        self.task_name = task_name
        self.release_time = release_time
        self.deadline = deadline
        self.time = time
        super().__init__(
            f"task {task_name!r} released at {release_time} missed its "
            f"deadline {deadline} (detected at t={time})")


class KernelError(ReproError):
    """Error in the kernel-emulation substrate (module layer, procfs...)."""


class AdmissionError(KernelError):
    """A task could not be admitted into the running system."""


class PowerNowError(KernelError):
    """Invalid use of the emulated PowerNow! frequency/voltage interface."""
