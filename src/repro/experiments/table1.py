"""Table 1 — power consumption of the HP N3350 laptop in four states.

Paper values: 13.5 W (screen on, disk spinning), 13.0 W (screen on),
7.1 W (all idle), 27.3 W (max CPU load).  Our component model is calibrated
to these by construction (the hardware substitution documented in
DESIGN.md), so this experiment both regenerates the table and verifies the
calibration identities, including the paper's observation that the CPU
subsystem accounts for nearly 60 % of max-load power.
"""

from __future__ import annotations

from repro.analysis.series import Series, SweepTable
from repro.experiments.common import ExperimentResult
from repro.measure.laptop import LaptopPowerModel, table1_rows

#: The paper's measured values, in the row order of table1_rows().
PAPER_WATTS = (13.5, 13.0, 7.1, 27.3)


def run(quick: bool = True, model: LaptopPowerModel = LaptopPowerModel()
        ) -> ExperimentResult:
    """Regenerate Table 1 from the laptop component model."""
    rows = table1_rows(model)
    result = ExperimentResult(
        experiment_id="table1",
        title="Laptop power consumption by state",
        description=__doc__ or "",
        quick=quick,
    )
    lines = ["| CPU | Screen | Disk | Power (model) | Power (paper) |",
             "|---|---|---|---|---|"]
    for (screen, disk, cpu, watts), paper in zip(rows, PAPER_WATTS):
        lines.append(
            f"| {cpu} | {screen} | {disk} | {watts:.1f} W | {paper:.1f} W |")
    result.text_blocks.append("\n".join(lines))

    for (screen, disk, cpu, watts), paper in zip(rows, PAPER_WATTS):
        result.check(
            f"{cpu}/{screen}/{disk} state reproduces {paper} W",
            abs(watts - paper) < 0.05)
    fraction = model.max_load_cpu_fraction
    result.check(
        "CPU subsystem ~60% of max-load system power "
        f"(got {fraction:.0%})", 0.55 <= fraction <= 0.80)

    table = SweepTable(title="Table 1 as series (state index vs watts)",
                       x_label="state", y_label="watts")
    table.add(Series("model", (0, 1, 2, 3),
                     tuple(w for _, _, _, w in rows)))
    table.add(Series("paper", (0, 1, 2, 3), PAPER_WATTS))
    result.tables.append(table)
    return result
