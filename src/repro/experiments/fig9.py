"""Fig. 9 — energy vs worst-case utilization for 5, 10 and 15 tasks.

Machine 0, perfect idle (idle level 0), tasks always consume their
worst-case cycles.  The paper's findings, which the shape checks encode:

* RT-DVS saves a lot of energy at mid-range utilizations;
* laEDF tracks the theoretical lower bound closely;
* the *number of tasks* has very little effect — neither the relative nor
  absolute positions of the curves shift significantly.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.sweep import SweepResult, utilization_sweep
from repro.catalog import panel_sweep_config
from repro.experiments.common import ExperimentResult

TASK_COUNTS: Tuple[int, ...] = (5, 10, 15)

#: Policies whose residency tables the report emits (all paper policies
#: are instrumented; emitting all 6 per panel would flood the report).
RESIDENCY_TABLE_POLICIES: Tuple[str, ...] = ("ccEDF", "laEDF")


def sweep_for(n_tasks: int, quick: bool, workers=1, executor=None,
              cache_dir=None, progress=False,
              steady_fast_path=False,
              engine="scalar") -> SweepResult:
    """The Fig. 9 sweep for one task count (catalog panel
    ``fig9/<n>-tasks``)."""
    return utilization_sweep(panel_sweep_config(
        "fig9", f"{n_tasks}-tasks", quick=quick, workers=workers,
        cache_dir=cache_dir, steady_fast_path=steady_fast_path,
        engine=engine), executor=executor, progress=progress)


def run(quick: bool = True, workers=1, executor=None, cache_dir=None,
        progress=False, steady_fast_path=False,
        engine="scalar") -> ExperimentResult:
    """Reproduce Fig. 9 (three panels, one per task count)."""
    result = ExperimentResult(
        experiment_id="fig9",
        title="Energy vs utilization for 5, 10, 15 tasks",
        description=__doc__ or "",
        quick=quick,
    )
    sweeps: Dict[int, SweepResult] = {}
    for n_tasks in TASK_COUNTS:
        sweep = sweep_for(n_tasks, quick, workers, executor, cache_dir,
                          progress, steady_fast_path, engine)
        sweeps[n_tasks] = sweep
        # The paper's Fig. 9 y-axis is *absolute* energy; include both
        # views (the shape checks run on the normalized one).
        raw = sweep.raw
        raw.title = f"Fig. 9 panel: {n_tasks} tasks (energy, raw)"
        result.tables.append(raw)
        table = sweep.normalized
        table.title = f"Fig. 9 panel: {n_tasks} tasks (normalized energy)"
        result.tables.append(table)
        if n_tasks == 10:
            for policy in RESIDENCY_TABLE_POLICIES:
                res = sweep.residency[policy]
                res.title = (f"Fig. 9 residency: {policy}, "
                             f"{n_tasks} tasks")
                result.residency_tables.append(res)

    mid = 0.5
    for n_tasks, sweep in sweeps.items():
        table = sweep.normalized
        la = table.get("laEDF").y_at(mid)
        cc = table.get("ccEDF").y_at(mid)
        st = table.get("staticEDF").y_at(mid)
        rm = table.get("staticRM").y_at(mid)
        bound = table.get("bound").y_at(mid)
        result.check(
            f"{n_tasks} tasks: RT-DVS saves energy at U=0.5 "
            f"(laEDF={la:.2f} < 1)", la < 0.9)
        result.check(
            f"{n_tasks} tasks: laEDF within 15% of the bound at U=0.5 "
            f"({la:.2f} vs {bound:.2f})", la <= bound * 1.15 + 0.02)
        result.check(
            f"{n_tasks} tasks: laEDF <= ccEDF <= staticEDF at U=0.5",
            la <= cc + 1e-6 and cc <= st + 1e-6)
        result.check(
            f"{n_tasks} tasks: staticEDF <= staticRM at U=0.5 "
            "(EDF scales deeper than RM)", st <= rm + 1e-6)
        # The bound is computed from the EDF reference's executed cycles;
        # jobs straddling the end of the run make slower policies' executed
        # totals smaller (they haven't caught up with the tail yet), so the
        # normalized curves may dip below the bound by a few percent at
        # quick scale.  The airtight per-run property (no run beats the
        # bound for its *own* cycles) is verified in
        # tests/integration/test_guarantees.py.
        bound_ys = table.get("bound").ys
        for label in ("laEDF", "ccEDF", "staticEDF", "staticRM", "ccRM"):
            ys = table.get(label).ys
            result.check(
                f"{n_tasks} tasks: bound never exceeds {label} "
                "(up to end-of-run tail effects)",
                all(b <= y + 0.05 for b, y in zip(bound_ys, ys)))

    # Residency conservation: at every utilization, each instrumented
    # policy's mean per-frequency fractions must sum to exactly 1 (each
    # run's histogram sums to its span by construction, so the means do
    # too — within float accumulation error).
    for policy, table in sweeps[10].residency.items():
        totals = [sum(series.ys[i] for series in table.series)
                  for i in range(len(table.xs))]
        worst = max(abs(t - 1.0) for t in totals)
        result.check(
            f"10 tasks: {policy} residency fractions sum to 1 at every "
            f"utilization (worst |err| = {worst:.2e})", worst < 1e-9)

    # Task-count invariance: compare laEDF curves across panels.
    la5 = sweeps[5].normalized.get("laEDF").ys
    la15 = sweeps[15].normalized.get("laEDF").ys
    max_gap = max(abs(a - b) for a, b in zip(la5, la15))
    result.check(
        f"number of tasks has little effect (max laEDF gap 5-vs-15 tasks = "
        f"{max_gap:.3f})", max_gap < 0.15)
    return result
