"""Fig. 13 — per-invocation demand uniformly distributed in [0, C_i].

8 tasks, machine 0, idle level 0.  The paper's observation: "Despite the
randomness introduced, the results appear identical to setting computation
to a constant one half of the specified value" — i.e. for the dynamic
mechanisms the *average* utilization determines relative energy, while the
static ones depend only on the worst case (and ccRM mostly does too).
"""

from __future__ import annotations

from repro.analysis.sweep import SweepResult, utilization_sweep
from repro.catalog import panel_sweep_config
from repro.experiments.common import ExperimentResult

N_TASKS = 8


def sweep_uniform(quick: bool, workers=1, executor=None, cache_dir=None,
                  progress=False, engine="scalar") -> SweepResult:
    """The Fig. 13 sweep (catalog panel ``fig13/uniform``)."""
    return utilization_sweep(panel_sweep_config(
        "fig13", "uniform", quick=quick, workers=workers,
        cache_dir=cache_dir, engine=engine),
        executor=executor, progress=progress)


def sweep_half(quick: bool, workers=1, executor=None, cache_dir=None,
               progress=False, engine="scalar") -> SweepResult:
    """The comparison sweep at constant c = 0.5, same task sets
    (catalog panel ``fig13/half``)."""
    return utilization_sweep(panel_sweep_config(
        "fig13", "half", quick=quick, workers=workers,
        cache_dir=cache_dir, engine=engine),
        executor=executor, progress=progress)


def run(quick: bool = True, workers=1, executor=None, cache_dir=None,
        progress=False, engine="scalar") -> ExperimentResult:
    """Reproduce Fig. 13 plus its comparison against c = 0.5."""
    result = ExperimentResult(
        experiment_id="fig13",
        title="Normalized energy with uniform demand distribution",
        description=__doc__ or "",
        quick=quick,
    )
    uniform = sweep_uniform(quick, workers, executor, cache_dir,
                            progress, engine)
    half = sweep_half(quick, workers, executor, cache_dir, progress,
                      engine)
    uniform.normalized.title = "Fig. 13: uniform demand (normalized energy)"
    half.normalized.title = "comparison: constant c = 0.5 (normalized energy)"
    result.tables.append(uniform.normalized)
    result.tables.append(half.normalized)

    for label in ("ccEDF", "laEDF"):
        uniform_ys = uniform.normalized.get(label).ys
        half_ys = half.normalized.get(label).ys
        gap = max(abs(a - b) for a, b in zip(uniform_ys, half_ys))
        result.check(
            f"{label}: uniform demand ~= constant 0.5 demand "
            f"(max gap {gap:.3f})", gap < 0.12)
    for label in ("staticEDF", "staticRM"):
        uniform_ys = uniform.normalized.get(label).ys
        half_ys = half.normalized.get(label).ys
        gap = max(abs(a - b) for a, b in zip(uniform_ys, half_ys))
        result.check(
            f"{label}: static curves depend only on the worst case "
            f"(max gap {gap:.4f}, tail effects only)", gap < 0.01)
    return result
