"""Shared experiment-result container and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.analysis.export import to_csv, to_markdown
from repro.analysis.series import SweepTable
from repro.analysis.textplot import line_chart


@dataclass(frozen=True)
class ShapeCheck:
    """A named assertion about the *shape* of a result.

    The reproduction does not claim to match the paper's absolute numbers
    (different substrate), but it does claim the qualitative relationships
    — who wins, roughly by how much, where curves cross.  Each experiment
    encodes those claims as shape checks, and EXPERIMENTS.md reports them.
    """

    description: str
    passed: bool

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.description}"


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    experiment_id: str
    title: str
    description: str
    tables: List[SweepTable] = field(default_factory=list)
    #: Per-policy frequency-residency tables (from instrumented sweeps,
    #: see :attr:`repro.analysis.sweep.SweepConfig.residency_policies`);
    #: rendered in their own section and exported alongside the data.
    residency_tables: List[SweepTable] = field(default_factory=list)
    text_blocks: List[str] = field(default_factory=list)
    checks: List[ShapeCheck] = field(default_factory=list)
    quick: bool = True

    @property
    def all_checks_pass(self) -> bool:
        return all(c.passed for c in self.checks)

    def check(self, description: str, passed: bool) -> None:
        """Record a shape check."""
        self.checks.append(ShapeCheck(description, bool(passed)))

    def render(self, charts: bool = True, width: int = 64) -> str:
        """Human-readable report: description, data tables, ASCII charts,
        shape checks."""
        scale = "quick" if self.quick else "full"
        lines = [f"## {self.experiment_id}: {self.title} ({scale} scale)",
                 "", self.description.strip(), ""]
        for block in self.text_blocks:
            lines.extend([block.rstrip(), ""])
        for table in self.tables:
            lines.append(f"### {table.title}")
            lines.append("")
            lines.append(to_markdown(table))
            lines.append("")
            if charts and len(table.xs) > 1:
                lines.append("```")
                lines.append(line_chart(table, width=width))
                lines.append("```")
                lines.append("")
        if self.residency_tables:
            lines.append("### Frequency residency")
            lines.append("")
            lines.append("Mean fraction of each run spent at every "
                         "operating-point frequency (collected with "
                         "`repro.obs.MetricsCollector`; rows sum to 1).")
            lines.append("")
            for table in self.residency_tables:
                lines.append(f"#### {table.title}")
                lines.append("")
                lines.append(to_markdown(table))
                lines.append("")
        if self.checks:
            lines.append("### Shape checks")
            lines.append("")
            for check in self.checks:
                lines.append(f"- {check}")
            lines.append("")
        return "\n".join(lines)

    def write_csvs(self, directory: str) -> List[str]:
        """Export every table as CSV into ``directory``; returns paths."""
        import os

        os.makedirs(directory, exist_ok=True)
        paths = []
        for index, table in enumerate(self.tables + self.residency_tables):
            slug = _slugify(table.title) or f"table{index}"
            path = os.path.join(directory,
                                f"{self.experiment_id}_{slug}.csv")
            to_csv(table, path)
            paths.append(path)
        return paths


def _slugify(text: str) -> str:
    out = []
    for ch in text.lower():
        if ch.isalnum():
            out.append(ch)
        elif out and out[-1] != "-":
            out.append("-")
    return "".join(out).strip("-")[:48]
