"""Fig. 12 — demands fixed at 90 %, 70 % and 50 % of the worst case.

8 tasks, machine 0, idle level 0.  Paper findings encoded as checks:

* the statically-scaled mechanisms do not move (they only look at the
  specified worst case);
* ccRM barely moves — it "does not do a very good job of adapting to tasks
  that use less than their specified worst-case computation times";
* ccEDF and laEDF improve substantially as the actual computation drops.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.sweep import SweepResult, utilization_sweep
from repro.catalog import panel_sweep_config
from repro.experiments.common import ExperimentResult

FRACTIONS: Tuple[float, ...] = (0.9, 0.7, 0.5)
N_TASKS = 8


def sweep_for(fraction: float, quick: bool, workers=1, executor=None,
              cache_dir=None, progress=False,
              steady_fast_path=False,
              engine="scalar") -> SweepResult:
    """The Fig. 12 sweep for one demand fraction (catalog panel
    ``fig12/c-<fraction>``)."""
    return utilization_sweep(panel_sweep_config(
        "fig12", f"c-{fraction}", quick=quick, workers=workers,
        cache_dir=cache_dir, steady_fast_path=steady_fast_path,
        engine=engine), executor=executor, progress=progress)


def run(quick: bool = True, workers=1, executor=None, cache_dir=None,
        progress=False, steady_fast_path=False,
        engine="scalar") -> ExperimentResult:
    """Reproduce Fig. 12 (three panels, one per fraction)."""
    result = ExperimentResult(
        experiment_id="fig12",
        title="Normalized energy with demand = 90/70/50 % of worst case",
        description=__doc__ or "",
        quick=quick,
    )
    sweeps: Dict[float, SweepResult] = {}
    for fraction in FRACTIONS:
        sweep = sweep_for(fraction, quick, workers, executor, cache_dir,
                          progress, steady_fast_path, engine)
        sweeps[fraction] = sweep
        table = sweep.normalized
        table.title = f"Fig. 12 panel: c = {fraction} (normalized energy)"
        result.tables.append(table)

    def curve_mean(fraction: float, label: str) -> float:
        ys = sweeps[fraction].normalized.get(label).ys
        return sum(ys) / len(ys)

    # Static mechanisms unchanged across fractions (same seed => same sets;
    # only end-of-run tail effects perturb the normalized ratio).
    for label in ("staticEDF", "staticRM"):
        spread = max(curve_mean(f, label) for f in FRACTIONS) \
            - min(curve_mean(f, label) for f in FRACTIONS)
        result.check(
            f"{label} unaffected by the actual computation "
            f"(mean-curve spread {spread:.4f})", spread < 0.01)

    # ccRM adapts poorly; ccEDF/laEDF adapt well.
    ccrm_gain = curve_mean(0.9, "ccRM") - curve_mean(0.5, "ccRM")
    ccedf_gain = curve_mean(0.9, "ccEDF") - curve_mean(0.5, "ccEDF")
    laedf_gain = curve_mean(0.9, "laEDF") - curve_mean(0.5, "laEDF")
    result.check(
        f"ccEDF improves a lot as c drops 0.9->0.5 (gain {ccedf_gain:.3f})",
        ccedf_gain > 0.08)
    result.check(
        f"laEDF improves a lot as c drops 0.9->0.5 (gain {laedf_gain:.3f})",
        laedf_gain > 0.08)
    result.check(
        f"ccRM adapts much less than ccEDF (ccRM gain {ccrm_gain:.3f} < "
        f"ccEDF gain {ccedf_gain:.3f})", ccrm_gain < ccedf_gain)
    return result
