"""Experiment drivers: one module per table/figure of the paper.

Each module exposes ``run(quick=True, **overrides) -> ExperimentResult``.
``quick=True`` (the default) uses laptop-scale parameters (fewer task sets,
shorter simulations); ``quick=False`` approaches the paper's scale
("averaged across hundreds of distinct task sets").

The mapping to the paper:

===========  =====================================================
module       reproduces
===========  =====================================================
table1       Table 1 — laptop power states
table4       Table 4 — normalized energy of the worked example
traces       Figs. 2, 3, 5, 7 — worked-example execution traces
fig9         Fig. 9 — energy vs U for 5/10/15 tasks
fig10        Fig. 10 — idle level 0.01 / 0.1 / 1.0
fig11        Fig. 11 — machines 0 / 1 / 2
fig12        Fig. 12 — demand = 90/70/50 % of worst case
fig13        Fig. 13 — uniform demand distribution
fig16        Fig. 16 — measured system power (laptop model)
fig17        Fig. 17 — simulated counterpart of Fig. 16
===========  =====================================================
"""

from repro.experiments.common import ExperimentResult, ShapeCheck
from repro.experiments import (  # noqa: F401  (re-exported driver modules)
    ext_battery,
    ext_future,
    ext_governors,
    ext_mp,
    ext_server,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig16,
    fig17,
    table1,
    table4,
    traces,
)
from repro.experiments.runall import ALL_EXPERIMENTS, run_experiment

__all__ = [
    "ExperimentResult",
    "ShapeCheck",
    "ALL_EXPERIMENTS",
    "run_experiment",
    "table1",
    "table4",
    "traces",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig16",
    "fig17",
]
