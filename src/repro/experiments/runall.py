"""Run every experiment and collect a combined report.

``python -m repro run-all [--full]`` uses this module; it is also what
regenerates the measured columns of EXPERIMENTS.md.

All sweep-driven experiments share **one** worker pool (a
:class:`~repro.analysis.executor.CellExecutor`) instead of spinning up a
pool per experiment, and can share one content-addressed cell cache — so
an interrupted ``--full`` run resumes where it stopped and figures with
identical sweeps (fig16/fig17) pay for their cells once.
"""

from __future__ import annotations

import inspect
import os
from typing import Callable, Dict, List, Optional

from repro.analysis.executor import CellExecutor, resolve_workers
from repro.experiments import (fig9, fig10, fig11, fig12, fig13, fig16,
                               fig17, table1, table4, traces)
from repro.experiments import (ext_battery, ext_future, ext_governors,
                               ext_mp, ext_server)
from repro.experiments.common import ExperimentResult

#: Experiment id -> run() callable, in paper order.  The ``ext-*`` entries
#: go beyond the paper (its stated future work); everything else
#: regenerates a specific table or figure.
ALL_EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "table4": table4.run,
    "traces": traces.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "ext-future": ext_future.run,
    "ext-battery": ext_battery.run,
    "ext-server": ext_server.run,
    "ext-governors": ext_governors.run,
    "ext-mp": ext_mp.run,
}


def _accepted_kwargs(runner: Callable[..., ExperimentResult],
                     available: Dict[str, object]) -> Dict[str, object]:
    """The subset of ``available`` that ``runner``'s signature accepts."""
    parameters = inspect.signature(runner).parameters
    return {name: value for name, value in available.items()
            if name in parameters}


def run_experiment(experiment_id: str, quick: bool = True,
                   **kwargs) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        runner = ALL_EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(ALL_EXPERIMENTS)}") from None
    return runner(quick=quick, **_accepted_kwargs(runner, kwargs))


def run_all(quick: bool = True, workers=1,
            output_dir: Optional[str] = None,
            cache_dir: Optional[str] = None,
            progress: bool = False,
            steady_fast_path: bool = False,
            engine: str = "scalar") -> List[ExperimentResult]:
    """Run every experiment; optionally write reports and CSVs.

    With an ``output_dir``, each experiment gets ``<id>.md`` plus CSVs for
    its tables, and a combined ``report.md`` covers the whole run.  With
    ``workers > 1`` (or ``"auto"``) one shared process pool serves every
    sweep; with a ``cache_dir`` cell results persist across runs.
    """
    n_workers = resolve_workers(workers)
    executor = CellExecutor(n_workers) if n_workers > 1 else None
    shared = {
        "workers": n_workers,
        "executor": executor,
        "cache_dir": cache_dir,
        "progress": progress,
        "steady_fast_path": steady_fast_path,
        "engine": engine,
    }
    results = []
    try:
        for experiment_id, runner in ALL_EXPERIMENTS.items():
            result = runner(quick=quick, **_accepted_kwargs(runner, shared))
            results.append(result)
            if output_dir is not None:
                os.makedirs(output_dir, exist_ok=True)
                report = os.path.join(output_dir, f"{experiment_id}.md")
                with open(report, "w", encoding="utf-8") as handle:
                    handle.write(result.render())
                result.write_csvs(output_dir)
    finally:
        if executor is not None:
            executor.shutdown()
    if output_dir is not None:
        from repro.analysis.report import write_combined_report
        write_combined_report(results,
                              os.path.join(output_dir, "report.md"))
    return results


def summary_table(results: List[ExperimentResult]) -> str:
    """One-line-per-experiment pass/fail summary."""
    lines = ["| experiment | title | shape checks |", "|---|---|---|"]
    for result in results:
        passed = sum(1 for c in result.checks if c.passed)
        total = len(result.checks)
        lines.append(f"| {result.experiment_id} | {result.title} | "
                     f"{passed}/{total} pass |")
    return "\n".join(lines)
