"""Fig. 11 — normalized energy on machines 0, 1 and 2.

8 tasks, idle level 0, worst-case demands.  Machine 1 adds a 0.83-relative
point to machine 0; machine 2 is a PowerNow!-style table with seven points
over a narrow (1.4-2.0 V) range.  Paper findings encoded as shape checks:

* with worst-case demands, ccEDF and staticEDF are identical;
* machine 2's many settings make staticEDF/ccEDF hug the theoretical
  bound over the whole range;
* machine 2's narrow voltage range caps the maximum savings below what
  machines 0/1 reach;
* on machine 2, ccEDF *outperforms* laEDF — fine-grained settings make
  laEDF defer too much and pay high-voltage catch-up later.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.sweep import SweepResult, utilization_sweep
from repro.catalog import panel_sweep_config
from repro.experiments.common import ExperimentResult
from repro.hw.machine import Machine, machine0, machine1, machine2

N_TASKS = 8

#: Policies instrumented with a MetricsCollector for residency tables.
RESIDENCY_POLICIES = ("ccEDF", "laEDF")


def sweep_for(machine: Machine, quick: bool, workers=1, executor=None,
              cache_dir=None, progress=False,
              steady_fast_path=False,
              engine="scalar") -> SweepResult:
    """The Fig. 11 sweep for one machine specification (catalog panel
    ``fig11/<machine name>``)."""
    return utilization_sweep(panel_sweep_config(
        "fig11", machine.name, quick=quick, workers=workers,
        cache_dir=cache_dir, steady_fast_path=steady_fast_path,
        engine=engine), executor=executor, progress=progress)


def run(quick: bool = True, workers=1, executor=None, cache_dir=None,
        progress=False, steady_fast_path=False,
        engine="scalar") -> ExperimentResult:
    """Reproduce Fig. 11 (three panels, one per machine)."""
    result = ExperimentResult(
        experiment_id="fig11",
        title="Normalized energy vs utilization on machines 0 / 1 / 2",
        description=__doc__ or "",
        quick=quick,
    )
    machines = {m.name: m for m in (machine0(), machine1(), machine2())}
    sweeps: Dict[str, SweepResult] = {}
    for name, machine in machines.items():
        sweep = sweep_for(machine, quick, workers, executor, cache_dir,
                          progress, steady_fast_path, engine)
        sweeps[name] = sweep
        table = sweep.normalized
        table.title = f"Fig. 11 panel: {name} (normalized energy)"
        result.tables.append(table)
        if name == "machine2":
            # Machine 2's seven fine-grained points are the interesting
            # residency story (how ccEDF spreads across them).
            for policy in RESIDENCY_POLICIES:
                res = sweep.residency[policy]
                res.title = f"Fig. 11 residency: {policy}, {name}"
                result.residency_tables.append(res)

    # Residency conservation on every machine and instrumented policy.
    for name, sweep in sweeps.items():
        for policy, table in sweep.residency.items():
            totals = [sum(series.ys[i] for series in table.series)
                      for i in range(len(table.xs))]
            worst = max(abs(t - 1.0) for t in totals)
            result.check(
                f"{name}: {policy} residency fractions sum to 1 "
                f"(worst |err| = {worst:.2e})", worst < 1e-9)

    for name, sweep in sweeps.items():
        cc = sweep.normalized.get("ccEDF").ys
        st = sweep.normalized.get("staticEDF").ys
        gap = max(abs(a - b) for a, b in zip(cc, st))
        result.check(
            f"{name}: ccEDF identical to staticEDF under worst-case "
            f"demands (max gap {gap:.4f})", gap < 1e-6)

    # Machine 2 hugs the bound.
    m2 = sweeps["machine2"].normalized
    hug = max(c - b for c, b in zip(m2.get("ccEDF").ys,
                                    m2.get("bound").ys))
    result.check(
        f"machine2: ccEDF within {hug:.3f} of the bound across the sweep",
        hug < 0.08)

    # Narrow voltage range caps maximum savings.
    low_u = 0.2
    best_m0 = sweeps["machine0"].normalized.get("laEDF").y_at(low_u)
    best_m2 = sweeps["machine2"].normalized.get("laEDF").y_at(low_u)
    result.check(
        "machine2's narrow voltage range saves less at low U than "
        f"machine0 ({best_m2:.2f} vs {best_m0:.2f})",
        best_m2 > best_m0)

    # ccEDF beats laEDF on machine 2 (mid-high utilizations).
    cc_hi = [m2.get("ccEDF").y_at(u) for u in (0.6, 0.7, 0.8)]
    la_hi = [m2.get("laEDF").y_at(u) for u in (0.6, 0.7, 0.8)]
    result.check(
        "machine2: ccEDF outperforms laEDF at mid-high utilization "
        f"(ccEDF mean {sum(cc_hi)/3:.3f} vs laEDF {sum(la_hi)/3:.3f})",
        sum(cc_hi) < sum(la_hi) + 1e-9)
    return result
