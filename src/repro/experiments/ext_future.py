"""Extension experiments beyond the paper (its stated future work).

Not a table or figure from the paper — these exercise the two extension
features this reproduction adds:

1. **Statistical deadline guarantees** (Sec. 6 future work): sweep the
   reservation percentile of :class:`~repro.core.statistical.StatisticalEDF`
   and chart the energy/miss-rate tradeoff against ccEDF.
2. **Clairvoyance gap decomposition**: bound <= oracle <= laEDF/ccEDF —
   how much of the remaining gap to the theoretical bound is "not knowing
   the future" vs frequency discreteness.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.series import Series, SweepTable
from repro.analysis.sweep import materialize_demand
from repro.core import make_policy
from repro.core.statistical import StatisticalEDF
from repro.experiments.common import ExperimentResult
from repro.hw.machine import machine0
from repro.model.demand import UniformFractionDemand
from repro.model.generator import TaskSetGenerator
from repro.sim.bound import minimum_energy_for_cycles
from repro.sim.engine import simulate

PERCENTILES: Tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0)


def _workloads(quick: bool):
    n_sets = 4 if quick else 20
    duration = 1500.0 if quick else 4000.0
    generator = TaskSetGenerator(n_tasks=6, utilization=0.75, seed=777)
    out = []
    for index in range(n_sets):
        ts = generator.generate()
        demand = materialize_demand(
            UniformFractionDemand(low=0.2, high=1.0, seed=1000 + index),
            ts, duration)
        out.append((ts, demand, duration))
    return out


def run(quick: bool = True) -> ExperimentResult:
    """Run both extension studies."""
    result = ExperimentResult(
        experiment_id="ext-future",
        title="Extensions: statistical guarantees & clairvoyance gap",
        description=__doc__ or "",
        quick=quick,
    )
    workloads = _workloads(quick)
    _statistical_tradeoff(result, workloads)
    _clairvoyance_gap(result, workloads)
    return result


def _statistical_tradeoff(result: ExperimentResult, workloads) -> None:
    energies: List[float] = []
    miss_rates: List[float] = []
    cc_reference = []
    for ts, demand, duration in workloads:
        cc = simulate(ts, machine0(), make_policy("ccEDF"),
                      demand=demand, duration=duration)
        cc_reference.append(cc.total_energy)
    for percentile in PERCENTILES:
        ratio_sum = 0.0
        misses = 0
        jobs = 0
        for (ts, demand, duration), cc_energy in zip(workloads,
                                                     cc_reference):
            run_result = simulate(
                ts, machine0(),
                StatisticalEDF(percentile=percentile, warmup=2),
                demand=demand, duration=duration, on_miss="drop")
            ratio_sum += run_result.total_energy / cc_energy
            misses += run_result.deadline_miss_count
            jobs += len(run_result.jobs)
        energies.append(ratio_sum / len(workloads))
        miss_rates.append(misses / jobs if jobs else 0.0)

    table = SweepTable(
        title="statistical EDF: energy (vs ccEDF) and miss rate vs "
              "reservation percentile",
        x_label="reservation percentile", y_label="ratio")
    table.add(Series("energy/ccEDF", PERCENTILES, tuple(energies)))
    table.add(Series("miss rate", PERCENTILES, tuple(miss_rates)))
    result.tables.append(table)

    result.check(
        f"energy grows with the percentile ({energies[0]:.3f} -> "
        f"{energies[-1]:.3f})", energies[0] <= energies[-1] + 1e-6)
    result.check(
        f"miss rate shrinks with the percentile ({miss_rates[0]:.4f} -> "
        f"{miss_rates[-1]:.4f})", miss_rates[-1] <= miss_rates[0] + 1e-9)
    result.check(
        "max-percentile reservations keep misses rare "
        f"({miss_rates[-1]:.4%})", miss_rates[-1] < 0.01)
    result.check(
        "aggressive percentile saves energy vs ccEDF "
        f"({energies[0]:.3f} < 1)", energies[0] < 1.0)


def _clairvoyance_gap(result: ExperimentResult, workloads) -> None:
    rows: Dict[str, float] = {"bound": 0.0, "oracleEDF": 0.0,
                              "laEDF": 0.0, "ccEDF": 0.0, "EDF": 0.0}
    for ts, demand, duration in workloads:
        edf = simulate(ts, machine0(), make_policy("EDF"),
                       demand=demand, duration=duration)
        rows["EDF"] += edf.total_energy
        rows["bound"] += minimum_energy_for_cycles(
            machine0(), edf.executed_cycles, duration)
        for name in ("oracleEDF", "laEDF", "ccEDF"):
            sim = simulate(ts, machine0(), make_policy(name),
                           demand=demand, duration=duration)
            rows[name] += sim.total_energy

    normalized = {k: v / rows["EDF"] for k, v in rows.items()}
    table = SweepTable(
        title="clairvoyance gap: normalized energy by knowledge level",
        x_label="index", y_label="energy (normalized to EDF)")
    order = ["bound", "oracleEDF", "laEDF", "ccEDF", "EDF"]
    table.add(Series("energy", tuple(range(len(order))),
                     tuple(normalized[k] for k in order)))
    result.text_blocks.append(
        "| level | normalized energy |\n|---|---|\n" + "\n".join(
            f"| {k} | {normalized[k]:.3f} |" for k in order))
    result.tables.append(table)

    result.check(
        "bound <= oracle <= ccEDF <= EDF",
        normalized["bound"] <= normalized["oracleEDF"] + 1e-6
        and normalized["oracleEDF"] <= normalized["ccEDF"] + 1e-6
        and normalized["ccEDF"] <= 1.0 + 1e-6)
    result.check(
        "the oracle closes a real part of ccEDF's gap to the bound "
        f"(oracle {normalized['oracleEDF']:.3f} vs ccEDF "
        f"{normalized['ccEDF']:.3f})",
        normalized["oracleEDF"] < normalized["ccEDF"] - 0.005)
