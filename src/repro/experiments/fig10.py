"""Fig. 10 — normalized energy with idle-level factors 0.01, 0.1 and 1.0.

8 tasks, machine 0, worst-case demands.  The idle level is the ratio of
energy consumed per halted cycle to energy per executed cycle.  Paper
findings encoded as shape checks:

* large RT-DVS savings persist even with a perfect halt (the baseline is
  shown "in the most favorable light");
* as the idle level rises toward 1, the *dynamic* algorithms gain relative
  to the static ones — ccEDF diverges below staticEDF — because the
  dynamic schemes sit at the lowest voltage while idling and the static
  ones idle at their selected point.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.sweep import SweepResult, utilization_sweep
from repro.catalog import panel_sweep_config
from repro.experiments.common import ExperimentResult

IDLE_LEVELS: Tuple[float, ...] = (0.01, 0.1, 1.0)
N_TASKS = 8


def sweep_for(idle_level: float, quick: bool, workers=1, executor=None,
              cache_dir=None, progress=False,
              steady_fast_path=False,
              engine="scalar") -> SweepResult:
    """The Fig. 10 sweep for one idle level (catalog panel
    ``fig10/idle-<level>``)."""
    return utilization_sweep(panel_sweep_config(
        "fig10", f"idle-{idle_level}", quick=quick, workers=workers,
        cache_dir=cache_dir, steady_fast_path=steady_fast_path,
        engine=engine), executor=executor, progress=progress)


def run(quick: bool = True, workers=1, executor=None, cache_dir=None,
        progress=False, steady_fast_path=False,
        engine="scalar") -> ExperimentResult:
    """Reproduce Fig. 10 (three panels, one per idle level)."""
    result = ExperimentResult(
        experiment_id="fig10",
        title="Normalized energy vs utilization at idle levels "
              "0.01 / 0.1 / 1.0",
        description=__doc__ or "",
        quick=quick,
    )
    sweeps: Dict[float, SweepResult] = {}
    for idle in IDLE_LEVELS:
        sweep = sweep_for(idle, quick, workers, executor, cache_dir,
                          progress, steady_fast_path, engine)
        sweeps[idle] = sweep
        table = sweep.normalized
        table.title = f"Fig. 10 panel: idle level {idle} (normalized)"
        result.tables.append(table)

    mid = 0.5
    for idle, sweep in sweeps.items():
        la = sweep.normalized.get("laEDF").y_at(mid)
        result.check(
            f"idle={idle}: large savings remain at U=0.5 (laEDF={la:.2f})",
            la < 0.75)

    def cc_vs_static_gap(idle: float) -> float:
        """How far ccEDF sits below staticEDF, averaged over the sweep."""
        cc = sweeps[idle].normalized.get("ccEDF").ys
        st = sweeps[idle].normalized.get("staticEDF").ys
        return sum(s - c for s, c in zip(st, cc)) / len(cc)

    gap_small = cc_vs_static_gap(0.01)
    gap_large = cc_vs_static_gap(1.0)
    result.check(
        "dynamic algorithms benefit more from costly idle: ccEDF's margin "
        f"below staticEDF grows with idle level ({gap_small:.3f} -> "
        f"{gap_large:.3f})", gap_large > gap_small)
    result.check(
        "with idle level 1.0 ccEDF clearly diverges below staticEDF "
        f"(mean gap {gap_large:.3f})", gap_large > 0.02)
    return result
