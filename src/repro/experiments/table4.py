"""Table 4 — normalized energy for the worked-example traces.

The paper runs the Table 2 task set (C = 3, 3, 1 ms; P = 8, 10, 14 ms) for
16 ms with the Table 3 actual execution times (invocation 1: 2, 1, 1 ms;
invocation 2: 1, 1, 1 ms) on machine 0 ((0.5, 3 V), (0.75, 4 V),
(1.0, 5 V)), with idle cycles free, and reports:

=====================  ===========
RT-DVS method          energy used
=====================  ===========
none (plain EDF)       1.00
statically-scaled RM   1.00
statically-scaled EDF  0.64
cycle-conserving EDF   0.52
cycle-conserving RM    0.71
look-ahead EDF         0.44
=====================  ===========

This experiment reproduces those numbers *exactly* (ccRM's 0.714 rounds to
0.71), which pins down every algorithm's semantics end to end.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.series import Series, SweepTable
from repro.core import PAPER_POLICIES, make_policy
from repro.experiments.common import ExperimentResult
from repro.hw.machine import machine0
from repro.model.demand import paper_example_trace
from repro.model.task import example_taskset
from repro.sim.engine import simulate
from repro.sim.bound import theoretical_bound

#: The paper's Table 4, keyed by our policy labels.
PAPER_NORMALIZED: Dict[str, float] = {
    "EDF": 1.00,
    "staticRM": 1.00,
    "staticEDF": 0.64,
    "ccEDF": 0.52,
    "ccRM": 0.71,
    "laEDF": 0.44,
}

#: Simulation horizon ("for the first 16 ms").
DURATION = 16.0


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce Table 4 exactly."""
    taskset = example_taskset()
    machine = machine0()
    result = ExperimentResult(
        experiment_id="table4",
        title="Normalized energy, worked example (Table 2/3 task set)",
        description=__doc__ or "",
        quick=quick,
    )
    energies: Dict[str, float] = {}
    reference = None
    for name in PAPER_POLICIES:
        sim = simulate(taskset, machine, make_policy(name),
                       demand=paper_example_trace(), duration=DURATION)
        energies[name] = sim.total_energy
        if reference is None:
            reference = sim
    assert reference is not None
    normalized = {name: e / energies["EDF"] for name, e in energies.items()}
    bound = theoretical_bound(reference, machine) / energies["EDF"]

    lines = ["| method | normalized (ours) | normalized (paper) | raw |",
             "|---|---|---|---|"]
    for name in PAPER_POLICIES:
        lines.append(f"| {name} | {normalized[name]:.3f} | "
                     f"{PAPER_NORMALIZED[name]:.2f} | "
                     f"{energies[name]:.1f} |")
    lines.append(f"| bound | {bound:.3f} | — | "
                 f"{bound * energies['EDF']:.1f} |")
    result.text_blocks.append("\n".join(lines))

    for name in PAPER_POLICIES:
        result.check(
            f"{name} normalized energy {normalized[name]:.3f} rounds to "
            f"the paper's {PAPER_NORMALIZED[name]:.2f}",
            abs(round(normalized[name], 2) - PAPER_NORMALIZED[name]) < 1e-9)
    result.check("lower bound does not exceed any policy",
                 all(bound <= normalized[n] + 1e-9 for n in PAPER_POLICIES))

    table = SweepTable(title="Table 4 (policy index vs normalized energy)",
                       x_label="policy index",
                       y_label="energy normalized to plain EDF")
    xs = tuple(range(len(PAPER_POLICIES)))
    table.add(Series("ours", xs,
                     tuple(normalized[n] for n in PAPER_POLICIES)))
    table.add(Series("paper", xs,
                     tuple(PAPER_NORMALIZED[n] for n in PAPER_POLICIES)))
    result.tables.append(table)
    return result
