"""Figs. 2, 3, 5 and 7 — worked-example execution traces.

All four figures use the Table 2 task set on machine 0.  Fig. 2 shows the
worst-case traces under the two static policies (and that RM *cannot* be
statically scaled to 0.75 — T3 would miss at 14 ms); Figs. 3, 5 and 7 show
ccEDF, ccRM and laEDF with the Table 3 actual execution times.  The key
events asserted here (frequency steps and completion times) are the ones
annotated in the paper's figures.
"""

from __future__ import annotations

from typing import Optional

from repro.core import make_policy
from repro.core.fixed import FixedSpeed
from repro.experiments.common import ExperimentResult
from repro.hw.machine import machine0
from repro.model.demand import paper_example_trace
from repro.model.task import example_taskset
from repro.sim.engine import simulate
from repro.sim.results import SimResult
from repro.sim.trace import render_trace

DURATION = 16.0


def _run(policy, demand) -> SimResult:
    return simulate(example_taskset(), machine0(), policy, demand=demand,
                    duration=DURATION, record_trace=True, on_miss="drop")


def _completion(result: SimResult, task_name: str, invocation: int
                ) -> Optional[float]:
    for job in result.jobs:
        if job.task.name == task_name and job.index == invocation:
            return job.completion_time
    return None


def _approx(a: Optional[float], b: float, tolerance: float = 1e-6) -> bool:
    return a is not None and abs(a - b) <= tolerance


def fig2(result: ExperimentResult) -> None:
    """Static scaling: EDF runs at 0.75, RM needs 1.0, RM@0.75 misses."""
    static_edf = _run(make_policy("staticEDF"), demand="worst")
    static_rm = _run(make_policy("staticRM"), demand="worst")
    rm_075 = _run(FixedSpeed(0.75, scheduler="rm"), demand="worst")

    result.text_blocks.append(
        "Fig. 2 — statically-scaled EDF (worst case):\n```\n"
        + render_trace(static_edf.trace, end=DURATION) + "\n```")
    result.text_blocks.append(
        "Fig. 2 — statically-scaled RM (worst case):\n```\n"
        + render_trace(static_rm.trace, end=DURATION) + "\n```")

    result.check("staticEDF selects frequency 0.75 (U=0.746 <= 0.75)",
                 static_edf.trace.segments[0].point.frequency == 0.75)
    result.check("staticRM must stay at 1.0 (RM test fails at 0.75)",
                 static_rm.trace.segments[0].point.frequency == 1.0)
    t3_misses = [m for m in rm_075.misses if m.task_name == "T3"]
    result.check("forced RM @ 0.75: T3 misses its 14 ms deadline",
                 any(abs(m.deadline - 14.0) < 1e-9 for m in t3_misses))
    result.check("staticEDF meets all deadlines",
                 static_edf.met_all_deadlines)
    result.check("staticRM meets all deadlines", static_rm.met_all_deadlines)


def fig3(result: ExperimentResult) -> None:
    """ccEDF: frequency 0.75 until T2 completes (t=4), then 0.5."""
    run = _run(make_policy("ccEDF"), demand=paper_example_trace())
    result.text_blocks.append(
        "Fig. 3 — cycle-conserving EDF (Table 3 demands):\n```\n"
        + render_trace(run.trace, end=DURATION) + "\n```")
    profile = run.trace.frequency_profile()
    result.check("ccEDF starts at 0.75", profile[0] == (0.0, 0.75))
    result.check("ccEDF drops to 0.5 when T2 completes at t=4",
                 (4.0, 0.5) in [(round(t, 6), f) for t, f in profile])
    result.check("T1 completes at 8/3 ms",
                 _approx(_completion(run, "T1", 0), 8.0 / 3.0))
    result.check("T2 completes at 4 ms",
                 _approx(_completion(run, "T2", 0), 4.0))
    result.check("T3 completes at 6 ms",
                 _approx(_completion(run, "T3", 0), 6.0))
    result.check("T2 second invocation runs at 0.5 "
                 "(U=0.496 <= 0.5) and completes at 12 ms",
                 _approx(_completion(run, "T2", 1), 12.0))
    result.check("no deadline misses", run.met_all_deadlines)


def fig5(result: ExperimentResult) -> None:
    """ccRM: 1.0 -> 0.75 at t=2 -> 0.5 at t=10/3, per the paper's frames."""
    run = _run(make_policy("ccRM"), demand=paper_example_trace())
    result.text_blocks.append(
        "Fig. 5 — cycle-conserving RM (Table 3 demands):\n```\n"
        + render_trace(run.trace, end=DURATION) + "\n```")
    profile = [(round(t, 6), f) for t, f in run.trace.frequency_profile()]
    result.check("ccRM starts at 1.0 (7 cycles over 8 ms rounds up)",
                 profile[0] == (0.0, 1.0))
    result.check("ccRM drops to 0.75 when T1 completes at t=2",
                 (2.0, 0.75) in profile)
    result.check("ccRM drops to 0.5 when T2 completes at t=10/3",
                 any(abs(t - 10.0 / 3.0) < 1e-6 and f == 0.5
                     for t, f in profile))
    result.check("T1 completes at 2 ms",
                 _approx(_completion(run, "T1", 0), 2.0))
    result.check("T2 completes at 10/3 ms",
                 _approx(_completion(run, "T2", 0), 10.0 / 3.0))
    result.check("T3 completes at 16/3 ms",
                 _approx(_completion(run, "T3", 0), 16.0 / 3.0))
    result.check("no deadline misses", run.met_all_deadlines)


def fig7(result: ExperimentResult) -> None:
    """laEDF: 0.75 until T1 completes (t=8/3), 0.5 for everything else."""
    run = _run(make_policy("laEDF"), demand=paper_example_trace())
    result.text_blocks.append(
        "Fig. 7 — look-ahead EDF (Table 3 demands):\n```\n"
        + render_trace(run.trace, end=DURATION) + "\n```")
    profile = [(round(t, 6), f) for t, f in run.trace.frequency_profile()]
    result.check("laEDF starts at 0.75 (defer() gives 5.08/8 = 0.64 -> "
                 "round up)", profile[0] == (0.0, 0.75))
    result.check("laEDF drops to 0.5 when T1 completes at t=8/3",
                 any(abs(t - 8.0 / 3.0) < 1e-6 and f == 0.5
                     for t, f in profile))
    result.check("T2 completes at 14/3 ms (frame d of Fig. 7)",
                 _approx(_completion(run, "T2", 0), 14.0 / 3.0))
    result.check("T3 completes at 20/3 ms",
                 _approx(_completion(run, "T3", 0), 20.0 / 3.0))
    result.check("everything after T1's first completion runs at 0.5",
                 all(f == 0.5 for t, f in profile if t > 8.0 / 3.0 + 1e-6))
    result.check("T3 second invocation completes exactly at 16 ms",
                 _approx(_completion(run, "T3", 1), 16.0))
    result.check("no deadline misses", run.met_all_deadlines)


def run(quick: bool = True) -> ExperimentResult:
    """Reproduce all four worked-example trace figures."""
    result = ExperimentResult(
        experiment_id="traces",
        title="Worked-example execution traces (Figs. 2, 3, 5, 7)",
        description=__doc__ or "",
        quick=quick,
    )
    fig2(result)
    fig3(result)
    fig5(result)
    fig7(result)
    return result
