"""Extension experiment: interval governors vs RT-DVS, head to head.

Quantifies the paper's motivating argument (Sec. 2.2) on the camcorder
workload: the classic interval schedulers (PAST / FLAT / AGED_AVERAGES
[7]) save energy but miss hard deadlines, while every RT-DVS policy keeps
the guarantee — often at comparable or better energy, because the
cycle-conserving and look-ahead schemes exploit the same slack *with*
schedulability awareness.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.series import Series, SweepTable
from repro.core import make_policy
from repro.experiments.common import ExperimentResult
from repro.hw.machine import machine0
from repro.sim.engine import simulate
from repro.workloads import camcorder, camcorder_demand

GOVERNORS: Tuple[str, ...] = ("gov-past", "gov-flat", "gov-aged")
RT_POLICIES: Tuple[str, ...] = ("staticEDF", "ccEDF", "laEDF")


def run(quick: bool = True) -> ExperimentResult:
    """Energy and deadline misses, governors vs RT-DVS."""
    result = ExperimentResult(
        experiment_id="ext-governors",
        title="Extension: interval governors vs RT-DVS (camcorder)",
        description=__doc__ or "",
        quick=quick,
    )
    taskset = camcorder()
    duration = 2000.0 if quick else 10000.0

    rows: List[Tuple[str, float, int, int]] = []
    reference = simulate(taskset, machine0(), make_policy("EDF"),
                         demand=camcorder_demand(), duration=duration)
    rows.append(("EDF", 1.0, 0, len(reference.jobs)))
    for name in GOVERNORS + RT_POLICIES:
        kwargs = ({"interval": 25.0, "target_utilization": 0.85}
                  if name.startswith("gov-") else {})
        sim = simulate(taskset, machine0(), make_policy(name, **kwargs),
                       demand=camcorder_demand(), duration=duration,
                       on_miss="drop")
        rows.append((name, sim.total_energy / reference.total_energy,
                     sim.deadline_miss_count, len(sim.jobs)))

    lines = ["| policy | energy (vs EDF) | deadline misses | jobs |",
             "|---|---|---|---|"]
    for name, energy, misses, jobs in rows:
        lines.append(f"| {name} | {energy:.3f} | {misses} | {jobs} |")
    result.text_blocks.append("\n".join(lines))

    table = SweepTable(title="governors vs RT-DVS (policy index)",
                       x_label="policy index", y_label="value")
    xs = tuple(range(len(rows)))
    table.add(Series("energy", xs, tuple(r[1] for r in rows)))
    table.add(Series("misses", xs, tuple(float(r[2]) for r in rows)))
    result.tables.append(table)

    by_name = {name: (energy, misses) for name, energy, misses, _ in rows}
    for name in GOVERNORS:
        result.check(
            f"{name} misses deadlines on the camcorder workload "
            f"({by_name[name][1]} misses)", by_name[name][1] > 0)
    for name in RT_POLICIES:
        result.check(f"{name} never misses", by_name[name][1] == 0)
    result.check(
        "RT-DVS (laEDF) saves real energy despite the guarantee "
        f"({by_name['laEDF'][0]:.2f} of EDF)", by_name["laEDF"][0] < 0.8)
    best_governor = min(by_name[g][0] for g in GOVERNORS)
    result.check(
        "laEDF is within 25% of the best (guarantee-free) governor's "
        f"energy ({by_name['laEDF'][0]:.3f} vs {best_governor:.3f})",
        by_name["laEDF"][0] <= best_governor * 1.25)
    return result
