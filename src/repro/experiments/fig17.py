"""Fig. 17 — simulation with parameters identical to the Fig. 16 setup.

Same 5-task, c = 0.9, two-voltage K6-2+ specification, but reporting only
the processor's energy, in arbitrary units — the paper's validation that
"except for the addition of constant overheads in the actual measurements,
the results are nearly identical".

The decisive shape check here *is* that claim: the Fig. 16 system-power
curves minus the constant board overhead must coincide (up to calibration
scale) with these CPU-only curves.
"""

from __future__ import annotations

from repro.analysis.series import SweepTable
from repro.analysis.sweep import SweepResult, utilization_sweep
from repro.catalog import panel_sweep_config
from repro.experiments.common import ExperimentResult
from repro.experiments.fig16 import DEMAND, N_TASKS, POLICIES, sweep_platform
from repro.hw.machine import k6_2_plus
from repro.measure.laptop import LaptopPowerModel


def sweep_simulated(quick: bool, workers=1, executor=None, cache_dir=None,
                    progress=False, engine="scalar") -> SweepResult:
    """The pure-simulation sweep, unit energy scale (catalog panel
    ``fig17/k6-simulated``; shares fig16's seed, so the task sets and
    demands are identical)."""
    return utilization_sweep(panel_sweep_config(
        "fig17", "k6-simulated", quick=quick, workers=workers,
        cache_dir=cache_dir, engine=engine),
        executor=executor, progress=progress)


def run(quick: bool = True, workers=1, executor=None, cache_dir=None,
        progress=False, engine="scalar") -> ExperimentResult:
    """Reproduce Fig. 17 and validate it against the Fig. 16 emulation."""
    result = ExperimentResult(
        experiment_id="fig17",
        title="Simulated CPU power vs utilization (Fig. 16's parameters)",
        description=__doc__ or "",
        quick=quick,
    )
    sim = sweep_simulated(quick, workers, executor, cache_dir, progress,
                          engine)
    duration = sim.config.duration
    table = SweepTable(
        title="Fig. 17: simulated CPU power (arbitrary units)",
        x_label="worst-case utilization",
        y_label="power (arbitrary unit)")
    for label in POLICIES:
        table.add(sim.raw.get(label).scaled(1.0 / duration))
    result.tables.append(table)

    # The validation claim: measured == simulated + constant overhead.
    laptop = LaptopPowerModel()
    # Identical parameters to fig16's sweep — with a shared cache this
    # re-validation costs zero simulations after fig16 has run.
    measured = sweep_platform(quick, workers, laptop, executor, cache_dir,
                              progress, engine)
    scale = laptop.cycle_energy_scale_for(k6_2_plus())
    worst_gap = 0.0
    for label in POLICIES:
        measured_watts = [y / duration for y in measured.raw.get(label).ys]
        simulated_watts = [y * scale for y in table.get(label).ys]
        for mw, sw in zip(measured_watts, simulated_watts):
            worst_gap = max(worst_gap, abs(mw - sw))
    result.check(
        "measured (minus overhead) and simulated curves are identical "
        f"(max gap {worst_gap:.3g} W)", worst_gap < 1e-6)

    la = table.get("laEDF")
    edf = table.get("EDF")
    result.check(
        "CPU-only relative savings exceed the whole-system savings "
        "(no irreducible overhead here)",
        1.0 - la.y_at(0.6) / edf.y_at(0.6) > 0.25)
    return result
