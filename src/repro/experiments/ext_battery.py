"""Extension experiment: battery life across workloads and policies.

The paper motivates RT-DVS with battery life but reports power; this
experiment closes the loop using :class:`~repro.hw.battery.Battery`: for
each named embedded workload (camcorder, cellphone, medical monitor,
avionics, videophone) it estimates how much longer a battery lasts under
each RT-DVS policy than under plain EDF — with the whole-system constant
overhead included, and optionally a Peukert discharge exponent that makes
savings compound.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.series import Series, SweepTable
from repro.core import make_policy
from repro.errors import SchedulabilityError
from repro.experiments.common import ExperimentResult
from repro.hw.battery import Battery
from repro.hw.energy import EnergyModel
from repro.hw.machine import k6_2_plus
from repro.measure.laptop import LaptopPowerModel
from repro.sim.engine import simulate
from repro.workloads import WORKLOADS, load

POLICIES = ("EDF", "staticEDF", "ccEDF", "laEDF")


def run(quick: bool = True) -> ExperimentResult:
    """Battery-life extension factors per workload and policy."""
    result = ExperimentResult(
        experiment_id="ext-battery",
        title="Extension: battery-life gains per workload",
        description=__doc__ or "",
        quick=quick,
    )
    laptop = LaptopPowerModel()
    machine = k6_2_plus()
    energy_model = EnergyModel(
        cycle_energy_scale=laptop.cycle_energy_scale_for(machine))
    battery = Battery(capacity=40.0 * 3600.0,  # ~40 Wh in W·s (ms-scaled)
                      nominal_power=15.0, peukert=1.1)

    names = sorted(WORKLOADS)
    factors: Dict[str, List[float]] = {p: [] for p in POLICIES}
    for workload_name in names:
        taskset, demand = load(workload_name)
        duration = (20.0 if quick else 60.0) * max(t.period
                                                   for t in taskset)
        baseline = None
        for policy_name in POLICIES:
            demand.reset()
            try:
                sim = simulate(taskset, machine, make_policy(policy_name),
                               demand=demand, duration=duration,
                               energy_model=energy_model)
            except SchedulabilityError:
                factors[policy_name].append(float("nan"))
                continue
            if baseline is None:
                baseline = sim
            factor = battery.extension_factor(
                baseline, sim, overhead_power=laptop.board_base)
            factors[policy_name].append(factor)

    table = SweepTable(
        title="battery-life extension vs plain EDF (workload index)",
        x_label="workload index", y_label="extension factor")
    xs = tuple(range(len(names)))
    for policy_name in POLICIES:
        table.add(Series(policy_name, xs, tuple(factors[policy_name])))
    result.tables.append(table)
    result.text_blocks.append(
        "workload order: " + ", ".join(
            f"{i}={n}" for i, n in enumerate(names)))

    for index, workload_name in enumerate(names):
        la = factors["laEDF"][index]
        result.check(
            f"{workload_name}: laEDF extends battery life "
            f"({la:.2f}x, system overhead included)", la > 1.05)
    for policy_name in ("staticEDF", "ccEDF", "laEDF"):
        ok = all(f >= 1.0 - 1e-9 for f in factors[policy_name]
                 if f == f)  # skip NaNs
        result.check(
            f"{policy_name} never shortens battery life", ok)
    return result
