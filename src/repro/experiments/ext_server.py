"""Extension experiment: sizing a polling server under RT-DVS.

The paper's footnote 1 delegates aperiodic work to a periodic server but
never evaluates one.  This experiment does: a fixed periodic base load
plus a Poisson-ish aperiodic stream, with the polling server's reserved
utilization swept from small to large.  It charts the classic tradeoff —
bigger servers cut aperiodic response times — and a point the paper's
machinery makes almost free: under cycle-conserving EDF an *oversized*
server costs little energy, because unused budget is reclaimed at each
release instead of burning reserved capacity, while static scaling pays
for the full reservation forever.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.analysis.series import Series, SweepTable
from repro.aperiodic import AperiodicRequest, PollingServer
from repro.core import make_policy
from repro.experiments.common import ExperimentResult
from repro.hw.machine import machine0
from repro.model.task import Task, TaskSet
from repro.sim.engine import simulate

SERVER_UTILIZATIONS: Tuple[float, ...] = (0.05, 0.10, 0.15, 0.20, 0.30)
SERVER_PERIOD = 15.0


def _requests(duration: float, seed: int = 3,
              mean_gap: float = 40.0) -> List[AperiodicRequest]:
    rng = random.Random(seed)
    out = []
    t = 0.0
    while True:
        t += rng.expovariate(1.0 / mean_gap)
        if t >= duration:
            return out
        out.append(AperiodicRequest(arrival=t,
                                    cycles=rng.uniform(0.5, 2.0)))


def run(quick: bool = True) -> ExperimentResult:
    """Sweep the server reservation; chart response time and energy."""
    result = ExperimentResult(
        experiment_id="ext-server",
        title="Extension: polling-server sizing under RT-DVS",
        description=__doc__ or "",
        quick=quick,
    )
    duration = 2000.0 if quick else 8000.0
    periodic = [Task(3, 10, name="control"), Task(8, 40, name="video")]
    requests = _requests(duration)

    responses: List[float] = []
    cc_energy: List[float] = []
    static_energy: List[float] = []
    for reservation in SERVER_UTILIZATIONS:
        server = PollingServer(budget=reservation * SERVER_PERIOD,
                               period=SERVER_PERIOD, name="server")
        taskset = TaskSet(periodic + [server.task])
        cc = simulate(taskset, machine0(), make_policy("ccEDF"),
                      demand=server.demand_model(requests, base=0.9),
                      duration=duration, record_trace=True)
        assert cc.met_all_deadlines
        stats = server.response_stats(cc, requests)
        responses.append(stats.mean_response)
        cc_energy.append(cc.total_energy)
        static = simulate(taskset, machine0(), make_policy("staticEDF"),
                          demand=server.demand_model(requests, base=0.9),
                          duration=duration)
        static_energy.append(static.total_energy)

    table = SweepTable(
        title="aperiodic mean response vs server reservation (ccEDF)",
        x_label="server utilization", y_label="mean response (ms)")
    table.add(Series("mean response", SERVER_UTILIZATIONS,
                     tuple(responses)))
    result.tables.append(table)

    energy_table = SweepTable(
        title="energy vs server reservation",
        x_label="server utilization", y_label="energy")
    energy_table.add(Series("ccEDF", SERVER_UTILIZATIONS,
                            tuple(cc_energy)))
    energy_table.add(Series("staticEDF", SERVER_UTILIZATIONS,
                            tuple(static_energy)))
    result.tables.append(energy_table)

    result.check(
        f"bigger servers cut response times ({responses[0]:.1f} -> "
        f"{responses[-1]:.1f} ms)", responses[-1] < responses[0])
    cc_growth = cc_energy[-1] / cc_energy[0]
    static_growth = static_energy[-1] / static_energy[0]
    result.check(
        "ccEDF reclaims oversized reservations: its energy grows less "
        f"with server size than staticEDF's ({cc_growth:.3f}x vs "
        f"{static_growth:.3f}x)", cc_growth < static_growth)
    result.check(
        "ccEDF never exceeds staticEDF energy at any server size",
        all(c <= s + 1e-6 for c, s in zip(cc_energy, static_energy)))
    return result
