"""Fig. 16 — "measured" system power on the (emulated) laptop platform.

5 tasks always consuming 90 % of their worst case, on the K6-2+ machine
(two wired voltage levels), display backlight off.  The y axis is *system*
watts: the CPU's f·V² power (calibrated so full-speed execution draws the
Table 1 CPU delta of 20.2 W) plus the constant 7.1 W board overhead — the
"constant, irreducible power drain" the paper calls out.

Shape checks encode the paper's headline: RT-DVS saves 20-40 % of total
system power at mid-to-high utilizations, even including the irreducible
overhead, and the simulation (Fig. 17) differs from the measurement only by
that constant.
"""

from __future__ import annotations

from typing import Tuple

from dataclasses import replace

from repro.analysis.series import SweepTable
from repro.analysis.sweep import SweepResult, utilization_sweep
from repro.catalog import panel_sweep_config
from repro.experiments.common import ExperimentResult
from repro.hw.machine import k6_2_plus
from repro.measure.laptop import LaptopPowerModel

#: The policies shown in the paper's Figs. 16/17.
POLICIES: Tuple[str, ...] = ("EDF", "staticRM", "ccEDF", "laEDF")
N_TASKS = 5
DEMAND = 0.9


def sweep_platform(quick: bool, workers=1,
                   laptop: LaptopPowerModel = LaptopPowerModel(),
                   executor=None, cache_dir=None,
                   progress=False, engine="scalar") -> SweepResult:
    """The underlying sweep, with energy calibrated to CPU watts
    (catalog panel ``fig16/k6-laptop``).

    The catalog's ``"k6-laptop"`` named scale is the default
    :class:`LaptopPowerModel` calibration; a custom ``laptop`` model
    overrides the scale (the legacy extension point) and is otherwise
    identical.
    """
    config = panel_sweep_config(
        "fig16", "k6-laptop", quick=quick, workers=workers,
        cache_dir=cache_dir, engine=engine)
    config = replace(config, cycle_energy_scale=laptop.
                     cycle_energy_scale_for(config.machine))
    return utilization_sweep(config, executor=executor,
                             progress=progress)


def power_table(sweep: SweepResult, laptop: LaptopPowerModel,
                include_overhead: bool) -> SweepTable:
    """Convert sweep energies to average power (watts), optionally adding
    the constant platform overhead."""
    duration = sweep.config.duration
    overhead = laptop.board_base if include_overhead else 0.0
    where = "system (measured)" if include_overhead else "CPU only"
    table = SweepTable(
        title=f"Fig. 16 power vs utilization — {where}",
        x_label="worst-case utilization", y_label="power (W)")
    for label in POLICIES:
        raw = sweep.raw.get(label)
        table.add(raw.scaled(1.0 / duration).shifted(overhead))
    return table


def run(quick: bool = True, workers=1, executor=None, cache_dir=None,
        progress=False, engine="scalar") -> ExperimentResult:
    """Reproduce Fig. 16 (system power on the laptop model)."""
    laptop = LaptopPowerModel()
    result = ExperimentResult(
        experiment_id="fig16",
        title="Measured system power vs utilization (laptop emulation)",
        description=__doc__ or "",
        quick=quick,
    )
    sweep = sweep_platform(quick, workers, laptop, executor, cache_dir,
                           progress, engine)
    table = power_table(sweep, laptop, include_overhead=True)
    result.tables.append(table)

    for u in (0.6, 0.8):
        edf = table.get("EDF").y_at(u)
        la = table.get("laEDF").y_at(u)
        saving = 1.0 - la / edf
        result.check(
            f"laEDF saves 20-40% of total system power at U={u} "
            f"(got {saving:.0%})", 0.15 <= saving <= 0.50)
    cc = table.get("ccEDF")
    la = table.get("laEDF")
    edf = table.get("EDF")
    result.check(
        "every DVS policy stays below plain EDF at every utilization",
        all(c <= e + 1e-9 and l <= e + 1e-9
            for c, l, e in zip(cc.ys, la.ys, edf.ys)))
    result.check(
        "power approaches the EDF level as utilization -> 1",
        abs(la.y_at(1.0) - edf.y_at(1.0)) / edf.y_at(1.0) < 0.25)
    return result
