"""The scenario catalog: named, versioned entries for every experiment.

Entries live as one canonical-JSON file per scenario under
``src/repro/catalog/data/`` and are validated through
:class:`~repro.catalog.schema.Scenario` on load — a catalog file with an
unknown key, a bad schema version, or an unresolvable machine/policy name
fails at :func:`load_catalog` time, not mid-sweep.

The catalog is the single source of truth for experiment parameters: the
per-figure drivers in :mod:`repro.experiments` resolve their
:class:`~repro.analysis.sweep.SweepConfig` objects from it
(:func:`panel_sweep_config`), so ``rtdvs catalog run fig9`` and
``rtdvs run fig9`` are the same computation by construction, and the
conformance suite (``tests/catalog/test_conformance.py``) pins the
catalog-resolved configs to the historical driver parameters cell by
cell.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.sweep import SweepConfig
from repro.catalog.schema import CatalogError, Scenario

#: Directory of one ``<name>.json`` file per scenario.
DATA_DIR = Path(__file__).parent / "data"

_CACHE: Optional[Dict[str, Scenario]] = None


def load_catalog(refresh: bool = False) -> Dict[str, Scenario]:
    """All scenarios, keyed by name, in stable (sorted-filename) order.

    Loaded once per process; ``refresh=True`` re-reads the data
    directory (tests use it to point the loader at fixtures).
    """
    global _CACHE
    if _CACHE is not None and not refresh:
        return _CACHE
    catalog: Dict[str, Scenario] = {}
    if not DATA_DIR.is_dir():
        raise CatalogError(f"catalog data directory missing: {DATA_DIR}")
    for path in sorted(DATA_DIR.glob("*.json")):
        scenario = Scenario.from_json(path.read_text(encoding="utf-8"))
        if scenario.name != path.stem:
            raise CatalogError(
                f"catalog file {path.name} declares name "
                f"{scenario.name!r}; file name and scenario name must "
                "match")
        if scenario.name in catalog:  # pragma: no cover - fs prevents it
            raise CatalogError(f"duplicate scenario {scenario.name!r}")
        catalog[scenario.name] = scenario
    _CACHE = catalog
    return catalog


def scenario_names() -> List[str]:
    """Every catalog entry name, sorted."""
    return sorted(load_catalog())


def get_scenario(name: str) -> Scenario:
    """Look one scenario up by name."""
    catalog = load_catalog()
    try:
        return catalog[name]
    except KeyError:
        raise CatalogError(
            f"unknown scenario {name!r}; available: "
            f"{sorted(catalog)}") from None


def panel_sweep_config(scenario_name: str, panel_label: str,
                       quick: bool = True, **execution) -> SweepConfig:
    """Resolve one catalog panel to a runnable :class:`SweepConfig`.

    ``execution`` keywords (``workers``, ``cache_dir``,
    ``steady_fast_path``, ``engine``, ``steady_resolution``) select *how*
    the sweep runs; the catalog entry determines everything that affects
    its results.  This is the entry point the per-figure drivers use.
    """
    scenario = get_scenario(scenario_name)
    return scenario.panel(panel_label).sweep_config(quick=quick,
                                                    **execution)


def run_scenario(name: str, quick: bool = True, **kwargs):
    """Run the experiment a scenario describes; returns its
    :class:`~repro.experiments.common.ExperimentResult`.

    Delegates to the scenario's registered driver — which itself draws
    its sweep parameters from this catalog — so the output is identical
    to ``rtdvs run <experiment>``.
    """
    # Imported lazily: the drivers import this module for their configs.
    from repro.experiments.runall import run_experiment

    scenario = get_scenario(name)
    return run_experiment(scenario.experiment_id, quick=quick, **kwargs)


def catalog_summary() -> str:
    """Plain-text table of the catalog (``rtdvs catalog list``)."""
    lines = []
    for name in scenario_names():
        scenario = get_scenario(name)
        panels = ", ".join(p.label for p in scenario.panels) or "-"
        invariants = len(scenario.invariants)
        lines.append(f"{name:<14} {scenario.figure:<16} "
                     f"panels: {panels}  invariants: {invariants}")
    return "\n".join(lines)


def catalog_markdown_table() -> str:
    """The EXPERIMENTS.md catalog table (name -> figure -> invariants)."""
    lines = ["| scenario | figure | panels | declared invariants |",
             "|---|---|---|---|"]
    for name in scenario_names():
        scenario = get_scenario(name)
        panels = ", ".join(p.label for p in scenario.panels) or "—"
        invariants = ", ".join(f"`{i.name}`" for i in scenario.invariants)
        lines.append(f"| `{name}` | {scenario.figure} | {panels} | "
                     f"{invariants} |")
    return "\n".join(lines)


def write_scenario(scenario: Scenario,
                   directory: Optional[Path] = None) -> Path:
    """Serialize one scenario to its canonical catalog file.

    Used by maintainers (and tests) to regenerate ``data/`` entries; the
    file content is the indented canonical JSON, so diffs stay readable
    while the fingerprint ignores the formatting.
    """
    directory = Path(directory) if directory is not None else DATA_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{scenario.name}.json"
    # Round-trip before writing: a scenario that cannot be re-read must
    # never land in the catalog.
    Scenario.from_json(scenario.to_json())
    path.write_text(scenario.to_json(indent=2) + "\n", encoding="utf-8")
    return path


def _reset_cache_for_tests() -> None:
    """Drop the module-level catalog memo (test isolation hook)."""
    global _CACHE
    _CACHE = None


# Convenience for `python -m repro.catalog.catalog` style debugging.
if __name__ == "__main__":  # pragma: no cover
    print(json.dumps({name: s.fingerprint()
                      for name, s in load_catalog().items()}, indent=2))
