"""Declarative scenario catalog and trace-audit engine.

Three layers:

* :mod:`repro.catalog.schema` — the versioned, strictly-validated
  :class:`Scenario`/:class:`PanelSpec`/:class:`Invariant` dataclasses
  with canonical-JSON serialization and content fingerprints;
* :mod:`repro.catalog.catalog` — the named entries (one JSON file per
  scenario under ``data/``) covering every paper figure/table plus the
  extension experiments, each resolvable to a runnable
  :class:`~repro.analysis.sweep.SweepConfig`;
* :mod:`repro.catalog.audit` — the independent audit pass that replays
  cells with traces, re-derives counters/energy via
  :mod:`repro.sim.validation`, cross-checks sweep aggregates, and
  evaluates each scenario's declared invariants into an
  :class:`AuditReport`.

``rtdvs catalog list|show|run|audit`` is the CLI surface.
"""

from repro.catalog.audit import (AuditCheck, AuditProfile, AuditReport,
                                 audit_catalog, audit_scenario,
                                 render_reports, reports_to_json)
from repro.catalog.catalog import (catalog_markdown_table, catalog_summary,
                                   get_scenario, load_catalog,
                                   panel_sweep_config, run_scenario,
                                   scenario_names, write_scenario)
from repro.catalog.schema import (CATALOG_SCHEMA, CatalogError, Invariant,
                                  KNOWN_INVARIANTS, NAMED_ENERGY_SCALES,
                                  PanelSpec, Scenario, resolve_energy_scale,
                                  resolve_machine)

__all__ = [
    "AuditCheck",
    "AuditProfile",
    "AuditReport",
    "CATALOG_SCHEMA",
    "CatalogError",
    "Invariant",
    "KNOWN_INVARIANTS",
    "NAMED_ENERGY_SCALES",
    "PanelSpec",
    "Scenario",
    "audit_catalog",
    "audit_scenario",
    "catalog_markdown_table",
    "catalog_summary",
    "get_scenario",
    "load_catalog",
    "panel_sweep_config",
    "render_reports",
    "reports_to_json",
    "resolve_energy_scale",
    "resolve_machine",
    "run_scenario",
    "scenario_names",
    "write_scenario",
]
