"""Independent trace audit of catalog scenarios.

The audit engine answers one question: *do a sweep's reported numbers
actually follow from its schedules?*  It re-runs each scenario panel at a
reduced :class:`AuditProfile` scale, then — without trusting the sweep
machinery that produced the aggregates — replays every cell through the
discrete-event engine with trace recording on and re-derives everything
downstream:

* each sampled run's schedule is validated segment-by-segment through
  :func:`repro.sim.validation.validate_schedule` (tiling, cycle rates,
  budgets, priority/work conservation, and energy re-integrated from
  timeline segments), producing one ``trace:<kind>`` check per kind;
* counters are recomputed from trace + job list alone
  (:func:`~repro.sim.validation.rederive_counters`) and cross-checked
  against the run's own ``misses``/``switches`` (``counters:*``);
* the :class:`~repro.analysis.sweep.SweepResult` aggregates — raw and
  EDF-normalized mean tables, RM-fallback totals, residency tables — are
  recomputed from the replayed per-cell energies and compared
  (``aggregate:*``); residency is rebuilt from traces
  (:func:`~repro.obs.metrics.residency_from_trace`), not from the live
  collectors the sweep used;
* every invariant the scenario declares (``invariant:<name>``, see
  :data:`repro.catalog.schema.KNOWN_INVARIANTS`) is evaluated at its
  declared tolerance, including scalar/batch engine parity and
  hyperperiod-fast-path parity on sampled cells;
* scenarios without sweep panels (worked examples, extensions) are
  audited through their drivers' shape checks (``driver:shape-checks``).

Every check lands in an :class:`AuditReport` as pass/fail/skip with
detail — a check that cannot run reports ``skip`` with a reason rather
than silently passing.  Reports serialize to JSON
(:func:`reports_to_json`) and render as an ASCII summary
(:func:`render_reports`); ``rtdvs catalog audit`` exposes both.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.aggregate import mean
from repro.analysis.sweep import (BOUND_LABEL, REFERENCE_POLICY, CellSpec,
                                  SweepConfig, SweepContext, SweepResult,
                                  materialize_cell, run_cell,
                                  sweep_cell_specs, sweep_context,
                                  utilization_sweep)
from repro.catalog.catalog import load_catalog
from repro.catalog.schema import CatalogError, Invariant, Scenario
from repro.core import make_policy
from repro.core.no_dvs import NoDVS
from repro.errors import SchedulabilityError
from repro.hw.energy import EnergyModel
from repro.obs.metrics import residency_from_trace
from repro.sim.bound import minimum_energy_for_cycles
from repro.sim.engine import simulate
from repro.sim.results import SimResult
from repro.sim.validation import (ALL_CHECKS, rederive_counters,
                                  validate_schedule)

#: Slack for quantities the audit recomputes in a different float
#: summation order than the sweep (relative, scaled by magnitude).
_REL_EPS = 1e-9

#: Exact-recomputation tolerance: the audit folds the replayed per-cell
#: energies through the same ``mean`` the sweep used, so aggregate
#: mismatches beyond bit-level noise indicate corruption.
_EXACT_EPS = 1e-12

#: Violation kinds :func:`validate_schedule` can emit, keyed by the
#: check that produces them (the ``priority`` check also asserts work
#: conservation).
_KINDS_BY_CHECK = {
    "tiling": ("tiling",),
    "cycles": ("cycles",),
    "budget": ("budget",),
    "priority": ("priority", "work-conservation"),
    "energy": ("energy",),
}


@dataclass
class AuditCheck:
    """One audit finding: a named check with pass/fail/skip and detail."""

    scenario: str
    panel: str
    name: str
    status: str  # "pass" | "fail" | "skip"
    detail: str = ""

    def __post_init__(self):
        if self.status not in ("pass", "fail", "skip"):
            raise CatalogError(
                f"audit check status must be pass/fail/skip, "
                f"got {self.status!r}")

    def to_dict(self) -> Dict[str, str]:
        return {"scenario": self.scenario, "panel": self.panel,
                "name": self.name, "status": self.status,
                "detail": self.detail}

    def __str__(self) -> str:
        where = f"{self.scenario}/{self.panel}" if self.panel \
            else self.scenario
        tail = f" — {self.detail}" if self.detail else ""
        return f"[{self.status.upper():4s}] {where}: {self.name}{tail}"


@dataclass(frozen=True)
class AuditProfile:
    """How much of each scenario the audit replays.

    The default is the CI profile: every panel shrunk to ``n_sets`` task
    sets over ``max_points`` evenly-subsampled utilization points and a
    shortened horizon, full per-cell replays for the aggregate
    cross-check, and trace-level validation on ``trace_cells`` sampled
    cells per panel (trace checks scale with segments × jobs, so they
    are sampled rather than exhaustive).
    """

    #: Task sets per utilization point (clamped to the panel's own).
    n_sets: int = 2
    #: Utilization points kept per panel (evenly subsampled, ends kept).
    max_points: int = 4
    #: Horizon override in ms; ``None`` keeps the panel's quick duration.
    duration: Optional[float] = 300.0
    #: Cells per panel whose runs get full trace validation.
    trace_cells: int = 2
    #: Cells per panel used for engine/fast-path parity invariants.
    parity_cells: int = 1
    #: Trace-validation checks to run on sampled cells.
    trace_checks: Tuple[str, ...] = ALL_CHECKS
    #: Scale at which driver (shape-check) scenarios run.
    quick: bool = True

    def apply(self, config: SweepConfig) -> SweepConfig:
        """Shrink a panel's sweep config to this profile's scale."""
        utilizations = _subsample(config.utilizations, self.max_points)
        return replace(
            config,
            utilizations=utilizations,
            n_sets=min(self.n_sets, config.n_sets),
            duration=self.duration if self.duration is not None
            else config.duration)

    def to_dict(self) -> Dict[str, object]:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["trace_checks"] = list(self.trace_checks)
        return out


@dataclass
class AuditReport:
    """Every check the audit ran for one scenario."""

    scenario: str
    figure: str = ""
    fingerprint: str = ""
    checks: List[AuditCheck] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for c in self.checks if c.status == "pass")

    @property
    def failed(self) -> int:
        return sum(1 for c in self.checks if c.status == "fail")

    @property
    def skipped(self) -> int:
        return sum(1 for c in self.checks if c.status == "skip")

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def violations(self) -> List[AuditCheck]:
        return [c for c in self.checks if c.status == "fail"]

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "figure": self.figure,
            "fingerprint": self.fingerprint,
            "ok": self.ok,
            "passed": self.passed,
            "failed": self.failed,
            "skipped": self.skipped,
            "checks": [c.to_dict() for c in self.checks],
        }

    def render(self) -> str:
        """ASCII summary: one header line plus any non-pass findings."""
        status = "OK" if self.ok else "VIOLATIONS"
        lines = [f"{self.scenario:<14} {status:<10} "
                 f"pass={self.passed} fail={self.failed} "
                 f"skip={self.skipped}"]
        for check in self.checks:
            if check.status != "pass":
                lines.append(f"  {check}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# per-run audits (the seams the mutation tests drive)
# ---------------------------------------------------------------------------

def audit_sim_result(result: SimResult,
                     energy_model: Optional[EnergyModel] = None,
                     checks: Sequence[str] = ALL_CHECKS,
                     scenario: str = "", panel: str = "",
                     label: str = "") -> List[AuditCheck]:
    """Audit one traced run: schedule validation plus counter re-derivation.

    Emits one ``trace:<kind>`` check per violation kind the selected
    validators cover (pass when no violation of that kind was found — a
    kind is never silently omitted), then cross-checks the run's reported
    ``misses`` and ``switches`` against
    :func:`~repro.sim.validation.rederive_counters`
    (``counters:misses``, ``counters:switches``).
    """
    prefix = f"{label}: " if label else ""
    violations = validate_schedule(result, energy_model=energy_model,
                                   checks=tuple(checks))
    by_kind: Dict[str, List[str]] = {}
    for violation in violations:
        by_kind.setdefault(violation.kind, []).append(str(violation))
    out: List[AuditCheck] = []
    for check in checks:
        for kind in _KINDS_BY_CHECK[check]:
            found = by_kind.get(kind, [])
            out.append(AuditCheck(
                scenario, panel, f"trace:{kind}",
                "fail" if found else "pass",
                prefix + "; ".join(found[:3]) if found else ""))
    counters = rederive_counters(result)
    reported = len(result.misses)
    out.append(AuditCheck(
        scenario, panel, "counters:misses",
        "pass" if counters["deadline_misses"] == reported else "fail",
        "" if counters["deadline_misses"] == reported else
        f"{prefix}run reports {reported} misses; trace re-derivation "
        f"finds {counters['deadline_misses']}"))
    # Segment-visible transitions are a lower bound on the switch count
    # (coincident switches leave no segment behind).
    transitions = counters["frequency_transitions"]
    out.append(AuditCheck(
        scenario, panel, "counters:switches",
        "pass" if transitions <= result.switches else "fail",
        "" if transitions <= result.switches else
        f"{prefix}trace shows {transitions} operating-point changes but "
        f"the run reports only {result.switches} switches"))
    return out


@dataclass
class CellReplay:
    """One cell independently re-simulated with traces."""

    spec: CellSpec
    #: policy label -> traced run (RM fallbacks replayed as the sweep
    #: does: full-speed RM, misses tolerated).
    runs: Dict[str, SimResult]
    #: policy label -> total energy, plus the recomputed bound.
    energies: Dict[str, float]
    #: policy -> {frequency: fraction}, rebuilt from traces (only for
    #: the context's residency policies).
    residency: Dict[str, Dict[float, float]]
    rm_fallbacks: int
    fallback_draws: int


def replay_cell(context: SweepContext, spec: CellSpec) -> CellReplay:
    """Re-simulate one cell with trace recording, mirroring
    :func:`~repro.analysis.sweep.run_cell`'s semantics (policy order,
    RM fallback, bound from the EDF reference's executed cycles) but
    through the plain engine — never the fast path or batch kernels —
    so the result is an independent reference."""
    taskset, demand = materialize_cell(context, spec)
    energy_model = context.energy_model()
    runs: Dict[str, SimResult] = {}
    energies: Dict[str, float] = {}
    residency: Dict[str, Dict[float, float]] = {}
    rm_fallbacks = 0
    reference_cycles: Optional[float] = None
    for name in context.policies:
        try:
            run = simulate(taskset, context.machine, make_policy(name),
                           demand=demand, duration=context.duration,
                           energy_model=energy_model, on_miss="raise",
                           record_trace=True)
        except SchedulabilityError:
            run = simulate(taskset, context.machine,
                           NoDVS(scheduler="rm"), demand=demand,
                           duration=context.duration,
                           energy_model=energy_model, on_miss="drop",
                           record_trace=True)
            rm_fallbacks += 1
        runs[name] = run
        energies[name] = run.total_energy
        if name in context.residency_policies:
            span = context.duration or 1.0
            residency[name] = {
                f: seconds / span for f, seconds in
                residency_from_trace(run.trace).items()}
        if name == REFERENCE_POLICY:
            reference_cycles = run.executed_cycles
    energies[BOUND_LABEL] = context.cycle_energy_scale * \
        minimum_energy_for_cycles(context.machine, reference_cycles,
                                  context.duration)
    return CellReplay(spec=spec, runs=runs, energies=energies,
                      residency=residency, rm_fallbacks=rm_fallbacks,
                      fallback_draws=demand.fallback_draws)


def audit_sweep_result(scenario: Scenario, panel_label: str,
                       config: SweepConfig, result: SweepResult,
                       profile: Optional[AuditProfile] = None,
                       replays: Optional[List[CellReplay]] = None,
                       ) -> List[AuditCheck]:
    """Cross-check one sweep's aggregates and invariants against
    independent per-cell replays.

    ``replays`` lets callers (tests, :func:`audit_scenario`) reuse
    already-computed replays; otherwise every cell of ``config`` is
    replayed here.
    """
    profile = profile or AuditProfile()
    context = sweep_context(config)
    specs = sweep_cell_specs(config)
    if replays is None:
        replays = [replay_cell(context, spec) for spec in specs]
    name, panel = scenario.name, panel_label
    checks: List[AuditCheck] = []

    # --- trace-level validation on sampled cells -----------------------
    # Runs with deadline misses (RM fallbacks on non-RM-schedulable
    # sets, misses tolerated) only get the schedule-agnostic checks:
    # the job-referencing validators (budget/priority/work conservation)
    # assume every job runs to completion within its deadline window.
    miss_safe = tuple(c for c in profile.trace_checks
                      if c in ("tiling", "cycles", "energy"))
    for index in _sample_indices(len(replays), profile.trace_cells):
        cell = replays[index]
        where = f"u={cell.spec.utilization:g}/set={cell.spec.set_index}"
        for policy_label, run in cell.runs.items():
            run_checks = profile.trace_checks if not run.misses \
                else miss_safe
            checks.extend(audit_sim_result(
                run, energy_model=context.energy_model(),
                checks=run_checks, scenario=name, panel=panel,
                label=f"{where} {policy_label}"))
    checks.append(_check(
        name, panel, "cell:demand-trace",
        all(r.fallback_draws == 0 for r in replays),
        "a materialized demand trace underflowed during replay"))

    # --- aggregate recomputation --------------------------------------
    checks.extend(_audit_aggregates(name, panel, config, result, replays))

    # --- declared invariants ------------------------------------------
    for invariant in scenario.invariants:
        if invariant.name == "shape-checks":
            continue  # scenario-level, handled by audit_scenario
        checks.append(_audit_invariant(
            invariant, name, panel, config, context, specs, result,
            replays, profile))
    return checks


# ---------------------------------------------------------------------------
# aggregate cross-checks
# ---------------------------------------------------------------------------

def _audit_aggregates(name: str, panel: str, config: SweepConfig,
                      result: SweepResult,
                      replays: List[CellReplay]) -> List[AuditCheck]:
    """Recompute the sweep tables from replayed cells and diff them."""
    checks: List[AuditCheck] = []
    n_sets = config.n_sets
    labels = list(result.raw.labels())
    per_label: Dict[str, List[List[float]]] = {
        label: [[r.energies[label] for r in
                 replays[u * n_sets:(u + 1) * n_sets]]
                for u in range(len(config.utilizations))]
        for label in labels}

    bad_raw: List[str] = []
    for label in labels:
        recomputed = tuple(mean(v) for v in per_label[label])
        for x, got, want in zip(result.raw.xs,
                                result.raw.get(label).ys, recomputed):
            if abs(got - want) > _EXACT_EPS * max(1.0, abs(want)):
                bad_raw.append(
                    f"{label}@u={x:g}: reported {got!r}, replay {want!r}")
    checks.append(_check(name, panel, "aggregate:raw", not bad_raw,
                         "; ".join(bad_raw[:3])))

    bad_norm: List[str] = []
    for label in labels:
        recomputed = tuple(
            mean([v / ref for v, ref in zip(values, references)])
            for values, references in zip(per_label[label],
                                          per_label[REFERENCE_POLICY]))
        for x, got, want in zip(result.normalized.xs,
                                result.normalized.get(label).ys,
                                recomputed):
            if abs(got - want) > _EXACT_EPS * max(1.0, abs(want)):
                bad_norm.append(
                    f"{label}@u={x:g}: reported {got!r}, replay {want!r}")
    checks.append(_check(name, panel, "aggregate:normalized",
                         not bad_norm, "; ".join(bad_norm[:3])))

    replay_fallbacks = sum(r.rm_fallbacks for r in replays)
    checks.append(_check(
        name, panel, "aggregate:rm-fallbacks",
        replay_fallbacks == result.rm_fallbacks,
        f"result reports {result.rm_fallbacks} RM fallbacks; "
        f"replay found {replay_fallbacks}"))

    if config.residency_policies:
        frequencies = tuple(sorted(p.frequency
                                   for p in config.machine.points))
        bad_res: List[str] = []
        for policy in config.residency_policies:
            table = result.residency.get(policy)
            if table is None:
                bad_res.append(f"no residency table for {policy}")
                continue
            for f in frequencies:
                recomputed = tuple(
                    mean([r.residency[policy].get(f, 0.0) for r in
                          replays[u * n_sets:(u + 1) * n_sets]])
                    for u in range(len(config.utilizations)))
                reported = table.get(f"f={f:g}").ys
                for x, got, want in zip(table.xs, reported, recomputed):
                    # Collector (live) vs trace (rebuilt) summation
                    # order differ at float-noise level only.
                    if abs(got - want) > max(_REL_EPS, 1e-9):
                        bad_res.append(
                            f"{policy} f={f:g}@u={x:g}: reported "
                            f"{got!r}, trace replay {want!r}")
        checks.append(_check(name, panel, "aggregate:residency",
                             not bad_res, "; ".join(bad_res[:3])))
    return checks


# ---------------------------------------------------------------------------
# invariants
# ---------------------------------------------------------------------------

def _audit_invariant(invariant: Invariant, name: str, panel: str,
                     config: SweepConfig, context: SweepContext,
                     specs: List[CellSpec], result: SweepResult,
                     replays: List[CellReplay],
                     profile: AuditProfile) -> AuditCheck:
    tol = invariant.tolerance
    check_name = f"invariant:{invariant.name}"

    if invariant.name == "reference-normalized-unity":
        ys = result.normalized.get(REFERENCE_POLICY).ys
        bad = [f"u={x:g}: {y!r}" for x, y in zip(result.normalized.xs, ys)
               if abs(y - 1.0) > tol]
        return _check(name, panel, check_name, not bad,
                      "EDF normalized curve is not 1.0 at " +
                      ", ".join(bad[:3]))

    if invariant.name == "utilization-monotone-energy":
        series = result.raw.get(REFERENCE_POLICY)
        bad = []
        for (x0, y0), (x1, y1) in zip(
                zip(series.xs, series.ys),
                zip(series.xs[1:], series.ys[1:])):
            if y1 < y0 - tol * max(1.0, abs(y0)):
                bad.append(f"u={x0:g}->{x1:g}: {y0!r} -> {y1!r}")
        return _check(name, panel, check_name, not bad,
                      "reference energy decreases at " + "; ".join(bad[:3]))

    if invariant.name == "zero-misses-schedulable-edf":
        bad = []
        for cell in replays:
            run = cell.runs.get(REFERENCE_POLICY)
            if run is None:  # pragma: no cover - EDF is always present
                continue
            rederived = rederive_counters(run)["deadline_misses"]
            if len(run.misses) > tol or rederived > tol:
                bad.append(f"u={cell.spec.utilization:g}/"
                           f"set={cell.spec.set_index}: "
                           f"{len(run.misses)} reported / "
                           f"{rederived} re-derived misses")
        return _check(name, panel, check_name, not bad,
                      "; ".join(bad[:3]))

    if invariant.name == "bound-not-above-policies":
        # The Sec. 3.2 LP bound is a floor for the cycles a schedule
        # *actually executed* (idle is free, so fewer cycles can cost
        # less than the reference-cycles bound near the horizon); each
        # run is therefore held to the bound for its own cycle count.
        bad = []
        for cell in replays:
            for label, run in cell.runs.items():
                floor = context.cycle_energy_scale * \
                    minimum_energy_for_cycles(
                        context.machine, run.executed_cycles,
                        context.duration)
                energy = run.total_energy
                if floor > energy + tol * max(1.0, energy):
                    bad.append(
                        f"u={cell.spec.utilization:g}/"
                        f"set={cell.spec.set_index} {label}: LP bound "
                        f"{floor!r} > energy {energy!r}")
        return _check(name, panel, check_name, not bad, "; ".join(bad[:3]))

    if invariant.name == "residency-conservation":
        if not context.residency_policies:
            return AuditCheck(name, panel, check_name, "skip",
                              "panel declares no residency policies")
        slack = max(tol, _REL_EPS)
        bad = []
        for cell in replays:
            for policy, fractions in cell.residency.items():
                total = sum(fractions.values())
                if abs(total - 1.0) > slack:
                    bad.append(
                        f"u={cell.spec.utilization:g}/"
                        f"set={cell.spec.set_index} {policy}: residency "
                        f"fractions sum to {total!r}")
        return _check(name, panel, check_name, not bad, "; ".join(bad[:3]))

    if invariant.name == "engine-parity":
        from repro.analysis.batch import run_cell_batch
        bad = []
        for index in _sample_indices(len(specs), profile.parity_cells):
            scalar = run_cell(context, specs[index])
            batch = run_cell_batch(context, specs[index])
            if scalar != batch:
                diffs = [key for key in scalar
                         if scalar.get(key) != batch.get(key)]
                bad.append(f"cell {index}: outcome mismatch on "
                           f"{diffs or 'keys'}")
        return _check(name, panel, check_name, not bad, "; ".join(bad[:3]))

    if invariant.name == "fast-path-parity":
        slack = max(tol, _REL_EPS)
        fast_context = replace(context, steady_fast_path=True)
        bad = []
        for index in _sample_indices(len(specs), profile.parity_cells):
            full = run_cell(context, specs[index])
            fast = run_cell(fast_context, specs[index])
            for label, energy in full.items():
                if not isinstance(energy, float):
                    continue
                other = fast[label]
                if abs(other - energy) > slack * max(1.0, abs(energy)):
                    bad.append(f"cell {index} {label}: full {energy!r} "
                               f"vs fast-path {other!r}")
        return _check(name, panel, check_name, not bad, "; ".join(bad[:3]))

    raise CatalogError(  # pragma: no cover - schema rejects unknown names
        f"no audit implementation for invariant {invariant.name!r}")


# ---------------------------------------------------------------------------
# scenario/catalog entry points
# ---------------------------------------------------------------------------

def audit_scenario(scenario: Scenario,
                   profile: Optional[AuditProfile] = None,
                   cache_dir: Optional[str] = None,
                   workers=1, executor=None,
                   engine: str = "scalar") -> AuditReport:
    """Audit one scenario end to end.

    Sweep panels run through :func:`utilization_sweep` at the profile's
    reduced scale (sharing the cell cache and worker pool when given, so
    a warm cache makes re-audits cheap), then every aggregate and
    invariant is cross-checked against independent traced replays.
    Panel-less scenarios run their driver and audit its shape checks.
    """
    profile = profile or AuditProfile()
    report = AuditReport(scenario=scenario.name, figure=scenario.figure,
                         fingerprint=scenario.fingerprint())
    for panel in scenario.panels:
        config = profile.apply(panel.sweep_config(
            quick=True, workers=workers, cache_dir=cache_dir,
            engine=engine))
        result = utilization_sweep(config, executor=executor)
        report.checks.extend(audit_sweep_result(
            scenario, panel.label, config, result, profile=profile))
    if scenario.invariant("shape-checks") is not None:
        report.checks.append(_audit_shape_checks(
            scenario, profile, workers=workers, cache_dir=cache_dir,
            executor=executor, engine=engine))
    return report


def _audit_shape_checks(scenario: Scenario, profile: AuditProfile,
                        **execution) -> AuditCheck:
    """Run the scenario's driver and fold its shape checks into one
    audit check."""
    from repro.experiments.runall import run_experiment

    result = run_experiment(scenario.experiment_id, quick=profile.quick,
                            **{k: v for k, v in execution.items()
                               if v is not None and v != 1})
    failed = [c.description for c in result.checks if not c.passed]
    return _check(scenario.name, "", "driver:shape-checks", not failed,
                  "failed shape checks: " + "; ".join(failed[:5]))


def audit_catalog(names: Optional[Sequence[str]] = None,
                  profile: Optional[AuditProfile] = None,
                  cache_dir: Optional[str] = None,
                  workers=1, executor=None,
                  engine: str = "scalar") -> List[AuditReport]:
    """Audit the whole catalog (or the named subset), in catalog order."""
    catalog = load_catalog()
    if names:
        unknown = sorted(set(names) - set(catalog))
        if unknown:
            raise CatalogError(
                f"unknown scenario(s) {unknown}; "
                f"available: {sorted(catalog)}")
        selected = [catalog[name] for name in names]
    else:
        selected = [catalog[name] for name in sorted(catalog)]
    return [audit_scenario(scenario, profile=profile, cache_dir=cache_dir,
                           workers=workers, executor=executor,
                           engine=engine)
            for scenario in selected]


def render_reports(reports: Sequence[AuditReport]) -> str:
    """ASCII summary of a catalog audit."""
    lines = [report.render() for report in reports]
    failed = sum(report.failed for report in reports)
    passed = sum(report.passed for report in reports)
    skipped = sum(report.skipped for report in reports)
    verdict = "AUDIT CLEAN" if failed == 0 else "AUDIT VIOLATIONS"
    lines.append(f"{verdict}: {passed} checks passed, {failed} failed, "
                 f"{skipped} skipped across {len(reports)} scenario(s)")
    return "\n".join(lines)


def reports_to_json(reports: Sequence[AuditReport],
                    profile: Optional[AuditProfile] = None,
                    indent: int = 2) -> str:
    """Machine-readable audit report (the CI artifact)."""
    payload = {
        "catalog_audit": {
            "ok": all(report.ok for report in reports),
            "profile": (profile or AuditProfile()).to_dict(),
            "reports": [report.to_dict() for report in reports],
        }
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _check(scenario: str, panel: str, name: str, passed: bool,
           detail_on_fail: str) -> AuditCheck:
    return AuditCheck(scenario, panel, name,
                      "pass" if passed else "fail",
                      "" if passed else detail_on_fail)


def _sample_indices(count: int, wanted: int) -> List[int]:
    """Up to ``wanted`` indices spread evenly over ``range(count)``."""
    if count <= 0 or wanted <= 0:
        return []
    if wanted >= count:
        return list(range(count))
    if wanted == 1:
        return [count - 1]
    step = (count - 1) / (wanted - 1)
    out = sorted({round(i * step) for i in range(wanted)})
    return [int(i) for i in out]


def _subsample(values: Tuple[float, ...],
               wanted: int) -> Tuple[float, ...]:
    """Evenly subsample ``values`` keeping first and last."""
    indices = _sample_indices(len(values), wanted)
    if len(indices) > 1:
        indices[0] = 0  # always keep the low end
    return tuple(values[i] for i in indices)
