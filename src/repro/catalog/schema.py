"""Versioned, validated scenario schema for the experiment catalog.

A :class:`Scenario` is the declarative description of one reproduction
experiment: which paper figure/table it regenerates, the sweep panels it
runs (machine, workload generator parameters, policies, sweep axes), and
the *invariants* its results must satisfy — each with an explicit
tolerance — that the audit engine (:mod:`repro.catalog.audit`)
independently re-derives from traces.

Design rules
------------
* **Canonical JSON.**  ``to_json`` always emits sorted keys with compact
  separators, so a scenario's :meth:`~Scenario.fingerprint` is stable
  under key reordering and whitespace — the same canonicalization the
  cell cache uses (:func:`repro.analysis.cellcache.cell_key`).
* **Strict parsing.**  ``from_dict``/``from_json`` reject unknown keys at
  every nesting level and reject any ``schema`` other than
  :data:`CATALOG_SCHEMA`; a catalog entry that silently ignored a typoed
  key (``n_taks``) would audit something other than what it declares.
* **Names over objects.**  Machines are preset names
  (:data:`repro.hw.machine.MACHINE_PRESETS`), energy calibrations are
  named (:data:`NAMED_ENERGY_SCALES`), policies are registry labels —
  everything in a scenario is data, resolvable to today's
  :class:`~repro.analysis.sweep.SweepConfig` machinery without executing
  catalog-supplied code.
* **Execution ≠ identity.**  Worker counts, cache directories, the
  batch engine, and the steady fast path change how a scenario runs, not
  what it computes (they are required to be bit-identical); they are
  runtime options of :meth:`PanelSpec.sweep_config`, never scenario
  fields.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Tuple, Union

from repro.analysis.sweep import DEFAULT_UTILIZATIONS, SweepConfig
from repro.core import PAPER_POLICIES, canonical_policy_name
from repro.errors import ReproError
from repro.hw.machine import MACHINE_PRESETS

#: Version tag of the scenario schema.  Bump when a field is added,
#: removed, or changes meaning; ``from_dict`` rejects every other value,
#: so stored catalogs can never be silently misread across revisions.
CATALOG_SCHEMA = 1


class CatalogError(ReproError):
    """A scenario failed schema validation or catalog resolution."""


#: Invariant name -> one-line description.  ``Invariant`` rejects names
#: outside this registry so a typo cannot silently declare a check that
#: the audit engine never runs.
KNOWN_INVARIANTS: Dict[str, str] = {
    "reference-normalized-unity":
        "the EDF reference's normalized-energy curve equals 1.0 exactly "
        "(the NoDVS/EDF normalization anchor)",
    "utilization-monotone-energy":
        "the reference policy's mean raw energy is non-decreasing in "
        "worst-case utilization",
    "zero-misses-schedulable-edf":
        "EDF cells (always schedulable at U <= 1) replay with zero "
        "deadline misses, re-derived from traces",
    "bound-not-above-policies":
        "every replayed run's energy is at least the Sec. 3.2 LP lower "
        "bound for the cycles it actually executed",
    "residency-conservation":
        "per-policy frequency-residency fractions sum to 1 on every cell",
    "engine-parity":
        "scalar and batch engines produce identical outcome dicts on "
        "sampled cells",
    "fast-path-parity":
        "the hyperperiod short-circuit matches full simulation on "
        "sampled cells (within its verified tolerance)",
    "shape-checks":
        "the experiment driver's own shape checks all pass",
}

#: Named energy calibrations resolvable without executing catalog code.
#: ``"k6-laptop"`` is the Fig. 16 calibration: cycle energy scaled so
#: full-speed execution on the K6-2+ table draws the Table 1 CPU delta.
NAMED_ENERGY_SCALES = ("k6-laptop",)


def resolve_energy_scale(scale: Union[float, str]) -> float:
    """Resolve a panel's ``cycle_energy_scale`` field to a float."""
    if isinstance(scale, str):
        if scale == "k6-laptop":
            from repro.hw.machine import k6_2_plus
            from repro.measure.laptop import LaptopPowerModel
            return LaptopPowerModel().cycle_energy_scale_for(k6_2_plus())
        raise CatalogError(
            f"unknown named energy scale {scale!r}; "
            f"known: {NAMED_ENERGY_SCALES}")
    return float(scale)


def resolve_machine(name: str):
    """Resolve a machine preset name to a :class:`~repro.hw.machine.Machine`."""
    try:
        factory = MACHINE_PRESETS[name]
    except KeyError:
        raise CatalogError(
            f"unknown machine preset {name!r}; "
            f"available: {sorted(MACHINE_PRESETS)}") from None
    return factory()


@dataclass(frozen=True)
class Invariant:
    """One declared result property, with its audit tolerance.

    ``tolerance`` is interpreted by the corresponding audit check
    (relative for energy comparisons, absolute for fractions); ``0.0``
    means exact.
    """

    name: str
    tolerance: float = 0.0

    def __post_init__(self):
        if self.name not in KNOWN_INVARIANTS:
            raise CatalogError(
                f"unknown invariant {self.name!r}; "
                f"known: {sorted(KNOWN_INVARIANTS)}")
        if self.tolerance < 0:
            raise CatalogError(
                f"invariant {self.name!r}: tolerance must be >= 0, "
                f"got {self.tolerance}")

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "tolerance": self.tolerance}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Invariant":
        payload = _take(dict(data), "invariant", required=("name",),
                        optional=("tolerance",))
        return cls(**payload)


@dataclass(frozen=True)
class PanelSpec:
    """One sweep of a scenario, at declaration level.

    Carries everything that determines a sweep's *results* (the
    :class:`~repro.analysis.sweep.SweepConfig` identity fields), with the
    quick/full scale split made explicit so ``--full`` is a declared
    property of the catalog entry rather than driver-local arithmetic.
    """

    label: str
    n_tasks: int = 8
    seed: int = 1
    demand: Union[str, float] = "worst"
    idle_level: float = 0.0
    machine: str = "machine0"
    #: ``None`` = the paper's default 0.1 ... 1.0 grid.
    utilizations: Optional[Tuple[float, ...]] = None
    #: ``None`` = the paper's six policies (:data:`PAPER_POLICIES`).
    policies: Optional[Tuple[str, ...]] = None
    residency_policies: Tuple[str, ...] = ()
    #: A float, or a named calibration from :data:`NAMED_ENERGY_SCALES`.
    cycle_energy_scale: Union[float, str] = 1.0
    period_bands: Optional[Tuple[Tuple[float, float], ...]] = None
    n_sets_quick: int = 8
    n_sets_full: int = 100
    duration_quick: float = 1000.0
    duration_full: float = 2000.0

    def __post_init__(self):
        if not self.label:
            raise CatalogError("panel label must be non-empty")
        if self.machine not in MACHINE_PRESETS:
            raise CatalogError(
                f"panel {self.label!r}: unknown machine {self.machine!r}; "
                f"available: {sorted(MACHINE_PRESETS)}")
        for policy in (self.policies or ()) + self.residency_policies:
            try:
                canonical_policy_name(policy)
            except ValueError as exc:
                raise CatalogError(
                    f"panel {self.label!r}: {exc}") from None
        if isinstance(self.cycle_energy_scale, str) \
                and self.cycle_energy_scale not in NAMED_ENERGY_SCALES:
            raise CatalogError(
                f"panel {self.label!r}: unknown energy scale "
                f"{self.cycle_energy_scale!r}")
        if not isinstance(self.demand, str) \
                and not (0.0 < float(self.demand) <= 1.0):
            raise CatalogError(
                f"panel {self.label!r}: fractional demand must be in "
                f"(0, 1], got {self.demand}")

    def sweep_config(self, quick: bool = True, *, workers=1,
                     cache_dir: Optional[str] = None,
                     steady_fast_path: bool = False,
                     engine: str = "scalar",
                     steady_resolution: float = 1e-6) -> SweepConfig:
        """Resolve this panel to a runnable :class:`SweepConfig`.

        Keyword arguments are execution options only; every
        result-determining field comes from the panel declaration.
        """
        return SweepConfig(
            policies=(tuple(self.policies) if self.policies is not None
                      else PAPER_POLICIES),
            utilizations=(tuple(self.utilizations)
                          if self.utilizations is not None
                          else DEFAULT_UTILIZATIONS),
            n_tasks=self.n_tasks,
            n_sets=self.n_sets_quick if quick else self.n_sets_full,
            machine=resolve_machine(self.machine),
            demand=self.demand,
            idle_level=self.idle_level,
            duration=self.duration_quick if quick else self.duration_full,
            seed=self.seed,
            workers=workers,
            cycle_energy_scale=resolve_energy_scale(
                self.cycle_energy_scale),
            residency_policies=tuple(self.residency_policies),
            cache_dir=cache_dir,
            steady_fast_path=steady_fast_path,
            period_bands=self.period_bands,
            engine=engine,
            steady_resolution=steady_resolution)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            if f.name == "utilizations":
                value = list(value)
            elif f.name in ("policies", "residency_policies"):
                value = list(value)
            elif f.name == "period_bands":
                value = [list(band) for band in value]
            out[f.name] = value
        if not self.residency_policies:
            out.pop("residency_policies", None)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PanelSpec":
        required = ("label",)
        optional = tuple(f.name for f in fields(cls) if f.name != "label")
        payload = _take(dict(data), "panel", required=required,
                        optional=optional)
        if "utilizations" in payload:
            payload["utilizations"] = tuple(
                float(u) for u in payload["utilizations"])
        for key in ("policies", "residency_policies"):
            if key in payload:
                payload[key] = tuple(payload[key])
        if "period_bands" in payload:
            payload["period_bands"] = tuple(
                (float(low), float(high))
                for low, high in payload["period_bands"])
        return cls(**payload)


@dataclass(frozen=True)
class Scenario:
    """One named catalog entry: a paper figure/table plus its invariants.

    ``experiment_id`` names the driver in
    :data:`repro.experiments.runall.ALL_EXPERIMENTS` that renders the
    entry's report; ``panels`` declare the sweeps that driver runs (empty
    for worked-example and extension entries whose drivers are not
    sweep-shaped — those are audited through their shape checks).
    """

    name: str
    title: str
    figure: str
    description: str
    experiment_id: str
    panels: Tuple[PanelSpec, ...] = ()
    invariants: Tuple[Invariant, ...] = ()
    schema: int = field(default=CATALOG_SCHEMA)

    def __post_init__(self):
        if not self.name:
            raise CatalogError("scenario name must be non-empty")
        if self.schema != CATALOG_SCHEMA:
            raise CatalogError(
                f"scenario {self.name!r} declares schema {self.schema!r}; "
                f"this library reads schema {CATALOG_SCHEMA}")
        labels = [panel.label for panel in self.panels]
        if len(set(labels)) != len(labels):
            raise CatalogError(
                f"scenario {self.name!r} has duplicate panel labels")

    def panel(self, label: str) -> PanelSpec:
        for panel in self.panels:
            if panel.label == label:
                return panel
        raise CatalogError(
            f"scenario {self.name!r} has no panel {label!r}; "
            f"available: {[p.label for p in self.panels]}")

    def invariant(self, name: str) -> Optional[Invariant]:
        for invariant in self.invariants:
            if invariant.name == name:
                return invariant
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "name": self.name,
            "title": self.title,
            "figure": self.figure,
            "description": self.description,
            "experiment_id": self.experiment_id,
            "panels": [panel.to_dict() for panel in self.panels],
            "invariants": [inv.to_dict() for inv in self.invariants],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON: sorted keys, no NaN; compact unless ``indent``."""
        separators = (",", ": ") if indent else (",", ":")
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent,
                          separators=separators, allow_nan=False)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        payload = _take(
            dict(data), "scenario",
            required=("schema", "name", "title", "figure", "description",
                      "experiment_id"),
            optional=("panels", "invariants"))
        panels = tuple(PanelSpec.from_dict(p)
                       for p in payload.pop("panels", []))
        invariants = tuple(Invariant.from_dict(i)
                           for i in payload.pop("invariants", []))
        return cls(panels=panels, invariants=invariants, **payload)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CatalogError(f"scenario is not valid JSON: {exc}") \
                from None
        if not isinstance(data, dict):
            raise CatalogError(
                f"scenario JSON must be an object, got {type(data).__name__}")
        return cls.from_dict(data)

    def fingerprint(self) -> str:
        """Content hash of the canonical JSON.

        Stable under key order and formatting; changes whenever any
        result-determining field changes — the catalog analogue of a
        cell's cache key.
        """
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


def _take(data: Dict[str, object], what: str,
          required: Tuple[str, ...] = (),
          optional: Tuple[str, ...] = ()) -> Dict[str, object]:
    """Extract exactly the declared keys from ``data``; reject the rest."""
    payload: Dict[str, object] = {}
    for key in required:
        if key not in data:
            raise CatalogError(f"{what} is missing required key {key!r}")
        payload[key] = data.pop(key)
    for key in optional:
        if key in data:
            payload[key] = data.pop(key)
    if data:
        raise CatalogError(
            f"{what} has unknown key(s) {sorted(data)}; "
            "the scenario schema rejects unrecognized fields")
    return payload
