"""Array-backed execution timelines (structure-of-arrays trace storage).

:class:`~repro.sim.trace.ExecutionTrace` stores one frozen
:class:`~repro.sim.trace.Segment` object per maximal slice — convenient for
small worked examples, but on long-horizon sweeps the per-slice object
churn (allocation, boxed floats, pointer-chasing on iteration) dominates
recording cost and peak RSS.  :class:`SimTimeline` keeps the same logical
content in seven parallel columns (``array('d')``/``array('i')`` buffers:
start, end, cycles, energy, task index, operating-point index, kind code)
with interned task names and operating points.  Appends coalesce with the
previous row under exactly the same rules as ``ExecutionTrace`` — same
epsilon, same drop threshold, same left-to-right accumulation of cycles and
energy — so the reconstructed :class:`Segment` view is bit-for-bit
identical to what the object path would have recorded.

``Segment`` objects are only materialized lazily, when a legacy consumer
(validation, report tables, rendering) actually asks for them; columnar
consumers (:mod:`repro.sim.steady`'s cumulative scans, the vectorized
validation checks, residency tables) read the raw buffers instead.  The
whole column set round-trips losslessly through :meth:`to_bytes` /
:meth:`from_bytes` — a small JSON header plus the raw little-endian
buffers — which doubles as the cross-process result transport and cache
codec (see :mod:`repro.analysis.transport`).
"""

from __future__ import annotations

import json
import struct
import sys
from array import array
from typing import Iterator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.hw.operating_point import OperatingPoint
from repro.sim.trace import ExecutionTrace, Segment, _MIN_SEGMENT

#: Trace backends understood by the engines' ``trace_backend=`` parameter.
TRACE_BACKENDS = ("array", "segments")

#: Segment kinds in code order (codes index this tuple).
KINDS = ("run", "idle", "switch")
_KIND_CODE = {"run": 0, "idle": 1, "switch": 2}

_MAGIC = b"STL1"
_MERGE_EPS = 1e-9  # same tolerance as ExecutionTrace.append


def make_trace(record_trace: bool, backend: str = "array"):
    """Build the trace recorder for an engine (or ``None`` when off)."""
    if not record_trace:
        return None
    if backend == "array":
        return SimTimeline()
    if backend == "segments":
        return ExecutionTrace()
    raise SimulationError(
        f"trace_backend must be one of {TRACE_BACKENDS}, got {backend!r}")


class SimTimeline:
    """Append-only, merge-on-append columnar execution timeline.

    Drop-in for :class:`~repro.sim.trace.ExecutionTrace` everywhere the
    code base consumes traces: ``len``, iteration, indexing, ``segments``,
    ``run_segments``, ``segments_for``, ``frequency_profile``,
    ``busy_time`` and ``idle_time`` all behave identically.  Additionally
    exposes the raw columns (:meth:`columns`), vectorized reductions
    (:meth:`frequency_residency`), and the binary codec.
    """

    __slots__ = (
        "_start", "_end", "_cycles", "_energy", "_task", "_op", "_kind",
        "_task_names", "_task_index", "_points", "_point_index",
        "_n", "_rev",
        "_m_end", "_m_cycles", "_m_energy", "_m_task", "_m_op", "_m_kind",
        "_last_point_obj", "_last_point_idx",
        "_view", "_view_rev",
    )

    def __init__(self):
        self._start = array("d")
        self._end = array("d")
        self._cycles = array("d")
        self._energy = array("d")
        self._task = array("i")   # -1 encodes "no task" (idle/switch)
        self._op = array("i")
        self._kind = array("b")
        self._task_names: List[str] = []
        self._task_index = {}
        self._points: List[OperatingPoint] = []
        self._point_index = {}
        self._n = 0
        self._rev = 0
        # Mirror of the last row kept in plain Python attributes so the
        # merge test never reads back from the buffers on the hot path.
        self._m_end = 0.0
        self._m_cycles = 0.0
        self._m_energy = 0.0
        self._m_task = -2   # sentinel: never matches
        self._m_op = -2
        self._m_kind = -2
        self._last_point_obj: Optional[OperatingPoint] = None
        self._last_point_idx = -1
        self._view: Optional[Tuple[Segment, ...]] = None
        self._view_rev = -1

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, start: float, end: float, task: Optional[str],
               point: OperatingPoint, cycles: float, energy: float,
               kind: str = "run") -> None:
        """Append one slice, coalescing with the previous row when
        homogeneous (same semantics as ``ExecutionTrace.append``)."""
        if end - start <= _MIN_SEGMENT:
            return
        kind_code = _KIND_CODE[kind]
        if task is None:
            task_idx = -1
        else:
            task_idx = self._task_index.get(task, -2)
            if task_idx == -2:
                task_idx = len(self._task_names)
                self._task_index[task] = task_idx
                self._task_names.append(task)
        if point is self._last_point_obj:
            op_idx = self._last_point_idx
        else:
            op_idx = self._point_index.get(point, -2)
            if op_idx == -2:
                op_idx = len(self._points)
                self._point_index[point] = op_idx
                self._points.append(point)
            self._last_point_obj = point
            self._last_point_idx = op_idx
        self._rev += 1
        gap = start - self._m_end
        if (task_idx == self._m_task and op_idx == self._m_op
                and kind_code == self._m_kind
                and -_MERGE_EPS <= gap <= _MERGE_EPS):
            # Coalesce: extend the last row in place.  Accumulation order
            # matches ExecutionTrace exactly (previous total + new value).
            i = self._n - 1
            self._end[i] = end
            self._m_end = end
            total_cycles = self._m_cycles + cycles
            self._cycles[i] = total_cycles
            self._m_cycles = total_cycles
            total_energy = self._m_energy + energy
            self._energy[i] = total_energy
            self._m_energy = total_energy
            return
        self._start.append(start)
        self._end.append(end)
        self._cycles.append(cycles)
        self._energy.append(energy)
        self._task.append(task_idx)
        self._op.append(op_idx)
        self._kind.append(kind_code)
        self._n += 1
        self._m_end = end
        self._m_cycles = cycles
        self._m_energy = energy
        self._m_task = task_idx
        self._m_op = op_idx
        self._m_kind = kind_code

    def replace(self, index: int, segment: Segment) -> None:
        """Overwrite one recorded row with ``segment``'s fields.

        Doctoring hook for the validator's corruption-injection tests and
        trace-editing tools; not part of the recording hot path.  Negative
        indices follow list semantics.
        """
        i = index if index >= 0 else self._n + index
        if not 0 <= i < self._n:
            raise IndexError(index)
        if segment.task is None:
            task_idx = -1
        else:
            task_idx = self._task_index.get(segment.task, -2)
            if task_idx == -2:
                task_idx = len(self._task_names)
                self._task_index[segment.task] = task_idx
                self._task_names.append(segment.task)
        op_idx = self._point_index.get(segment.point, -2)
        if op_idx == -2:
            op_idx = len(self._points)
            self._point_index[segment.point] = op_idx
            self._points.append(segment.point)
        self._start[i] = segment.start
        self._end[i] = segment.end
        self._cycles[i] = segment.cycles
        self._energy[i] = segment.energy
        self._task[i] = task_idx
        self._op[i] = op_idx
        self._kind[i] = _KIND_CODE[segment.kind]
        self._rev += 1
        if i == self._n - 1:
            self._m_end = segment.end
            self._m_cycles = segment.cycles
            self._m_energy = segment.energy
            self._m_task = task_idx
            self._m_op = op_idx
            self._m_kind = _KIND_CODE[segment.kind]
            self._last_point_obj = None
            self._last_point_idx = -1

    # ------------------------------------------------------------------
    # columnar access
    # ------------------------------------------------------------------
    def columns(self):
        """The raw column buffers, in recording order.

        Returns ``(start, end, cycles, energy, task_idx, op_idx, kind)``
        as ``array`` objects.  Treat them as read-only; ``task_idx`` is an
        index into :attr:`task_names` (-1 for idle/switch rows), ``op_idx``
        into :attr:`points`, and ``kind`` into :data:`KINDS`.
        """
        return (self._start, self._end, self._cycles, self._energy,
                self._task, self._op, self._kind)

    @property
    def task_names(self) -> Tuple[str, ...]:
        """Interned task names, in first-appearance order."""
        return tuple(self._task_names)

    @property
    def points(self) -> Tuple[OperatingPoint, ...]:
        """Interned operating points, in first-appearance order."""
        return tuple(self._points)

    @property
    def nbytes(self) -> int:
        """Bytes held by the column buffers (excludes interning tables)."""
        return sum(col.itemsize * len(col) for col in self.columns())

    # ------------------------------------------------------------------
    # ExecutionTrace-compatible surface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    def __getitem__(self, index):
        return self.segments[index]

    @property
    def segments(self) -> Tuple[Segment, ...]:
        """The lazy ``Segment`` view (cached until the next append)."""
        if self._view is None or self._view_rev != self._rev:
            names = self._task_names
            points = self._points
            start, end, cycles, energy, task, op, kind = self.columns()
            self._view = tuple(
                Segment(start=start[i], end=end[i],
                        task=names[task[i]] if task[i] >= 0 else None,
                        point=points[op[i]], cycles=cycles[i],
                        energy=energy[i], kind=KINDS[kind[i]])
                for i in range(self._n))
            self._view_rev = self._rev
        return self._view

    def run_segments(self) -> List[Segment]:
        """Only the segments in which a task executed."""
        return [s for s in self.segments if s.kind == "run"]

    def segments_for(self, task_name: str) -> List[Segment]:
        """Run segments of one task."""
        return [s for s in self.segments if s.task == task_name]

    def frequency_profile(self) -> List[Tuple[float, float]]:
        """(time, relative frequency) steps, straight off the columns."""
        profile: List[Tuple[float, float]] = []
        frequencies = [p.frequency for p in self._points]
        start, op = self._start, self._op
        for i in range(self._n):
            frequency = frequencies[op[i]]
            if not profile or profile[-1][1] != frequency:
                profile.append((start[i], frequency))
        return profile

    def busy_time(self) -> float:
        """Total time spent executing tasks (vectorized)."""
        return self._kind_time(0)

    def idle_time(self) -> float:
        """Total time spent idle, excluding switch halts (vectorized)."""
        return self._kind_time(1)

    def _kind_time(self, code: int) -> float:
        import numpy as np
        if self._n == 0:
            return 0.0
        start = np.frombuffer(self._start, dtype=np.float64, count=self._n)
        end = np.frombuffer(self._end, dtype=np.float64, count=self._n)
        kind = np.frombuffer(self._kind, dtype=np.int8, count=self._n)
        return float(np.sum((end - start)[kind == code]))

    # ------------------------------------------------------------------
    # vectorized reductions
    # ------------------------------------------------------------------
    def frequency_residency(self):
        """Wall time spent at each operating point, as ``{point: time}``.

        One ``bincount`` over the op-index column (run + idle + switch
        rows all count: the point is "in effect" either way).
        """
        import numpy as np
        if self._n == 0:
            return {}
        start = np.frombuffer(self._start, dtype=np.float64, count=self._n)
        end = np.frombuffer(self._end, dtype=np.float64, count=self._n)
        op = np.frombuffer(self._op, dtype=np.int32, count=self._n)
        totals = np.bincount(op, weights=end - start,
                             minlength=len(self._points))
        return {point: float(totals[i])
                for i, point in enumerate(self._points)
                if totals[i] > 0.0}

    def cycles_by_point(self):
        """Executed cycles per operating point (``{point: cycles}``)."""
        import numpy as np
        if self._n == 0:
            return {}
        cycles = np.frombuffer(self._cycles, dtype=np.float64, count=self._n)
        op = np.frombuffer(self._op, dtype=np.int32, count=self._n)
        totals = np.bincount(op, weights=cycles,
                             minlength=len(self._points))
        return {point: float(totals[i])
                for i, point in enumerate(self._points)
                if totals[i] != 0.0}

    # ------------------------------------------------------------------
    # binary codec
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to the compact columnar form (lossless).

        Layout: 4-byte magic, little-endian ``uint32`` header length, a
        JSON header (row count, interned names/points, column typecodes,
        byte order), then the raw column buffers back to back.  Floats
        travel as their exact 64-bit patterns — no text round-trip.
        """
        cols = self.columns()
        header = {
            "version": 1,
            "rows": self._n,
            "tasks": self._task_names,
            "points": [[p.frequency, p.voltage] for p in self._points],
            "typecodes": [c.typecode for c in cols],
            "itemsizes": [c.itemsize for c in cols],
            "byteorder": sys.byteorder,
        }
        blob = json.dumps(header, separators=(",", ":")).encode("utf-8")
        parts = [_MAGIC, struct.pack("<I", len(blob)), blob]
        parts.extend(c.tobytes() for c in cols)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SimTimeline":
        """Rebuild a timeline serialized by :meth:`to_bytes`."""
        if data[:4] != _MAGIC:
            raise SimulationError("not a SimTimeline blob (bad magic)")
        (header_len,) = struct.unpack_from("<I", data, 4)
        header = json.loads(data[8:8 + header_len].decode("utf-8"))
        if header.get("version") != 1:
            raise SimulationError(
                f"unsupported SimTimeline version {header.get('version')!r}")
        timeline = cls()
        rows = header["rows"]
        timeline._task_names = list(header["tasks"])
        timeline._task_index = {name: i for i, name
                                in enumerate(timeline._task_names)}
        timeline._points = [OperatingPoint(frequency=f, voltage=v)
                            for f, v in header["points"]]
        timeline._point_index = {p: i for i, p
                                 in enumerate(timeline._points)}
        offset = 8 + header_len
        swap = header["byteorder"] != sys.byteorder
        columns = []
        for typecode, itemsize in zip(header["typecodes"],
                                      header["itemsizes"]):
            col = array(typecode)
            if col.itemsize != itemsize:
                raise SimulationError(
                    f"column typecode {typecode!r} has itemsize "
                    f"{col.itemsize} here but {itemsize} in the blob")
            nbytes = rows * itemsize
            try:
                col.frombytes(data[offset:offset + nbytes])
            except ValueError as exc:  # tail not a multiple of itemsize
                raise SimulationError(
                    f"truncated SimTimeline blob: {exc}") from exc
            if len(col) != rows:
                raise SimulationError("truncated SimTimeline blob")
            if swap:
                col.byteswap()
            columns.append(col)
            offset += nbytes
        (timeline._start, timeline._end, timeline._cycles,
         timeline._energy, timeline._task, timeline._op,
         timeline._kind) = columns
        timeline._n = rows
        if rows:
            i = rows - 1
            timeline._m_end = timeline._end[i]
            timeline._m_cycles = timeline._cycles[i]
            timeline._m_energy = timeline._energy[i]
            timeline._m_task = timeline._task[i]
            timeline._m_op = timeline._op[i]
            timeline._m_kind = timeline._kind[i]
        return timeline

    def __eq__(self, other) -> bool:
        if not isinstance(other, SimTimeline):
            return NotImplemented
        return (self._n == other._n
                and self._task_names == other._task_names
                and self._points == other._points
                and all(a == b for a, b in zip(self.columns(),
                                               other.columns())))

    __hash__ = None  # mutable

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SimTimeline(rows={self._n}, tasks={len(self._task_names)},"
                f" points={len(self._points)}, nbytes={self.nbytes})")
