"""Discrete-event simulator for real-time scheduling with DVS.

This is the reproduction of the paper's C++ simulator (Sec. 3.1): a
preemptive uniprocessor, EDF or RM priorities, cycle-counting execution
(no per-instruction variation), per-cycle V² energy, an idle-level factor,
and optional voltage-switch overheads.
"""

from repro.sim.scheduler import PriorityPolicy, EDFPriority, RMPriority
from repro.sim.trace import Segment, ExecutionTrace, render_trace
from repro.sim.results import SimResult, EnergyBreakdown, DeadlineMiss
from repro.sim.baseline import BaselineSimulator
from repro.sim.engine import Admission, Simulator, SchedulerView, simulate
from repro.sim.bound import theoretical_bound, minimum_energy_for_cycles
from repro.sim.ticksim import TickSimulator
from repro.sim.steady import SteadyStateEnergy, steady_state_energy
from repro.sim.validation import (Violation, rederive_counters,
                                  validate_schedule)

__all__ = [
    "PriorityPolicy",
    "EDFPriority",
    "RMPriority",
    "Segment",
    "ExecutionTrace",
    "render_trace",
    "SimResult",
    "EnergyBreakdown",
    "DeadlineMiss",
    "Admission",
    "BaselineSimulator",
    "Simulator",
    "SchedulerView",
    "simulate",
    "theoretical_bound",
    "minimum_energy_for_cycles",
    "TickSimulator",
    "SteadyStateEnergy",
    "steady_state_energy",
    "Violation",
    "rederive_counters",
    "validate_schedule",
]
