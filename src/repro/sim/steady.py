"""Steady-state (per-hyperperiod) energy analysis.

Finite simulation horizons leave "tail" artifacts: jobs released near the
end execute partially, so executed-cycle totals differ slightly across
policies (see EXPERIMENTS.md, known deviations).  When the periods are
commensurable and the demand pattern repeats, the whole system — schedule,
frequencies, energy — becomes periodic with the hyperperiod once initial
transients decay, and the energy *per hyperperiod* is an exact, tail-free
figure of merit.

:func:`steady_state_energy` measures it by simulating a warmup plus two
hyperperiods and differencing cumulative energy at the boundaries; it also
verifies periodicity (the two windows must agree), so it doubles as a
system-level regression check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import SimulationError
from repro.hw.energy import EnergyModel
from repro.hw.machine import Machine
from repro.model.demand import DemandModel
from repro.model.task import TaskSet
from repro.sim.engine import simulate


@dataclass(frozen=True)
class SteadyStateEnergy:
    """Per-hyperperiod steady-state figures."""

    hyperperiod: float
    energy_per_hyperperiod: float
    average_power: float
    periodicity_error: float  # |window1 - window2| / energy

    @property
    def is_periodic(self) -> bool:
        """Whether consecutive hyperperiods agreed (they must, for
        deterministic policies and hyperperiod-periodic demands)."""
        return self.periodicity_error < 1e-6


def steady_state_energy(taskset: TaskSet, machine: Machine, policy,
                        demand: Union[str, float, DemandModel,
                                      None] = None,
                        energy_model: Optional[EnergyModel] = None,
                        warmup_hyperperiods: int = 1,
                        resolution: float = 1e-6) -> SteadyStateEnergy:
    """Exact per-hyperperiod energy of the steady-state schedule.

    Requirements: commensurable periods (a finite hyperperiod) and a
    demand pattern that is itself hyperperiod-periodic — worst-case or
    constant-fraction demands always qualify; trace demands qualify when
    their invocation pattern divides the per-task job count per
    hyperperiod.

    Raises
    ------
    SimulationError
        If the task set has no (reasonable) hyperperiod or the two
        measured windows disagree by more than 0.1 % (non-periodic
        demand, or a policy carrying aperiodic state).
    """
    hyperperiod = taskset.hyperperiod(resolution=resolution)
    if hyperperiod is None:
        raise SimulationError(
            "task set has no usable hyperperiod; steady-state analysis "
            "needs commensurable periods")
    if warmup_hyperperiods < 0:
        raise SimulationError(
            f"warmup_hyperperiods must be >= 0, got {warmup_hyperperiods}")
    windows = warmup_hyperperiods + 2
    duration = windows * hyperperiod
    result = simulate(taskset, machine, policy, demand=demand,
                      duration=duration, energy_model=energy_model,
                      record_trace=True)
    boundaries = [warmup_hyperperiods * hyperperiod,
                  (warmup_hyperperiods + 1) * hyperperiod,
                  duration]
    cumulative = _cumulative_energy_at(result, boundaries)
    window1 = cumulative[1] - cumulative[0]
    window2 = cumulative[2] - cumulative[1]
    reference = max(abs(window1), abs(window2), 1e-12)
    error = abs(window1 - window2) / reference
    if error > 1e-3:
        raise SimulationError(
            f"energy not hyperperiod-periodic (windows {window1:g} vs "
            f"{window2:g}); demands or policy state are not periodic")
    return SteadyStateEnergy(
        hyperperiod=hyperperiod,
        energy_per_hyperperiod=(window1 + window2) / 2.0,
        average_power=(window1 + window2) / (2.0 * hyperperiod),
        periodicity_error=error,
    )


def _cumulative_energy_at(result, times):
    """Cumulative trace energy at each requested time (sorted)."""
    out = []
    total = 0.0
    index = 0
    segments = result.trace.segments
    for target in times:
        while index < len(segments) and \
                segments[index].end <= target + 1e-9:
            total += segments[index].energy
            index += 1
        partial = 0.0
        if index < len(segments) and segments[index].start < target - 1e-9:
            segment = segments[index]
            fraction = (target - segment.start) / segment.duration
            partial = segment.energy * fraction
        out.append(total + partial)
    return out
