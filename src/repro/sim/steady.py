"""Steady-state (per-hyperperiod) energy analysis.

Finite simulation horizons leave "tail" artifacts: jobs released near the
end execute partially, so executed-cycle totals differ slightly across
policies (see EXPERIMENTS.md, known deviations).  When the periods are
commensurable and the demand pattern repeats, the whole system — schedule,
frequencies, energy — becomes periodic with the hyperperiod once initial
transients decay, and the energy *per hyperperiod* is an exact, tail-free
figure of merit.

:func:`steady_state_energy` measures it by simulating a warmup plus two
hyperperiods and differencing cumulative energy at the boundaries; it also
verifies periodicity (the two windows must agree), so it doubles as a
system-level regression check.

:func:`try_steady_fast_path` turns the same structure into a sweep
accelerator (the hyperperiod short-circuit): when a cell's task set has a
finite hyperperiod and its demand trace is *verified* hyperperiod-periodic,
it simulates only warmup + two hyperperiods, checks that the two windows
agree (energy **and** executed cycles, to tight tolerance), and
extrapolates both totals over the requested horizon.  Verification failing
at any step returns ``None`` with a reason, and callers fall back to full
simulation — the fast path never guesses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.errors import SimulationError
from repro.hw.energy import EnergyModel
from repro.hw.machine import Machine
from repro.model.demand import (
    ConstantFractionDemand,
    DemandModel,
    TraceDemand,
    WorstCaseDemand,
    demand_from_spec,
)
from repro.model.task import TaskSet
from repro.sim.engine import simulate


@dataclass(frozen=True)
class SteadyStateEnergy:
    """Per-hyperperiod steady-state figures."""

    hyperperiod: float
    energy_per_hyperperiod: float
    average_power: float
    periodicity_error: float  # |window1 - window2| / energy

    @property
    def is_periodic(self) -> bool:
        """Whether consecutive hyperperiods agreed (they must, for
        deterministic policies and hyperperiod-periodic demands)."""
        return self.periodicity_error < 1e-6


def steady_state_energy(taskset: TaskSet, machine: Machine, policy,
                        demand: Union[str, float, DemandModel,
                                      None] = None,
                        energy_model: Optional[EnergyModel] = None,
                        warmup_hyperperiods: int = 1,
                        resolution: float = 1e-6) -> SteadyStateEnergy:
    """Exact per-hyperperiod energy of the steady-state schedule.

    Requirements: commensurable periods (a finite hyperperiod) and a
    demand pattern that is itself hyperperiod-periodic — worst-case or
    constant-fraction demands always qualify; trace demands qualify when
    their invocation pattern divides the per-task job count per
    hyperperiod.

    Raises
    ------
    SimulationError
        If the task set has no (reasonable) hyperperiod or the two
        measured windows disagree by more than 0.1 % (non-periodic
        demand, or a policy carrying aperiodic state).
    """
    hyperperiod = taskset.hyperperiod(resolution=resolution)
    if hyperperiod is None:
        raise SimulationError(
            "task set has no usable hyperperiod; steady-state analysis "
            "needs commensurable periods")
    if warmup_hyperperiods < 0:
        raise SimulationError(
            f"warmup_hyperperiods must be >= 0, got {warmup_hyperperiods}")
    windows = warmup_hyperperiods + 2
    duration = windows * hyperperiod
    result = simulate(taskset, machine, policy, demand=demand,
                      duration=duration, energy_model=energy_model,
                      record_trace=True)
    boundaries = [warmup_hyperperiods * hyperperiod,
                  (warmup_hyperperiods + 1) * hyperperiod,
                  duration]
    cumulative = _cumulative_energy_at(result, boundaries)
    window1 = cumulative[1] - cumulative[0]
    window2 = cumulative[2] - cumulative[1]
    reference = max(abs(window1), abs(window2), 1e-12)
    error = abs(window1 - window2) / reference
    if error > 1e-3:
        raise SimulationError(
            f"energy not hyperperiod-periodic (windows {window1:g} vs "
            f"{window2:g}); demands or policy state are not periodic")
    return SteadyStateEnergy(
        hyperperiod=hyperperiod,
        energy_per_hyperperiod=(window1 + window2) / 2.0,
        average_power=(window1 + window2) / (2.0 * hyperperiod),
        periodicity_error=error,
    )


def _cumulative_energy_at(result, times):
    """Cumulative trace energy at each requested time (sorted)."""
    return [energy for energy, _ in _cumulative_at(result, times)]


def _cumulative_at(result, times):
    """Cumulative (energy, executed cycles) at each requested time
    (sorted), interpolating linearly inside the straddling segment.

    Columnar traces are scanned straight off their buffers (same
    accumulation order, so bit-identical totals) without materializing
    ``Segment`` objects.
    """
    columns = getattr(result.trace, "columns", None)
    if columns is not None:
        starts, ends, cycles, energies, _task, _op, _kind = columns()
        n = len(result.trace)
        out = []
        energy_total = 0.0
        cycle_total = 0.0
        index = 0
        for target in times:
            while index < n and ends[index] <= target + 1e-9:
                energy_total += energies[index]
                cycle_total += cycles[index]
                index += 1
            energy_partial = 0.0
            cycle_partial = 0.0
            if index < n and starts[index] < target - 1e-9:
                fraction = ((target - starts[index])
                            / (ends[index] - starts[index]))
                energy_partial = energies[index] * fraction
                cycle_partial = cycles[index] * fraction
            out.append((energy_total + energy_partial,
                        cycle_total + cycle_partial))
        return out
    out = []
    energy_total = 0.0
    cycle_total = 0.0
    index = 0
    segments = result.trace.segments
    for target in times:
        while index < len(segments) and \
                segments[index].end <= target + 1e-9:
            energy_total += segments[index].energy
            cycle_total += segments[index].cycles
            index += 1
        energy_partial = 0.0
        cycle_partial = 0.0
        if index < len(segments) and segments[index].start < target - 1e-9:
            segment = segments[index]
            fraction = (target - segment.start) / segment.duration
            energy_partial = segment.energy * fraction
            cycle_partial = segment.cycles * fraction
        out.append((energy_total + energy_partial,
                    cycle_total + cycle_partial))
    return out


# ---------------------------------------------------------------------------
# the hyperperiod short-circuit (sweep fast path)
# ---------------------------------------------------------------------------

#: Relative tolerance for the window-agreement verification.  Much tighter
#: than :func:`steady_state_energy`'s 1e-3 regression check: the fast path
#: substitutes extrapolation for simulation, so the two measured windows
#: must agree to nearly full float precision before we trust periodicity.
_FAST_PATH_RTOL = 1e-9

#: The fast path must simulate at least this factor less than the full
#: horizon to be worth the trace-recording overhead.
_MIN_HORIZON_RATIO = 2.0


@dataclass(frozen=True)
class FastPathOutcome:
    """Extrapolated full-horizon figures from a verified periodic window."""

    hyperperiod: float
    simulated_duration: float  # warmup + 2 hyperperiods actually simulated
    horizon: float             # the duration the totals extrapolate to
    total_energy: float
    executed_cycles: float
    energy_per_hyperperiod: float
    periodicity_error: float   # max relative window disagreement observed


def demand_is_hyperperiodic(demand, taskset: TaskSet, hyperperiod: float,
                            duration: float) -> Tuple[bool, str]:
    """Whether ``demand`` provably repeats with ``hyperperiod``.

    Detected, never assumed: worst-case and constant-fraction models are
    periodic by construction; a :class:`~repro.model.demand.TraceDemand`
    is checked entry-by-entry (exact float equality) over every invocation
    the horizon can fire; anything else — random models in particular —
    is rejected.  Returns ``(ok, reason)``.
    """
    if demand is None:
        # The simulator's default: worst case, periodic by construction.
        return True, "ok"
    if isinstance(demand, (str, float, int)):
        try:
            demand = demand_from_spec(demand)
        except Exception:  # unknown spec: let the simulator complain
            return False, "aperiodic-demand"
    if isinstance(demand, (WorstCaseDemand, ConstantFractionDemand)):
        return True, "ok"
    if not isinstance(demand, TraceDemand):
        return False, "aperiodic-demand"
    for task in taskset:
        per_hp = hyperperiod / task.period
        jobs_per_hp = round(per_hp)
        if jobs_per_hp <= 0 or \
                abs(per_hp - jobs_per_hp) > 1e-6 * max(1.0, per_hp):
            return False, "aperiodic-demand"
        values = demand.trace.get(task.name)
        if values is None:
            # Uncovered task: every invocation uses the (constant)
            # fallback fraction — periodic.
            continue
        needed = max(1, math.ceil(duration / task.period))
        if demand.repeat:
            # Cyclic replay: periodic iff shifting by one hyperperiod maps
            # the cycle onto itself.
            length = len(values)
            if any(values[(k + jobs_per_hp) % length] != values[k]
                   for k in range(length)):
                return False, "not-periodic"
        else:
            if needed > len(values):
                return False, "not-periodic"  # tail falls off the trace
            if any(values[k] != values[k - jobs_per_hp]
                   for k in range(jobs_per_hp, needed)):
                return False, "not-periodic"
    return True, "ok"


def try_steady_fast_path(taskset: TaskSet, machine: Machine, policy,
                         demand: Union[str, float, DemandModel, None] = None,
                         duration: float = 0.0,
                         energy_model: Optional[EnergyModel] = None,
                         on_miss: str = "raise",
                         warmup_hyperperiods: int = 1,
                         resolution: float = 1e-6,
                         simulate_fn=None,
                         ) -> Tuple[Optional[FastPathOutcome], str]:
    """Attempt the hyperperiod short-circuit for one simulation.

    Returns ``(outcome, "ok")`` when eligibility and periodicity both
    verify, else ``(None, reason)`` with ``reason`` one of
    ``"no-hyperperiod"`` (incommensurable periods), ``"short-horizon"``
    (the warmup + 2 hyperperiods window is not meaningfully shorter than
    the horizon), ``"aperiodic-demand"`` (demand model cannot be proven
    periodic), or ``"not-periodic"`` (the two measured windows disagreed —
    e.g. a policy carrying aperiodic state).

    ``resolution`` is the hyperperiod detection grid — callers that cache
    or group cells by hyperperiod must pass the same pinned value here,
    or eligibility and grouping can disagree.  ``simulate_fn`` swaps the
    warmup-window simulation entry point (the batch engine substitutes
    its kernel); it must be drop-in compatible with
    :func:`repro.sim.engine.simulate`.

    Schedulability and deadline-miss errors propagate exactly as they
    would from a full simulation (they surface within the first
    hyperperiods), so callers' fallback handling is unchanged.
    """
    hyperperiod = taskset.hyperperiod(resolution=resolution)
    if hyperperiod is None:
        return None, "no-hyperperiod"
    simulated = (warmup_hyperperiods + 2) * hyperperiod
    if simulated * _MIN_HORIZON_RATIO > duration:
        return None, "short-horizon"
    ok, reason = demand_is_hyperperiodic(demand, taskset, hyperperiod,
                                         duration)
    if not ok:
        return None, reason
    sim = simulate if simulate_fn is None else simulate_fn
    result = sim(taskset, machine, policy, demand=demand,
                 duration=simulated, energy_model=energy_model,
                 on_miss=on_miss, record_trace=True)
    warmup = warmup_hyperperiods * hyperperiod
    boundaries = _cumulative_at(
        result, [warmup, warmup + hyperperiod, simulated])
    (energy_w, cycles_w), (energy_1, cycles_1), (energy_2, cycles_2) = \
        boundaries
    window_energy = energy_1 - energy_w
    window_cycles = cycles_1 - cycles_w
    error = max(
        _relative_gap(window_energy, energy_2 - energy_1),
        _relative_gap(window_cycles, cycles_2 - cycles_1))
    if error > _FAST_PATH_RTOL:
        return None, "not-periodic"
    # duration = warmup + k·H + r with 0 <= r < H: splice k verified
    # windows plus the [warmup, warmup + r) prefix measured in-trace.
    whole = int((duration - warmup) // hyperperiod)
    remainder = duration - warmup - whole * hyperperiod
    if remainder < 0.0:  # float guard; duration >= warmup + 2H here
        whole -= 1
        remainder += hyperperiod
    (energy_r, cycles_r), = _cumulative_at(result, [warmup + remainder])
    total_energy = energy_w + whole * window_energy + (energy_r - energy_w)
    executed = cycles_w + whole * window_cycles + (cycles_r - cycles_w)
    return FastPathOutcome(
        hyperperiod=hyperperiod,
        simulated_duration=simulated,
        horizon=duration,
        total_energy=total_energy,
        executed_cycles=executed,
        energy_per_hyperperiod=window_energy,
        periodicity_error=error,
    ), "ok"


def _relative_gap(a: float, b: float) -> float:
    reference = max(abs(a), abs(b), 1e-12)
    return abs(a - b) / reference
