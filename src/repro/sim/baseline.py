"""Un-indexed reference engine: the pre-refactor linear hot paths.

:class:`BaselineSimulator` re-implements the event-queue primitives of
:class:`~repro.sim.engine.Simulator` exactly as they were before the engine
moved to indexed data structures (release min-heap, lazy-deletion ready
heap, admission index pointer, cached policy wakeup):

* ``_next_event_time`` re-scans every task state with ``min()``;
* the ready queue is a plain list — picking the highest-priority job is a
  full ``min(..., key=priority.key)`` scan, removal is ``list.remove``;
* admissions are consumed with ``pop(0)`` from the sorted list;
* the policy's ``wakeup_time()`` is re-queried on every segment;
* deferred admissions are re-checked by scanning *all* task states;
* ``earliest_deadline()`` re-scans every task state with ``min()``.

Two jobs:

1. **Semantic reference.**  The indexed engine must produce bit-for-bit
   identical results (energy, misses, job outcomes, switch counts) — the
   property tests in ``tests/sim/test_event_queue.py`` pin the equivalence
   on randomized workloads.  Unlike :class:`~repro.sim.ticksim.TickSimulator`
   (an independent quantized model, agreeing only within tick error), this
   class shares the exact event semantics, so agreement is exact.
2. **Perf baseline.**  ``benchmarks/write_bench_json.py`` times both
   engines on canonical workloads and records the speedup in
   ``BENCH_engine.json``, giving future PRs a trajectory to compare
   against.

Do not use this class for experiments; it is O(n) per event by design.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.errors import SimulationError
from repro.model.job import Job
from repro.sim.engine import _EPS, Simulator, _TaskState


class BaselineSimulator(Simulator):
    """Pre-refactor engine semantics with linear-scan event handling."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._ready: List[Job] = []

    # -- ready queue: plain list ---------------------------------------
    def _ready_add(self, job: Job) -> None:
        self._ready.append(job)

    def _ready_discard(self, job: Job) -> None:
        self._ready.remove(job)

    def _pick_job(self) -> Optional[Job]:
        if not self._ready:
            return None
        return min(self._ready, key=self.priority.key)

    # -- earliest deadline: rescan all states ---------------------------
    def earliest_deadline(self) -> Optional[float]:
        deadlines = [s.job.absolute_deadline
                     for s in self._states.values() if s.job is not None]
        return min(deadlines) if deadlines else None

    # -- release queue: rescan all states ------------------------------
    def _schedule_release(self, state: _TaskState) -> None:
        pass  # next_release lives only on the state; peeking rescans

    def _peek_next_release(self) -> float:
        return min((s.next_release for s in self._states.values()),
                   default=math.inf)

    # -- admissions: consume the head of the sorted list ----------------
    def _process_due_admissions(self) -> bool:
        progressed = False
        while self._admissions and \
                self._admissions[0].time <= self.time + _EPS:
            admission = self._admissions.pop(0)
            self._admit(admission)
            progressed = True
        self._check_deferred_releases()
        return progressed

    def _next_admission_time(self) -> float:
        return self._admissions[0].time if self._admissions else math.inf

    # -- deferred releases: scan every state ----------------------------
    def _check_deferred_releases(self) -> None:
        for state in self._states.values():
            if not state.pending_defer:
                continue
            if all(job.is_complete for job in state.defer_blockers or ()):
                state.pending_defer = False
                state.defer_blockers = None
                state.next_release = self.time

    # -- releases: scan the whole task set ------------------------------
    def _process_due_releases(self) -> bool:
        released = []
        for task in self.taskset:
            state = self._states[task.name]
            while state.next_release <= self.time + _EPS \
                    and state.next_release < self.duration - _EPS:
                self._create_job(state)
                released.append(task)
        zero_demand = []
        for task in released:
            job = self._states[task.name].job
            assert job is not None
            if job.demand <= _EPS and not job.is_complete:
                job.completion_time = self.time
                zero_demand.append(task)
                cb = self._obs_completion
                if cb is not None:
                    cb(self, job)
        if released:
            # Same batch-invalidation contract as the indexed engine: all
            # of the batch's jobs exist before the first per-task hook.
            invalidate = getattr(self.policy, "on_releases_invalidate",
                                 None)
            if invalidate is not None:
                invalidate(self, released)
        for task in released:
            self._policy_hook(self.policy.on_release, task)
        for task in zero_demand:
            self._policy_hook(self.policy.on_completion, task)
        return bool(released)

    # -- wakeup: re-query the policy every time --------------------------
    def _policy_wakeup_time(self) -> Optional[float]:
        getter = getattr(self.policy, "wakeup_time", None)
        return getter() if getter is not None else None

    # -- fixed-point loop: the historical flat bound ---------------------
    def _process_due_events(self) -> None:
        if self._obs_event is not None:
            self._process_due_events_profiled()
            return
        for _ in range(100_000):  # pre-refactor defensive bound
            progressed = self._process_due_admissions()
            progressed |= self._process_due_releases()
            progressed |= self._process_due_wakeup()
            if not progressed:
                return
        raise SimulationError(
            "event processing did not reach a fixed point")
