"""An independent, tick-quantized reference simulator.

The main engine (:mod:`repro.sim.engine`) is event-driven and exact.  This
module is a deliberately *separate* implementation — fixed time quantum,
straight-line code, no shared scheduling logic — used by the test suite to
cross-validate the engine: on the same workload, the two must agree on
energy to within the quantization error and on every deadline outcome.

A second implementation that shared the engine's internals would inherit
its bugs; this one only reuses the passive data types (tasks, jobs,
machines, demand models) and the DVS policy objects themselves (which are
part of the specification being validated).

Resolution: hooks fire at tick boundaries, so completions and the
frequency changes they trigger are delayed by up to one tick; energy
differs from the exact engine by at most roughly
``ticks_with_changes × dt × max_power``.  Use small ticks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.errors import SimulationError
from repro.hw.energy import EnergyModel
from repro.hw.machine import Machine
from repro.hw.operating_point import OperatingPoint
from repro.model.demand import DemandModel, WorstCaseDemand, demand_from_spec
from repro.model.job import Job
from repro.model.task import Task, TaskSet
from repro.sim.timeline import make_trace

_EPS = 1e-9


class TickResult:
    """Minimal result record of a tick simulation."""

    def __init__(self):
        self.energy = 0.0
        self.jobs: List[Job] = []
        self.missed: List[Job] = []
        self.trace = None  # SimTimeline/ExecutionTrace when recording

    @property
    def executed_cycles(self) -> float:
        return sum(job.executed for job in self.jobs)

    @property
    def met_all_deadlines(self) -> bool:
        return not self.missed


class TickSimulator:
    """Quantized-time reference simulator.

    Parameters mirror :class:`~repro.sim.engine.Simulator` where they
    overlap; switching overheads and dynamic admissions are not supported
    (cross-validation uses the common feature set).
    """

    def __init__(self, taskset: TaskSet, machine: Machine, policy,
                 demand: Union[str, float, DemandModel, None] = None,
                 duration: float = 100.0, tick: float = 0.01,
                 energy_model: Optional[EnergyModel] = None,
                 scheduler: Optional[str] = None,
                 record_trace: bool = False,
                 trace_backend: str = "array",
                 instrument=None):
        if tick <= 0:
            raise SimulationError(f"tick must be positive, got {tick}")
        if duration <= 0:
            raise SimulationError(
                f"duration must be positive, got {duration}")
        self.taskset = taskset
        self.machine = machine
        self.policy = policy
        if demand is None:
            self.demand_model: DemandModel = WorstCaseDemand()
        else:
            self.demand_model = demand_from_spec(demand)
        self.duration = duration
        self.tick = tick
        self.energy_model = energy_model or EnergyModel()
        self.scheduler = (scheduler
                          or getattr(policy, "scheduler", "edf")).lower()
        if self.scheduler not in ("edf", "rm"):
            raise SimulationError(f"unknown scheduler {self.scheduler!r}")

        # run state (SchedulerView protocol below reads these)
        self.time = 0.0
        self._jobs: Dict[str, Optional[Job]] = {t.name: None
                                                for t in taskset}
        self._next_release: Dict[str, float] = {t.name: 0.0
                                                for t in taskset}
        self._invocation: Dict[str, int] = {t.name: 0 for t in taskset}
        self._point: OperatingPoint = machine.fastest
        self._result = TickResult()
        self._result.trace = make_trace(record_trace, trace_backend)
        self._trace_record = (self._result.trace.record
                              if self._result.trace is not None else None)

        # -- instrumentation (see repro.obs); same caching scheme as the
        # event-driven engine: bound-method-or-None per hook.  The tick
        # simulator has no admission/wakeup machinery, so ``on_event``
        # self-profiling does not apply here.
        self.instrument = instrument
        if instrument is not None:
            self._obs_counters = getattr(instrument, "counters", None)
            self._obs_release = getattr(instrument, "on_release", None)
            self._obs_completion = getattr(instrument, "on_completion",
                                           None)
            self._obs_miss = getattr(instrument, "on_deadline_miss", None)
            self._obs_ctx = getattr(instrument, "on_context_switch", None)
            self._obs_freq = getattr(instrument, "on_frequency_change",
                                     None)
        else:
            self._obs_counters = self._obs_release = None
            self._obs_completion = self._obs_miss = self._obs_ctx = None
            self._obs_freq = None
        self._obs_track_ctx = (self._obs_counters is not None
                               or self._obs_ctx is not None)
        self._last_exec_job: Optional[Job] = None

    # -- SchedulerView protocol (duck-typed) -----------------------------
    def job_of(self, task: Task) -> Optional[Job]:
        return self._jobs[task.name]

    def current_deadline(self, task: Task) -> Optional[float]:
        job = self._jobs[task.name]
        return job.absolute_deadline if job else None

    def earliest_deadline(self) -> Optional[float]:
        deadlines = [j.absolute_deadline for j in self._jobs.values() if j]
        return min(deadlines) if deadlines else None

    def worst_case_remaining(self, task: Task) -> float:
        job = self._jobs[task.name]
        return job.worst_case_remaining if job else 0.0

    def executed_in_invocation(self, task: Task) -> float:
        job = self._jobs[task.name]
        return job.executed if job else 0.0

    def invocation_of(self, task: Task) -> int:
        job = self._jobs[task.name]
        return job.index if job else -1

    @property
    def busy_time(self) -> float:  # pragma: no cover - AveragingDVS only
        raise SimulationError("TickSimulator does not track busy_time")

    @property
    def current_point(self) -> OperatingPoint:
        return self._point

    def _apply_point(self, new_point: Optional[OperatingPoint]) -> None:
        """Adopt a policy-returned operating point, firing the obs hook."""
        if new_point is None or new_point == self._point:
            return
        old_point = self._point
        self._point = new_point
        cb = self._obs_freq
        if cb is not None:
            cb(self, old_point, new_point)

    # -- main loop ----------------------------------------------------------
    def run(self) -> TickResult:
        point = self.policy.setup(self)
        if point is not None:
            self._point = point
        obs = self.instrument
        if obs is not None:
            obs.on_run_start(self)
        steps = int(round(self.duration / self.tick))
        for step in range(steps):
            self.time = step * self.tick
            self._release_due()
            job = self._pick()
            record = self._trace_record
            if job is None:
                idle_hook = getattr(self.policy, "on_idle", None)
                if idle_hook is not None:
                    self._apply_point(idle_hook(self))
                energy = self.energy_model.idle_energy(self._point,
                                                       self.tick)
                self._result.energy += energy
                if record is not None:
                    record(self.time, self.time + self.tick, None,
                           self._point, 0.0, energy, "idle")
                continue
            if self._obs_track_ctx and job is not self._last_exec_job:
                self._note_context_switch(job)
            frequency = self._point.frequency
            cycles = min(self.tick * frequency, job.remaining)
            job.executed += cycles
            energy = self.energy_model.execution_energy(self._point, cycles)
            self._result.energy += energy
            run_end = self.time + cycles / frequency
            if record is not None:
                record(self.time, run_end, job.task.name, self._point,
                       cycles, energy, "run")
            leftover = self.tick - cycles / frequency
            if leftover > _EPS:
                energy = self.energy_model.idle_energy(self._point, leftover)
                self._result.energy += energy
                if record is not None:
                    record(run_end, self.time + self.tick, None,
                           self._point, 0.0, energy, "idle")
            if job.remaining <= _EPS:
                job.executed = job.demand
                job.completion_time = self.time + cycles / frequency
                cb = self._obs_completion
                if cb is not None:
                    cb(self, job)
                self._apply_point(self.policy.on_completion(self, job.task))
        self.time = self.duration
        self._final_check()
        if obs is not None:
            obs.on_run_end(self, self._result)
        return self._result

    def _note_context_switch(self, job: Job) -> None:
        """Account a change of the executing job (see :mod:`repro.obs`)."""
        prev = self._last_exec_job
        self._last_exec_job = job
        preempted = prev is not None and prev.completion_time is None
        counters = self._obs_counters
        if counters is not None:
            counters.context_switches += 1
            if preempted:
                counters.preemptions += 1
        cb = self._obs_ctx
        if cb is not None:
            cb(self, prev, job, preempted)

    # -- internals -----------------------------------------------------------
    def _release_due(self) -> None:
        released = []
        for task in self.taskset:
            name = task.name
            while self._next_release[name] <= self.time + _EPS and \
                    self._next_release[name] < self.duration - _EPS:
                old = self._jobs[name]
                if old is not None and not old.is_complete:
                    self._result.missed.append(old)
                    cb = self._obs_miss
                    if cb is not None:
                        cb(self, old)
                release = self._next_release[name]
                demand = min(
                    self.demand_model.demand(task, self._invocation[name]),
                    task.wcet)
                job = Job(task=task, release_time=release, demand=demand,
                          index=self._invocation[name])
                if demand <= _EPS:
                    job.completion_time = release
                self._jobs[name] = job
                self._invocation[name] += 1
                self._next_release[name] = release + task.period
                self._result.jobs.append(job)
                released.append(task)
                cb = self._obs_release
                if cb is not None:
                    cb(self, job)
                if job.is_complete:
                    cb = self._obs_completion
                    if cb is not None:
                        cb(self, job)
        if released:
            # Same batch-invalidation contract as the event-driven engines.
            invalidate = getattr(self.policy, "on_releases_invalidate",
                                 None)
            if invalidate is not None:
                invalidate(self, released)
        for task in released:
            self._apply_point(self.policy.on_release(self, task))
            job = self._jobs[task.name]
            if job is not None and job.is_complete and job.demand <= _EPS:
                self._apply_point(self.policy.on_completion(self, task))

    def _pick(self) -> Optional[Job]:
        ready = [j for j in self._jobs.values()
                 if j is not None and not j.is_complete]
        if not ready:
            return None
        if self.scheduler == "edf":
            return min(ready, key=lambda j: (j.absolute_deadline,
                                             j.task.name))
        return min(ready, key=lambda j: (j.task.period, j.task.name))

    def _final_check(self) -> None:
        for job in self._result.jobs:
            if not job.is_complete and \
                    job.absolute_deadline <= self.duration + _EPS and \
                    job not in self._result.missed:
                self._result.missed.append(job)
                cb = self._obs_miss
                if cb is not None:
                    cb(self, job)
