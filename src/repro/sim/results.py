"""Simulation results: energy breakdowns, deadline accounting, summaries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.hw.operating_point import OperatingPoint
from repro.model.job import Job, JobOutcome
from repro.model.task import TaskSet
from repro.sim.trace import ExecutionTrace

if False:  # typing-only; avoids a circular import at runtime
    from repro.sim.timeline import SimTimeline


@dataclass
class DeadlineMiss:
    """Record of one missed deadline."""

    task_name: str
    release_time: float
    deadline: float
    demand: float
    executed: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.task_name} released {self.release_time:g} missed "
                f"deadline {self.deadline:g} ({self.executed:g}/"
                f"{self.demand:g} cycles done)")


@dataclass
class EnergyBreakdown:
    """Energy split by activity and by operating point.

    ``execution[point]`` is the energy spent running task cycles at that
    point; ``idle`` and ``switch`` are halted-time energies.
    """

    execution: Dict[OperatingPoint, float] = field(default_factory=dict)
    idle: float = 0.0
    switch: float = 0.0

    def add_execution(self, point: OperatingPoint, energy: float) -> None:
        self.execution[point] = self.execution.get(point, 0.0) + energy

    @property
    def execution_total(self) -> float:
        return sum(self.execution.values())

    @property
    def total(self) -> float:
        return self.execution_total + self.idle + self.switch


@dataclass
class SimResult:
    """Everything a simulation run produces.

    Attributes
    ----------
    taskset:
        The task set simulated.
    policy_name:
        Name of the DVS policy.
    scheduler_name:
        "edf" or "rm".
    duration:
        Simulated time span.
    energy:
        Energy breakdown; ``energy.total`` is the headline number.
    jobs:
        Every job released during the run (completed or not).
    misses:
        Deadline misses detected (empty for correct RT-DVS policies on
        schedulable task sets).
    switches:
        Number of operating-point changes performed.
    trace:
        Execution trace, present when the run recorded one — a columnar
        :class:`~repro.sim.timeline.SimTimeline` by default, or a legacy
        :class:`~repro.sim.trace.ExecutionTrace` under
        ``trace_backend="segments"``.  The two expose the same reading
        surface.
    """

    taskset: TaskSet
    policy_name: str
    scheduler_name: str
    duration: float
    energy: EnergyBreakdown
    jobs: List[Job]
    misses: List[DeadlineMiss]
    switches: int
    trace: Optional[Union[ExecutionTrace, "SimTimeline"]] = None

    @property
    def total_energy(self) -> float:
        """Total energy dissipated over the run."""
        return self.energy.total

    @property
    def executed_cycles(self) -> float:
        """Total task cycles executed."""
        return sum(job.executed for job in self.jobs)

    @property
    def average_power(self) -> float:
        """Mean power over the run."""
        if self.duration <= 0:
            return 0.0
        return self.total_energy / self.duration

    @property
    def deadline_miss_count(self) -> int:
        return len(self.misses)

    @property
    def met_all_deadlines(self) -> bool:
        return not self.misses

    def job_outcomes(self) -> Dict[JobOutcome, int]:
        """Histogram of job outcomes at the end of the run."""
        counts: Dict[JobOutcome, int] = {o: 0 for o in JobOutcome}
        for job in self.jobs:
            counts[job.outcome(self.duration)] += 1
        return counts

    def normalized_to(self, reference: "SimResult") -> float:
        """This run's energy normalized to a reference run (the paper
        normalizes to unmodified EDF)."""
        if reference.total_energy <= 0:
            raise ZeroDivisionError(
                "reference run consumed no energy; cannot normalize")
        return self.total_energy / reference.total_energy

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        outcomes = self.job_outcomes()
        return (
            f"{self.policy_name} ({self.scheduler_name.upper()}): "
            f"energy={self.total_energy:.4g} over t=[0,{self.duration:g}], "
            f"{len(self.jobs)} jobs "
            f"({outcomes[JobOutcome.COMPLETED]} completed, "
            f"{outcomes[JobOutcome.MISSED]} missed, "
            f"{outcomes[JobOutcome.UNFINISHED]} unfinished), "
            f"{self.switches} frequency switches")
