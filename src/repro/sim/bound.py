"""Theoretical lower bound on energy (Sec. 3.2 of the paper).

"This lower bound reflects execution throughput only, and does not consider
any timing issues ...  It is computed by taking the total number of task
computation cycles in the simulation, and determining the absolute minimum
energy with which these can be executed over the simulation time duration
with the given platform frequency and voltage specification."

Formally: given ``W`` cycles to execute within time ``T`` on a machine with
operating points ``(f_j, V_j)``, minimize ``Σ_j w_j V_j²`` subject to
``Σ_j w_j = W``, ``Σ_j w_j / f_j <= T``, ``w_j >= 0``.

This linear program is solved exactly by time-sharing between at most two
operating points that are adjacent on the lower convex hull of the
(time-per-cycle, energy-per-cycle) = (1/f, V²) curve.  Idle time is free
(the bound assumes a perfect halt, which only makes the bound lower —
i.e. safe).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import MachineError, SimulationError
from repro.hw.machine import Machine
from repro.hw.operating_point import OperatingPoint
from repro.sim.results import SimResult


def _lower_hull(points: Sequence[OperatingPoint]
                ) -> List[OperatingPoint]:
    """Operating points on the lower convex hull of (1/f, V²).

    Points above the hull are never part of an optimal mix (some blend of
    their neighbours executes cycles both faster and cheaper).  The input
    is sorted by frequency; the output is sorted by decreasing 1/f, i.e.
    increasing frequency.
    """
    # Work in (x, y) = (1/f, V²); x is decreasing as frequency increases.
    coords = [(1.0 / p.frequency, p.energy_per_cycle, p) for p in points]
    coords.sort(key=lambda c: (-c[0], c[1]))  # increasing frequency
    hull: List[Tuple[float, float, OperatingPoint]] = []
    for c in coords:
        while len(hull) >= 2 and _turns_up(hull[-2], hull[-1], c):
            hull.pop()
        # Drop dominated points: same or larger x with larger y.
        while hull and hull[-1][1] >= c[1] and hull[-1][0] >= c[0]:
            hull.pop()
        hull.append(c)
    return [c[2] for c in hull]


def _turns_up(a, b, c) -> bool:
    """True when b lies on or above segment a-c (not on the lower hull).

    The traversal runs in *decreasing* x (increasing frequency), so a point
    above the a-c chord has a non-negative cross product (a,b) × (a,c).
    """
    cross = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
    return cross >= 0.0


def minimum_energy_for_cycles(machine: Machine, cycles: float,
                              duration: float) -> float:
    """Minimum energy to execute ``cycles`` within ``duration``.

    Raises :class:`SimulationError` when the workload is infeasible even at
    full speed (``cycles > duration``, since full speed executes one cycle
    per time unit).
    """
    if cycles < 0:
        raise SimulationError(f"cycles must be >= 0, got {cycles}")
    if duration <= 0:
        raise SimulationError(f"duration must be positive, got {duration}")
    if cycles == 0:
        return 0.0
    required = cycles / duration  # average relative frequency needed
    if required > 1.0 + 1e-9:
        raise SimulationError(
            f"workload infeasible: needs average relative frequency "
            f"{required:.4f} > 1.0")
    hull = _lower_hull(machine.points)
    slowest = hull[0]
    if required <= slowest.frequency:
        # Run everything at the cheapest point, idle the rest for free.
        return cycles * slowest.energy_per_cycle
    for lo, hi in zip(hull, hull[1:]):
        if lo.frequency - 1e-12 <= required <= hi.frequency + 1e-12:
            return _mix_energy(lo, hi, cycles, duration)
    # required is within (slowest, 1.0]; the loop above must have matched.
    raise MachineError(
        f"no hull pair brackets required frequency {required}")  # pragma: no cover


def _mix_energy(lo: OperatingPoint, hi: OperatingPoint, cycles: float,
                duration: float) -> float:
    """Energy of the optimal time-share between two operating points.

    Solve ``t_lo + t_hi = duration`` and
    ``f_lo t_lo + f_hi t_hi = cycles`` for the split, then price each
    point's cycles at its V².
    """
    if abs(hi.frequency - lo.frequency) < 1e-12:
        return cycles * lo.energy_per_cycle
    t_hi = (cycles - lo.frequency * duration) / (hi.frequency - lo.frequency)
    t_hi = min(max(t_hi, 0.0), duration)
    t_lo = duration - t_hi
    return (t_lo * lo.frequency * lo.energy_per_cycle
            + t_hi * hi.frequency * hi.energy_per_cycle)


def trace_executed_cycles(trace) -> float:
    """Total executed cycles, reduced vectorized off a columnar trace.

    One masked sum over the cycles column of a
    :class:`~repro.sim.timeline.SimTimeline` — no ``Segment`` objects, no
    per-job Python loop.  Equals ``result.executed_cycles`` up to float
    summation order and sub-``1e-12`` slices the trace drops.
    """
    columns = getattr(trace, "columns", None)
    if columns is None:
        return sum(s.cycles for s in trace.run_segments())
    import numpy as np
    if len(trace) == 0:
        return 0.0
    _start, _end, cycles, _energy, _task, _op, kind = columns()
    cycles = np.frombuffer(cycles, dtype=np.float64)
    kind = np.frombuffer(kind, dtype=np.int8)
    return float(np.sum(cycles[kind == 0]))


def theoretical_bound(result: SimResult, machine: Machine,
                      cycle_energy_scale: float = 1.0,
                      cycles: float = None) -> float:
    """The paper's lower bound for the workload a simulation executed.

    Takes the cycles actually executed in ``result`` and spreads them
    optimally over the run's duration.  ``cycle_energy_scale`` must match
    the energy model used in the run for the comparison to be meaningful.
    ``cycles`` overrides the per-job total — e.g. a vectorized
    :func:`trace_executed_cycles` reduction on runs that kept a columnar
    trace.
    """
    if cycles is None:
        cycles = result.executed_cycles
    raw = minimum_energy_for_cycles(machine, cycles, result.duration)
    return raw * cycle_energy_scale
