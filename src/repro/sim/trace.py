"""Execution traces: what ran when, at which operating point.

Traces are the raw material behind the paper's worked-example figures
(Figs. 2, 3, 5 and 7): a sequence of contiguous segments, each either
executing one task or idling, at one operating point.  The module also
renders traces as ASCII timelines resembling those figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.hw.operating_point import OperatingPoint

#: Segments shorter than this are dropped when recording (pure bookkeeping
#: artifacts of coincident events).
_MIN_SEGMENT = 1e-12


@dataclass(frozen=True, slots=True)
class Segment:
    """A maximal interval of homogeneous processor activity.

    Attributes
    ----------
    start, end:
        Segment bounds (``start < end``).
    task:
        Name of the executing task, or ``None`` while idle or halted for an
        operating-point switch.
    point:
        Operating point during the segment.
    cycles:
        Cycles executed (0 for idle/halt segments).
    energy:
        Energy dissipated in the segment.
    kind:
        ``"run"``, ``"idle"`` or ``"switch"``.
    """

    start: float
    end: float
    task: Optional[str]
    point: OperatingPoint
    cycles: float
    energy: float
    kind: str = "run"

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.task if self.task else self.kind
        return (f"[{self.start:g}, {self.end:g}) {label} @ f={self.point.frequency:g}"
                f" ({self.cycles:g} cyc, {self.energy:g} E)")


class ExecutionTrace:
    """An append-only list of :class:`Segment` with merge-on-append.

    Consecutive segments with identical (task, point, kind) are coalesced so
    the trace shows maximal intervals, like the paper's figures.
    """

    def __init__(self):
        self._segments: List[Segment] = []

    def record(self, start: float, end: float, task: Optional[str],
               point: OperatingPoint, cycles: float, energy: float,
               kind: str = "run") -> None:
        """Recorder entry point shared with
        :class:`~repro.sim.timeline.SimTimeline`: box the slice into a
        :class:`Segment` and append it."""
        self.append(Segment(start=start, end=end, task=task, point=point,
                            cycles=cycles, energy=energy, kind=kind))

    def append(self, segment: Segment) -> None:
        """Add a segment, merging with the previous one when homogeneous."""
        if segment.duration <= _MIN_SEGMENT:
            return
        if self._segments:
            last = self._segments[-1]
            mergeable = (last.task == segment.task
                         and last.point == segment.point
                         and last.kind == segment.kind
                         and abs(last.end - segment.start) <= 1e-9)
            if mergeable:
                self._segments[-1] = Segment(
                    start=last.start, end=segment.end, task=last.task,
                    point=last.point, cycles=last.cycles + segment.cycles,
                    energy=last.energy + segment.energy, kind=last.kind)
                return
        self._segments.append(segment)

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    def __getitem__(self, index) -> Segment:
        return self._segments[index]

    @property
    def segments(self) -> Tuple[Segment, ...]:
        return tuple(self._segments)

    def run_segments(self) -> List[Segment]:
        """Only the segments in which a task executed."""
        return [s for s in self._segments if s.kind == "run"]

    def segments_for(self, task_name: str) -> List[Segment]:
        """Run segments of one task."""
        return [s for s in self._segments if s.task == task_name]

    def frequency_profile(self) -> List[Tuple[float, float]]:
        """(time, relative frequency) steps — the tops of the paper's
        figures.  Returns the frequency in effect starting at each time."""
        profile: List[Tuple[float, float]] = []
        for segment in self._segments:
            frequency = segment.point.frequency
            if not profile or profile[-1][1] != frequency:
                profile.append((segment.start, frequency))
        return profile

    def busy_time(self) -> float:
        """Total time spent executing tasks."""
        return sum(s.duration for s in self._segments if s.kind == "run")

    def idle_time(self) -> float:
        """Total time spent idle (excluding switch halts)."""
        return sum(s.duration for s in self._segments if s.kind == "idle")


def render_trace(trace: ExecutionTrace, width: int = 72,
                 end: Optional[float] = None) -> str:
    """Render a trace as an ASCII timeline.

    One row per task plus a frequency row, in the spirit of the paper's
    Figs. 2/3/5/7.  ``width`` columns cover ``[0, end]`` (``end`` defaults
    to the trace's last segment).
    """
    segments = trace.segments
    if not segments:
        return "(empty trace)"
    horizon = end if end is not None else segments[-1].end
    if horizon <= 0:
        return "(empty trace)"
    tasks: List[str] = []
    for segment in segments:
        if segment.task and segment.task not in tasks:
            tasks.append(segment.task)

    def column(t: float) -> int:
        return min(width - 1, max(0, int(t / horizon * width)))

    freq_row = [" "] * width
    rows = {name: [" "] * width for name in tasks}
    for segment in segments:
        c0, c1 = column(segment.start), column(min(segment.end, horizon))
        if segment.start >= horizon:
            continue
        for c in range(c0, max(c0 + 1, c1)):
            freq_row[c] = _frequency_glyph(segment.point.frequency)
            if segment.task:
                rows[segment.task][c] = "#"
    lines = ["freq  |" + "".join(freq_row) + "|"]
    for name in tasks:
        lines.append(f"{name:<6}|" + "".join(rows[name]) + "|")
    lines.append(f"       0{'':{width - 10}}{horizon:g}")
    legend = ("glyphs: frequency . <=0.25, : <=0.5, + <=0.75, * <=1.0; "
              "# executing")
    lines.append(legend)
    return "\n".join(lines)


def _frequency_glyph(frequency: float) -> str:
    if frequency <= 0.25:
        return "."
    if frequency <= 0.5:
        return ":"
    if frequency <= 0.75:
        return "+"
    return "*"
