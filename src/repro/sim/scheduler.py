"""Priority policies: EDF and RM.

The paper integrates its DVS algorithms with "the two most-studied real-time
schedulers, Rate Monotonic (RM) and Earliest-Deadline-First (EDF)"
(Sec. 2.2).  A priority policy maps a ready job to a sortable key; the
simulator always runs the ready job with the smallest key (preemptively).

Ties are broken by task index (construction order in the task set) and then
by invocation index, which makes simulations fully deterministic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

from repro.model.job import Job
from repro.model.task import TaskSet


class PriorityPolicy(ABC):
    """Strategy assigning priorities to ready jobs (lower key runs first)."""

    #: Short identifier used to match DVS policies to schedulers.
    name: str = ""

    def __init__(self, taskset: TaskSet):
        self._index = {task.name: i for i, task in enumerate(taskset)}

    @abstractmethod
    def key(self, job: Job) -> Tuple:
        """Sort key; the ready job with the smallest key executes."""

    def task_index(self, job: Job) -> int:
        """Deterministic tie-break component."""
        return self._index[job.task.name]

    def register_task(self, task) -> None:
        """Add a dynamically admitted task to the tie-break index."""
        if task.name not in self._index:
            self._index[task.name] = len(self._index)


class EDFPriority(PriorityPolicy):
    """Earliest-Deadline-First: dynamic priority by absolute deadline."""

    name = "edf"

    def key(self, job: Job) -> Tuple:
        return (job.absolute_deadline, self.task_index(job), job.index)


class RMPriority(PriorityPolicy):
    """Rate-Monotonic: static priority by period (shortest period first)."""

    name = "rm"

    def key(self, job: Job) -> Tuple:
        return (job.task.period, self.task_index(job), job.index)


def make_priority(name: str, taskset: TaskSet) -> PriorityPolicy:
    """Build the priority policy called ``name`` ("edf" or "rm")."""
    lowered = name.strip().lower()
    if lowered == "edf":
        return EDFPriority(taskset)
    if lowered == "rm":
        return RMPriority(taskset)
    raise ValueError(f"unknown scheduler {name!r}; expected 'edf' or 'rm'")
