"""Independent post-hoc validation of recorded schedules.

Given a :class:`~repro.sim.results.SimResult` that recorded a trace, the
validator re-derives — without trusting the engine — that:

* **priority conformance**: whenever a task executes, no ready,
  higher-priority job was waiting (EDF: earlier absolute deadline; RM:
  shorter period);
* **work conservation**: the processor never idles while any job is
  ready;
* **budget conformance**: each job executes exactly its demand (when it
  completes) and never more;
* **energy conformance**: re-pricing every segment (cycles × V², idle at
  idle-level) reproduces the reported total energy;
* **timing sanity**: segments tile ``[0, duration]`` without overlap and
  cycles are consistent with segment length × frequency.

Any violation is returned as a human-readable finding; an empty list
means the schedule is valid.  The property-test suite runs this checker
over randomized workloads for every policy, which guards the *engine*
(not just the policies) against regressions.

The module also exposes :func:`rederive_counters`, which recomputes the
bookkeeping the instrumentation layer (:mod:`repro.obs`) counts at run
time — context switches, preemptions, deadline misses, operating-point
transitions — from nothing but the trace and the job list, so collector
output can be cross-checked against an independent derivation.

Tolerances are *relative* wherever the compared quantity accumulates
with simulated time or demand (cycles, energy): a flat epsilon that is
comfortable at ``duration=100`` drowns in representation error at
``duration=1e6``, and conversely over-tightens on large per-job demands.
``_EPS`` is therefore scaled by ``max(1.0, magnitude)`` in those checks.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.hw.energy import EnergyModel
from repro.model.job import Job, JobOutcome
from repro.sim.results import SimResult
from repro.sim.trace import Segment

_EPS = 1e-6

#: All available checks, in execution order.  The segment-linear trio
#: (tiling, cycles, energy) runs vectorized over the columns when the
#: trace is a :class:`~repro.sim.timeline.SimTimeline`; budget and
#: priority cross-reference the job list per segment and therefore scale
#: with segments × jobs — select checks on very long traces accordingly.
ALL_CHECKS = ("tiling", "cycles", "budget", "priority", "energy")


@dataclass(frozen=True)
class Violation:
    """One validation finding."""

    kind: str
    time: float
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] t={self.time:g}: {self.detail}"


def validate_schedule(result: SimResult,
                      energy_model: Optional[EnergyModel] = None,
                      work_conserving: bool = True,
                      checks=ALL_CHECKS) -> List[Violation]:
    """Run the selected checks; returns the list of violations (empty =
    valid).

    Parameters
    ----------
    result:
        A run with ``record_trace=True``.
    energy_model:
        The model the run used (defaults to a perfect-halt model); needed
        to re-price the energy.
    work_conserving:
        Check that the processor never idles with ready work.  True for
        every policy in this library (EDF/RM are work-conserving); turn
        off for policies that deliberately insert idle time.
    checks:
        Which checks to run (default: all of :data:`ALL_CHECKS`).
    """
    if result.trace is None:
        raise SimulationError(
            "validate_schedule needs a run with record_trace=True")
    unknown = set(checks) - set(ALL_CHECKS)
    if unknown:
        raise SimulationError(
            f"unknown validation checks {sorted(unknown)}; "
            f"available: {ALL_CHECKS}")
    violations: List[Violation] = []
    if "tiling" in checks:
        violations.extend(_check_tiling(result))
    if "cycles" in checks:
        violations.extend(_check_cycle_rates(result))
    if "budget" in checks:
        violations.extend(_check_budgets(result))
    if "priority" in checks:
        violations.extend(_check_priorities(result, work_conserving))
    if "energy" in checks:
        violations.extend(_check_energy(result,
                                        energy_model or EnergyModel()))
    return violations


def _trace_columns(result: SimResult):
    """(start, end, cycles, op, kind) as numpy views when the trace is
    columnar, else ``None`` (legacy per-segment loops apply)."""
    columns = getattr(result.trace, "columns", None)
    if columns is None or len(result.trace) == 0:
        return None
    import numpy as np
    start, end, cycles, _energy, _task, op, kind = columns()
    return (np.frombuffer(start, dtype=np.float64),
            np.frombuffer(end, dtype=np.float64),
            np.frombuffer(cycles, dtype=np.float64),
            np.frombuffer(op, dtype=np.dtype(f"i{op.itemsize}")),
            np.frombuffer(kind, dtype=np.int8))


# ---------------------------------------------------------------------------

def _check_tiling(result: SimResult) -> List[Violation]:
    if len(result.trace) == 0:
        return [Violation("tiling", 0.0, "empty trace")]
    cols = _trace_columns(result)
    if cols is not None:
        import numpy as np
        start, end, _cycles, _op, _kind = cols
        out = []
        if abs(start[0]) > _EPS:
            out.append(Violation("tiling", float(start[0]),
                                 "trace does not start at 0"))
        bad = np.nonzero(np.abs(start[1:] - end[:-1]) > _EPS)[0]
        for i in bad:
            out.append(Violation(
                "tiling", float(start[i + 1]),
                f"gap/overlap: previous segment ends at {end[i]:g}"))
        if abs(end[-1] - result.duration) > 1e-3:
            out.append(Violation(
                "tiling", float(end[-1]),
                f"trace ends at {end[-1]:g}, duration is "
                f"{result.duration:g}"))
        return out
    out = []
    segments = result.trace.segments
    if abs(segments[0].start) > _EPS:
        out.append(Violation("tiling", segments[0].start,
                             "trace does not start at 0"))
    for prev, cur in zip(segments, segments[1:]):
        if abs(cur.start - prev.end) > _EPS:
            out.append(Violation(
                "tiling", cur.start,
                f"gap/overlap: previous segment ends at {prev.end:g}"))
    if abs(segments[-1].end - result.duration) > 1e-3:
        out.append(Violation(
            "tiling", segments[-1].end,
            f"trace ends at {segments[-1].end:g}, duration is "
            f"{result.duration:g}"))
    return out


def _check_cycle_rates(result: SimResult) -> List[Violation]:
    cols = _trace_columns(result)
    if cols is not None:
        import numpy as np
        start, end, cycles, op, kind = cols
        points = result.trace.points
        freq = np.array([p.frequency for p in points], dtype=np.float64)
        run = kind == 0
        duration = end - start
        expected = duration * freq[op]
        bad_rate = run & (np.abs(cycles - expected)
                          > _EPS * np.maximum(1.0, expected))
        bad_nonrun = (~run) & (cycles != 0.0)
        out = []
        for i in np.nonzero(bad_nonrun | bad_rate)[0]:
            if run[i]:
                out.append(Violation(
                    "cycles", float(start[i]),
                    f"segment of {duration[i]:g} at f="
                    f"{freq[op[i]]:g} reports {cycles[i]:g} "
                    f"cycles (expected {expected[i]:g})"))
            else:
                from repro.sim.timeline import KINDS
                out.append(Violation(
                    "cycles", float(start[i]),
                    f"{KINDS[kind[i]]} segment reports {cycles[i]:g} "
                    "executed cycles"))
        return out
    out = []
    for segment in result.trace:
        if segment.kind != "run":
            if segment.cycles != 0.0:
                out.append(Violation(
                    "cycles", segment.start,
                    f"{segment.kind} segment reports {segment.cycles:g} "
                    "executed cycles"))
            continue
        expected = segment.duration * segment.point.frequency
        if abs(segment.cycles - expected) > _EPS * max(1.0, expected):
            out.append(Violation(
                "cycles", segment.start,
                f"segment of {segment.duration:g} at f="
                f"{segment.point.frequency:g} reports {segment.cycles:g} "
                f"cycles (expected {expected:g})"))
    return out


def _check_budgets(result: SimResult) -> List[Violation]:
    out = []
    executed: Dict[Tuple[str, int], float] = {}
    # Re-accumulate per-job execution by walking segments against the
    # job release/completion windows.
    jobs = sorted(result.jobs, key=lambda j: j.release_time)
    for segment in result.trace.run_segments():
        job = _job_running(jobs, segment.task, segment.start)
        if job is None:
            out.append(Violation(
                "budget", segment.start,
                f"task {segment.task!r} executes with no released, "
                "incomplete job"))
            continue
        key = (job.task.name, job.index)
        executed[key] = executed.get(key, 0.0) + segment.cycles
    for job in jobs:
        key = (job.task.name, job.index)
        done = executed.get(key, 0.0)
        # Relative tolerance: segment cycles are re-derived from segment
        # bounds, whose representation error grows with the time scale and
        # the per-job demand; a flat _EPS misfires on long runs.
        tol = _EPS * max(1.0, job.demand)
        if done > job.demand + tol:
            out.append(Violation(
                "budget", job.release_time,
                f"{job.task.name}#{job.index} executed {done:g} cycles, "
                f"demand was {job.demand:g}"))
        if job.is_complete and abs(done - job.demand) > tol \
                and job.demand > _EPS:
            out.append(Violation(
                "budget", job.completion_time or 0.0,
                f"{job.task.name}#{job.index} marked complete after "
                f"{done:g} of {job.demand:g} cycles"))
    return out


def _job_running(jobs: List[Job], task_name: str, time: float
                 ) -> Optional[Job]:
    """The job of ``task_name`` that could be executing at ``time``."""
    candidate = None
    for job in jobs:
        if job.task.name != task_name:
            continue
        if job.release_time <= time + _EPS:
            end = job.completion_time if job.completion_time is not None \
                else float("inf")
            if time < end + _EPS:
                candidate = job
    return candidate


def _ready_jobs(jobs: List[Job], time: float) -> List[Job]:
    ready = []
    for job in jobs:
        if job.release_time > time + _EPS:
            continue
        if job.demand <= _EPS:
            continue
        end = job.completion_time if job.completion_time is not None \
            else float("inf")
        if time < end - _EPS:
            ready.append(job)
    return ready


def _check_priorities(result: SimResult,
                      work_conserving: bool) -> List[Violation]:
    out = []
    rm = result.scheduler_name == "rm"
    jobs = sorted(result.jobs, key=lambda j: j.release_time)
    for segment in result.trace:
        probe = segment.start + min(segment.duration / 2.0, 1e-4)
        ready = _ready_jobs(jobs, probe)
        if segment.kind == "idle":
            if work_conserving and ready:
                out.append(Violation(
                    "work-conservation", segment.start,
                    f"idle while {len(ready)} job(s) ready "
                    f"(e.g. {ready[0].task.name}#{ready[0].index})"))
            continue
        if segment.kind != "run":
            continue
        running = [j for j in ready if j.task.name == segment.task]
        if not running:
            continue  # budget check already flags this
        current = min(running, key=lambda j: j.index)
        for other in ready:
            if other.task.name == segment.task:
                continue
            if rm:
                higher = other.task.period < current.task.period - _EPS
            else:
                higher = (other.absolute_deadline
                          < current.absolute_deadline - _EPS)
            if higher:
                out.append(Violation(
                    "priority", segment.start,
                    f"{segment.task} runs while higher-priority "
                    f"{other.task.name}#{other.index} is ready"))
                break
    return out


def _check_energy(result: SimResult,
                  energy_model: EnergyModel) -> List[Violation]:
    cols = _trace_columns(result)
    if cols is not None:
        import numpy as np
        start, end, cycles, op, kind = cols
        points = result.trace.points
        run = kind == 0
        exec_e = energy_model.execution_energy_batch(points, op, cycles)
        idle_e = energy_model.idle_energy_batch(points, op, end - start)
        total = float(np.sum(np.where(run, exec_e, idle_e)))
    else:
        total = 0.0
        for segment in result.trace:
            if segment.kind == "run":
                total += energy_model.execution_energy(segment.point,
                                                       segment.cycles)
            else:
                total += energy_model.idle_energy(segment.point,
                                                  segment.duration)
    if abs(total - result.total_energy) > 1e-6 * max(1.0, total):
        return [Violation(
            "energy", 0.0,
            f"re-priced energy {total:g} != reported "
            f"{result.total_energy:g}")]
    return []


# ---------------------------------------------------------------------------
# independent counter re-derivation (cross-checks repro.obs collectors)
# ---------------------------------------------------------------------------

def rederive_counters(result: SimResult) -> Dict[str, int]:
    """Recompute the run's bookkeeping counters from trace + jobs alone.

    Returns a dict with ``context_switches``, ``preemptions``,
    ``deadline_misses`` and ``frequency_transitions``, derived without
    trusting any counter the engine or an attached
    :class:`~repro.obs.Instrumentation` maintained:

    * a **context switch** every time the executing *job* changes (the
      first dispatch counts, resuming the same job after idle does not) —
      the same convention :class:`~repro.obs.MetricsCollector` records;
    * a **preemption** when the displaced job had not completed by the
      instant the next job took over;
    * **deadline misses** from per-job outcomes
      (:meth:`~repro.model.job.Job.outcome`), independently of
      ``result.misses``;
    * **frequency transitions** as operating-point changes *visible
      between consecutive trace segments* — a lower bound on
      ``result.switches``, since back-to-back changes at a single instant
      leave no segment behind.

    Job attribution inside merged segments assumes at most one live job
    per task at any instant, which holds for every deadline-meeting
    schedule and for overruns under ``on_miss="drop"`` (a missed job stops
    at its deadline).  ``on_miss="continue"`` overload schedules, where
    two jobs of one task stay live together, are outside its scope.
    """
    if result.trace is None:
        raise SimulationError(
            "rederive_counters needs a run with record_trace=True")
    by_task: Dict[str, List[Job]] = {}
    for job in sorted(result.jobs, key=lambda j: j.release_time):
        if job.demand > 1e-9:  # zero-demand jobs complete without running
            by_task.setdefault(job.task.name, []).append(job)

    cursors: Dict[str, _TaskDispatchCursor] = {}
    dispatches: List[Tuple[Job, float]] = []  # (job, time it took over)
    for segment in result.trace.run_segments():
        cursor = cursors.get(segment.task)
        if cursor is None:
            cursor = cursors[segment.task] = _TaskDispatchCursor(
                by_task.get(segment.task, []), result.duration)
        for job, when in cursor.executed_in(segment):
            if not dispatches or dispatches[-1][0] is not job:
                dispatches.append((job, when))

    preemptions = 0
    for (prev, _), (_cur, when) in zip(dispatches, dispatches[1:]):
        if prev.completion_time is None or prev.completion_time > when:
            preemptions += 1

    cols = _trace_columns(result)
    if cols is not None:
        import numpy as np
        _start, _end, _cycles, op, _kind = cols
        transitions = int(np.count_nonzero(op[1:] != op[:-1]))
    else:
        transitions = 0
        previous = None
        for segment in result.trace:
            if previous is not None and segment.point != previous:
                transitions += 1
            previous = segment.point

    misses = sum(1 for job in result.jobs
                 if job.outcome(result.duration) is JobOutcome.MISSED)
    return {
        "context_switches": len(dispatches),
        "preemptions": preemptions,
        "deadline_misses": misses,
        "frequency_transitions": transitions,
    }


def _life_end(job: Job, duration: float) -> float:
    """When the job stopped being eligible to execute (drop semantics)."""
    if job.completion_time is not None:
        return job.completion_time
    if job.absolute_deadline <= duration + 1e-9:
        return job.absolute_deadline  # dropped (or stopped) at its deadline
    return float("inf")


class _TaskDispatchCursor:
    """Amortized-O(1)-per-segment job attribution for one task's segments.

    Computes exactly what :func:`_jobs_executed_in` computes, but exploits
    that :func:`rederive_counters` feeds it one task's run segments in
    increasing time order: completions in ``(start, end]`` come from a
    bisect over the completion-time-sorted job list, and the linear scan
    for the still-running job keeps its position between calls.  Skipping
    a job is permanent — both skip conditions (completed by ``end``, life
    ended before ``end``) only become *more* true as ``end`` grows — so
    the cursor never rewinds and every job is visited O(1) times total.
    """

    def __init__(self, jobs: List[Job], duration: float):
        self._jobs = jobs  # sorted by release time
        self._duration = duration
        self._completed = sorted(
            (job for job in jobs if job.completion_time is not None),
            key=lambda j: j.completion_time)
        self._completion_times = [job.completion_time
                                  for job in self._completed]
        self._scan = 0  # persistent index into self._jobs

    def executed_in(self, segment: Segment) -> List[Tuple[Job, float]]:
        lo = bisect_right(self._completion_times, segment.start)
        hi = bisect_right(self._completion_times, segment.end)
        completed = self._completed[lo:hi]
        running = None
        jobs = self._jobs
        index = self._scan
        while index < len(jobs):
            job = jobs[index]
            if job.release_time >= segment.end:
                break  # not released yet; revisit when windows grow
            completion = job.completion_time
            if completion is not None and completion <= segment.end:
                index += 1  # finished inside or before the window
                continue
            if _life_end(job, self._duration) >= segment.end:
                running = job  # may still be running next window: stay put
                break
            index += 1
        self._scan = index
        sequence = completed + ([running] if running is not None else [])
        out = []
        start = segment.start
        for job in sequence:
            out.append((job, start))
            if job.completion_time is not None:
                start = job.completion_time
        return out


def _jobs_executed_in(jobs: List[Job], segment: Segment, duration: float
                      ) -> List[Tuple[Job, float]]:
    """The jobs that ran inside one (possibly merged) run segment.

    Trace segments coalesce back-to-back jobs of the same task, so one
    segment may span several completions.  Execution order within the
    window is completion order, then the job still running at the end.
    Returns ``(job, dispatch_time)`` pairs.

    Reference implementation: rescans the job list per segment, making no
    assumption about segment ordering.  :func:`rederive_counters` uses the
    equivalent :class:`_TaskDispatchCursor` instead, which is amortized
    O(1) per segment when segments arrive in time order; the test suite
    pins their agreement.
    """
    completed = [j for j in jobs
                 if j.completion_time is not None
                 and segment.start < j.completion_time <= segment.end]
    completed.sort(key=lambda j: j.completion_time)
    running = None
    for job in jobs:  # sorted by release
        if job.release_time >= segment.end:
            break
        if job.completion_time is not None \
                and job.completion_time <= segment.end:
            continue  # finished inside or before the window
        if _life_end(job, duration) >= segment.end:
            # Live through the whole window — including a job dropped at
            # its deadline exactly when the segment ends.
            running = job
            break
    sequence = completed + ([running] if running is not None else [])
    out = []
    start = segment.start
    for job in sequence:
        out.append((job, start))
        if job.completion_time is not None:
            start = job.completion_time
    return out
