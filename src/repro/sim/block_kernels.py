"""Cross-cell vectorized lane simulator (the ``--engine block`` tier).

:mod:`repro.sim.batch_kernels` made one *cell* cheap: a flat-array event
loop that still advances a single simulation at a time, driving the real
policy object hook by hook.  This module makes the *column* cheap: every
policy run of every cell in a sweep column becomes one **lane**, and all
lanes advance together in lockstep array passes over the lane axis.

A lane is one ``(cell, policy, on_miss)`` simulation flattened to plain
numbers: task periods/WCETs, the materialized demand table, the initial
operating-point index the policy's real ``setup`` chose, and a handful of
behavior flags (RM vs EDF priority, ccEDF's running-utilization selection,
drop-vs-raise miss handling).  :func:`run_lanes` holds per-lane state as
``(lane, task)`` arrays — next release, current deadline, remaining work,
running utilization, frequency index — and repeats a two-step cycle:

* **release step** — fire every due release across all lanes at once
  (due mask, demand gather, WCET clamp, deadline/queue updates), apply the
  vectorized ccEDF selection, and open the next execution window;
* **execution step** — one segment per lane: pick each lane's
  earliest-deadline (or smallest-period) ready task with a masked argmin,
  then complete it, run it to the window edge, or idle — accumulating
  energy into per-``(lane, operating point)`` slots in first-use order.

Bit identity with :class:`~repro.sim.batch_kernels.CellKernel` (and hence
the engine) is the design invariant, not an aspiration: every arithmetic
expression here is the kernel's own, evaluated elementwise in the same
order (IEEE-754 float64 ops are value-identical whether numpy or CPython
executes them), per-lane event order is untouched because lanes never
interact, and anything the array program cannot replicate exactly — a
deadline miss in ``raise`` mode, a demand-trace underflow, a same-instant
release catch-up, an over-unity utilization — *abandons the lane*, whose
run then falls back to the per-cell kernel and reproduces the exact scalar
behavior, exceptions included.

The simulator is numpy-only by construction (a pure-Python lockstep pass
would just be a slower :class:`CellKernel`): when
:func:`~repro.sim.batch_kernels.numpy_backend` is unavailable or disabled,
:func:`run_lanes` returns ``None`` and the caller's fallback ladder
(:mod:`repro.analysis.batch`) routes every lane through the per-cell
kernel instead — the pure-Python path of the block engine *is* the batch
engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.hw.energy import EnergyModel
from repro.hw.machine import Machine
from repro.sim.batch_kernels import numpy_backend

#: Same event tolerance as the engine and the per-cell kernel.
_EPS = 1e-9

#: Lane phases (the per-lane position in the release/execute cycle).
_PH_RELEASE = 0
_PH_EXEC = 1
_PH_DONE = 2

#: Captured-segment kind codes (match ``repro.sim.timeline.KINDS`` order).
SEG_RUN = 0
SEG_IDLE = 1

#: Below this many lanes the vectorized pass costs more than per-cell
#: kernels (numpy per-op overhead dominates tiny lane counts); callers
#: should fall back.  Exposed for tests to tighten.
BLOCK_MIN_LANES = 8

#: How often (in lockstep iterations) the pass considers compacting the
#: working set down to still-running lanes.  Lanes finish at wildly
#: different event counts (a lane's iterations track its release count),
#: so without compaction the densest lane makes every finished lane keep
#: paying full-width array costs; with it the arrays shrink as the tail
#: thins.  Exposed for tests to tighten.
COMPACT_INTERVAL = 32


@dataclass
class LaneSpec:
    """One policy run of one cell, reduced to plain numbers.

    The planner (:mod:`repro.analysis.batch`) builds these after running
    the real policy's ``setup`` — ``initial_point`` is the operating-point
    index that setup returned, so static policies are fully decided before
    the lane starts and dynamic ones (ccEDF) start from the exact state
    the scalar run would.
    """

    periods: Sequence[float]
    wcets: Sequence[float]
    #: Per-task invocation demand tables (materialized trace rows).
    demand_values: Sequence[Sequence[float]]
    demand_repeat: bool
    duration: float
    #: Operating-point index the policy's ``setup`` selected.
    initial_point: int
    #: Smallest-period priority (RM) instead of earliest-deadline.
    rm_priority: bool = False
    #: ccEDF: re-select the frequency from running utilization on every
    #: release/completion/idle, exactly like the scalar policy hooks.
    dynamic: bool = False
    #: ``on_miss="drop"`` semantics; ``False`` means ``"raise"``, where
    #: any deadline miss abandons the lane (the fallback rerun raises
    #: the genuine :class:`~repro.errors.DeadlineMissError`).
    drop_on_miss: bool = False
    #: Track per-job executed cycles (the EDF reference lane needs the
    #: jobs-log sum for the bound).
    need_cycles: bool = False
    #: Capture the segment stream (steady fast-path lanes replay it
    #: through a real timeline for the extrapolation scan).
    capture: bool = False


@dataclass
class LaneResult:
    """Outcome of one lane.

    ``abandoned`` is ``None`` for a clean run, else the reason the lane
    left the vectorized envelope; abandoned lanes carry no figures and
    must be re-run on the per-cell path.
    """

    abandoned: Optional[str] = None
    total_energy: float = 0.0
    executed_cycles: Optional[float] = None
    #: ``(start, end, task_index, point_index, cycles, energy, kind)``
    #: tuples (``task_index < 0`` = idle), only for ``capture`` lanes.
    segments: Optional[List[tuple]] = None


def run_lanes(machine: Machine, energy_model: EnergyModel,
              lanes: Sequence[LaneSpec]) -> Optional[List[LaneResult]]:
    """Advance every lane to its horizon in lockstep array passes.

    Returns one :class:`LaneResult` per lane (same order), or ``None``
    when numpy is unavailable/disabled — the caller falls back to the
    per-cell kernels.
    """
    np = numpy_backend()
    if np is None or not lanes:
        return None

    n_lanes = len(lanes)
    n_tasks = max(len(lane.periods) for lane in lanes)
    freqs = np.asarray(machine.frequencies, dtype=np.float64)
    epcs = np.asarray([p.energy_per_cycle for p in machine.points],
                      dtype=np.float64)
    n_points = len(freqs)
    top = n_points - 1
    scale = energy_model.cycle_energy_scale
    idle_coeff = scale * energy_model.idle_level

    # -- static per-lane/task tables (padded tasks: period=inf, wcet=0) --
    period = np.full((n_lanes, n_tasks), np.inf, dtype=np.float64)
    wcet = np.zeros((n_lanes, n_tasks), dtype=np.float64)
    dem_off = np.zeros((n_lanes, n_tasks), dtype=np.int64)
    dem_len = np.zeros((n_lanes, n_tasks), dtype=np.int64)
    flat: List[float] = []
    for row, lane in enumerate(lanes):
        n = len(lane.periods)
        period[row, :n] = lane.periods
        wcet[row, :n] = lane.wcets
        for k, values in enumerate(lane.demand_values):
            dem_off[row, k] = len(flat)
            dem_len[row, k] = len(values)
            flat.extend(values)
    dem_flat = np.asarray(flat if flat else [0.0], dtype=np.float64)
    finite = np.isfinite(period)
    with np.errstate(divide="ignore"):
        worst_util = np.where(finite, wcet / period, 0.0)

    duration = np.asarray([lane.duration for lane in lanes],
                          dtype=np.float64)
    edge = duration - _EPS
    repeat = np.asarray([lane.demand_repeat for lane in lanes], dtype=bool)
    rm_key = np.asarray([lane.rm_priority for lane in lanes], dtype=bool)
    dyn = np.asarray([lane.dynamic for lane in lanes], dtype=bool)
    drop = np.asarray([lane.drop_on_miss for lane in lanes], dtype=bool)
    cap = np.asarray([lane.capture for lane in lanes], dtype=bool)
    any_capture = bool(cap.any())
    point = np.asarray([lane.initial_point for lane in lanes],
                       dtype=np.int64)

    # -- dynamic per-lane state --
    time = np.zeros(n_lanes, dtype=np.float64)
    phase = np.zeros(n_lanes, dtype=np.int8)
    horizon = np.zeros(n_lanes, dtype=np.float64)
    horizon_raw = np.zeros(n_lanes, dtype=np.float64)
    idle_energy = np.zeros(n_lanes, dtype=np.float64)
    abandoned = np.zeros(n_lanes, dtype=bool)
    # ``reasons`` (and the other Python-side stores below) stay indexed by
    # the ORIGINAL lane row for the whole run; compaction renumbers only
    # the hot arrays, with ``orig`` mapping working rows back.
    reasons: List[Optional[str]] = [None] * n_lanes
    orig = np.arange(n_lanes)

    next_release = np.where(finite, 0.0, np.inf)
    deadline = np.full((n_lanes, n_tasks), np.inf, dtype=np.float64)
    invocation = np.zeros((n_lanes, n_tasks), dtype=np.int64)
    live = np.zeros((n_lanes, n_tasks), dtype=bool)
    # The dispatch key (period under RM, deadline under EDF; inf when the
    # slot has no ready job — so the key doubles as the ready mask),
    # maintained incrementally at release and completion instead of being
    # rebuilt from the job state every pass: the values written are
    # exactly what a rebuild would produce, only cheaper.
    masked_key = np.full((n_lanes, n_tasks), np.inf, dtype=np.float64)
    executed = np.zeros((n_lanes, n_tasks), dtype=np.float64)
    demand = np.zeros((n_lanes, n_tasks), dtype=np.float64)
    # ccEDF setup seeds running utilization at worst case.
    util = worst_util.copy()

    # -- energy accumulation: per-(lane, point) slots, first-use order --
    slot_acc = np.zeros((n_lanes, n_points), dtype=np.float64)
    slot_seen = np.zeros((n_lanes, n_points), dtype=bool)
    slot_order: List[List[int]] = [[] for _ in range(n_lanes)]

    # -- per-job executed cycles (EDF reference lanes only) --
    total_releases = np.where(
        finite, np.ceil(duration[:, None] / period) + 1.0, 0.0
    ).sum(axis=1)
    cyc_rows = np.full(n_lanes, -1, dtype=np.int64)
    cyc_lanes = [row for row, lane in enumerate(lanes) if lane.need_cycles]
    jobs_exec = None
    job_of = None
    job_count = np.zeros(n_lanes, dtype=np.int64)
    if cyc_lanes:
        for slot, row in enumerate(cyc_lanes):
            cyc_rows[row] = slot
        width = int(max(total_releases[row] for row in cyc_lanes))
        jobs_exec = np.zeros((len(cyc_lanes), width + n_tasks + 8),
                             dtype=np.float64)
        job_of = np.zeros((n_lanes, n_tasks), dtype=np.int64)
    # Static original-row -> jobs_exec slot map for the finalize pass
    # (``cyc_rows`` itself is renumbered by compaction, never mutated).
    cyc_rows_full = cyc_rows

    segments: List[Optional[List[tuple]]] = [
        [] if lane.capture else None for lane in lanes]

    # -- final per-original-lane stores, filled as lanes leave the pass --
    final_idle = np.zeros(n_lanes, dtype=np.float64)
    final_job_count = np.zeros(n_lanes, dtype=np.int64)
    final_slot_acc = np.zeros((n_lanes, n_points), dtype=np.float64)

    def abandon(rows, reason: str) -> None:
        for row in np.atleast_1d(rows).tolist():
            if not abandoned[row]:
                abandoned[row] = True
                full = int(orig[row])
                if reasons[full] is None:
                    reasons[full] = reason

    def final_check(rows) -> None:
        """Raise-mode deadline sweep for lanes that reached their horizon.

        An incomplete job whose deadline fell inside the run makes the
        kernel raise; abandon so the fallback rerun raises the genuine
        error.  Finished lanes freeze their state, so checking at
        compaction time equals checking at the end.
        """
        if rows.size == 0:
            return
        miss = ((live[rows] & (deadline[rows]
                               <= duration[rows, None] + _EPS))
                .any(axis=1) & ~drop[rows])
        if miss.any():
            abandon(rows[miss], "deadline-miss")

    def flush(rows) -> None:
        """Copy finished lanes' accumulators to the per-original stores."""
        if rows.size == 0:
            return
        full = orig[rows]
        final_idle[full] = idle_energy[rows]
        final_job_count[full] = job_count[rows]
        final_slot_acc[full] = slot_acc[rows]

    # A release always lands at ``time <= next_release`` (the window
    # horizon is the minimum pending release), so a freshly released
    # job's next instance (``release + period``) can only be due at the
    # same instant when its period is below the event tolerance.  The
    # kernel handles that with a catch-up loop; abandon such lanes up
    # front so the loop body never needs a same-instant re-release check.
    catchup = ((period <= _EPS) & finite).any(axis=1)
    if catchup.any():
        abandon(np.nonzero(catchup)[0], "release-catch-up")

    # All-repeating demand tables (the common materialized-trace shape)
    # can never underflow, so the release step skips the bounds checks.
    all_repeat = bool(repeat.all())

    # Flat raveled views over the hot ``(lane, task)`` / ``(lane, point)``
    # tables.  The pair sites below fire every pass, and one flat fancy
    # index (``row * n_tasks + task``) costs a fraction of the equivalent
    # 2-D pair index.  Each view aliases its table (all tables here are
    # C-contiguous), so flat writes land in the 2-D array; compaction
    # re-derives the views because its ``arr[idx]`` gathers allocate
    # fresh arrays.
    def _views():
        return tuple(
            arr.ravel() if arr is not None else None
            for arr in (period, wcet, dem_off, dem_len, worst_util,
                        next_release, deadline, invocation, live, executed,
                        demand, util, masked_key, slot_acc, slot_seen,
                        job_of))

    (period_f, wcet_f, dem_off_f, dem_len_f, worst_util_f, next_release_f,
     deadline_f, invocation_f, live_f, executed_f, demand_f, util_f,
     masked_key_f, slot_acc_f, slot_seen_f, job_of_f) = _views()

    arange_scratch = np.arange(n_lanes)
    empty_rows = arange_scratch[:0]

    # Each iteration advances every active lane by at most one release
    # instant and one execution segment; segments per lane are bounded by
    # completions (<= releases) plus window edges (<= releases), so 2R
    # plus slack bounds the loop.  Overrun abandons, never corrupts.
    max_iter = int(2.0 * float(total_releases.max())) + 8 * n_tasks + 64

    for iteration in range(max_iter):
        active = ~abandoned & (phase != _PH_DONE)
        if not np.count_nonzero(active):
            break

        # Periodically shed finished/abandoned lanes: settle their final
        # deadline sweep, flush their accumulators to the per-original
        # stores, and renumber every hot array down to the survivors.
        # Per-lane arithmetic is row-local, so renumbering cannot change
        # any lane's values — it only stops finished lanes from paying
        # full-width array costs until the densest lane ends.
        if iteration and iteration % COMPACT_INTERVAL == 0:
            kept = int(np.count_nonzero(active))
            if kept * 8 <= 7 * active.size:
                removed = np.nonzero(~active)[0]
                final_check(removed[~abandoned[removed]])
                flush(removed[~abandoned[removed]])
                idx = np.nonzero(active)[0]
                orig = orig[idx]
                period = period[idx]
                wcet = wcet[idx]
                dem_off = dem_off[idx]
                dem_len = dem_len[idx]
                worst_util = worst_util[idx]
                duration = duration[idx]
                edge = edge[idx]
                repeat = repeat[idx]
                rm_key = rm_key[idx]
                dyn = dyn[idx]
                drop = drop[idx]
                cap = cap[idx]
                any_capture = bool(cap.any())
                point = point[idx]
                time = time[idx]
                phase = phase[idx]
                horizon = horizon[idx]
                horizon_raw = horizon_raw[idx]
                idle_energy = idle_energy[idx]
                next_release = next_release[idx]
                deadline = deadline[idx]
                invocation = invocation[idx]
                live = live[idx]
                executed = executed[idx]
                demand = demand[idx]
                util = util[idx]
                masked_key = masked_key[idx]
                slot_acc = slot_acc[idx]
                slot_seen = slot_seen[idx]
                cyc_rows = cyc_rows[idx]
                job_count = job_count[idx]
                if job_of is not None:
                    job_of = job_of[idx]
                (period_f, wcet_f, dem_off_f, dem_len_f, worst_util_f,
                 next_release_f, deadline_f, invocation_f, live_f,
                 executed_f, demand_f, util_f, masked_key_f, slot_acc_f,
                 slot_seen_f, job_of_f) = _views()
                abandoned = np.zeros(idx.size, dtype=bool)
                active = np.ones(idx.size, dtype=bool)

        # ================= release step =================
        # All mask algebra below runs on the releasing-row subset (the
        # ``rrows`` gather): roughly half the working set is in the
        # execution phase at any instant, and full-width passes over it
        # here would be pure waste.
        releasing = active & (phase == _PH_RELEASE)
        if np.count_nonzero(releasing):
            limit = time + _EPS
            rrows = releasing.nonzero()[0]
            sub_nr = next_release[rrows]
            due_sub = ((sub_nr <= limit[rrows, None])
                       & (sub_nr < edge[rrows, None]))
            miss = due_sub & live[rrows]
            if np.count_nonzero(miss):
                miss_lane = miss.any(axis=1) & ~drop[rrows]
                if np.count_nonzero(miss_lane):
                    abandon(rrows[miss_lane], "deadline-miss")
                    due_sub[miss_lane] = False
                # Drop-mode lanes: the kernel records the miss and clears
                # the old job from the ready slot; the replacement job
                # lands in the same slot right below, so the overwrite is
                # the same state transition (misses carry no energy).
            sub_lane, pair_task = due_sub.nonzero()
            pair_lane = rrows[sub_lane]
            pidx = pair_lane * n_tasks + pair_task
            if pair_lane.size:
                inv = invocation_f[pidx]
                lens = dem_len_f[pidx]
                if all_repeat:
                    # Due tasks are real (padded slots never release), so
                    # lens >= 1 and the modulo needs no floor.
                    value_idx = inv % lens
                else:
                    rep = repeat[pair_lane]
                    value_idx = np.where(rep, inv % np.maximum(lens, 1),
                                         inv)
                    out_of_trace = ~rep & (inv >= lens)
                    if np.count_nonzero(out_of_trace):
                        bad = np.unique(sub_lane[out_of_trace])
                        abandon(rrows[bad], "demand-underflow")
                        due_sub[bad] = False
                        keep = ~np.isin(sub_lane, bad)
                        sub_lane = sub_lane[keep]
                        pair_lane = pair_lane[keep]
                        pair_task = pair_task[keep]
                        pidx = pidx[keep]
                        inv = inv[keep]
                        value_idx = value_idx[keep]
            if pair_lane.size:
                release_time = next_release_f[pidx]
                fperiod = period_f[pidx]
                raw = dem_flat[dem_off_f[pidx] + value_idx]
                capped = np.minimum(raw, wcet_f[pidx])
                new_deadline = release_time + fperiod
                deadline_f[pidx] = new_deadline
                invocation_f[pidx] = inv + 1
                next_release_f[pidx] = new_deadline
                demand_f[pidx] = capped
                executed_f[pidx] = 0.0
                nonzero = capped > _EPS
                live_f[pidx] = nonzero
                masked_key_f[pidx] = np.where(
                    nonzero,
                    np.where(rm_key[pair_lane], fperiod, new_deadline),
                    np.inf)
                if jobs_exec is not None:
                    # Job bookkeeping only matters on tracked (need-
                    # cycles) lanes; rank the release order on those rows
                    # alone.
                    tracked_pair = cyc_rows[pair_lane] >= 0
                    if np.count_nonzero(tracked_pair):
                        # ``sub_lane`` comes from a row-major nonzero, so
                        # it is sorted; run-boundary dedup beats a full
                        # ``np.unique`` sort.
                        t_sl = sub_lane[tracked_pair]
                        head = np.empty(t_sl.size, dtype=bool)
                        head[0] = True
                        np.not_equal(t_sl[1:], t_sl[:-1], out=head[1:])
                        tsub = t_sl[head]
                        rank_sub = due_sub[tsub].cumsum(axis=1)
                        pos = tsub.searchsorted(t_sl)
                        t_lane = pair_lane[tracked_pair]
                        t_task = pair_task[tracked_pair]
                        job_of_f[pidx[tracked_pair]] = \
                            job_count[t_lane] \
                            + rank_sub.ravel()[pos * n_tasks + t_task] - 1
                        job_count[rrows[tsub]] += rank_sub[:, -1]
                # ccEDF on_release restores worst case; the zero-demand
                # completion immediately re-zeroes (0.0 / period == +0.0).
                util_f[pidx] = np.where(
                    nonzero, worst_util_f[pidx], 0.0)
            # Released-lane mask rebuilt from the (filtered) pair rows by
            # scatter — cheaper than an axis reduction over ``due_sub``.
            due_lane = np.zeros(rrows.size, dtype=bool)
            due_lane[sub_lane] = True
            select = due_lane & dyn[rrows] & ~abandoned[rrows]
            if np.count_nonzero(select):
                drows = rrows[select]
                # Scratch-order utilization sum: sequential over the task
                # axis, matching sum(dict.values()) in task order (+0.0
                # padding terms are bitwise no-ops on nonnegative sums,
                # so folding from column 0 matches folding from 0.0).
                usub = util[drows]
                total = usub[:, 0]
                for k in range(1, n_tasks):
                    total = total + usub[:, k]
                over = total > 1.0 + _EPS
                if np.count_nonzero(over):
                    abandon(drows[over], "over-unity")
                    under = ~over
                    drows = drows[under]
                    total = total[under]
                speed = np.minimum(total, 1.0)
                point[drows] = np.minimum(
                    freqs.searchsorted(speed - _EPS, side="left"), top)
            alive = ~abandoned[rrows]
            fin_sub = alive & (time[rrows] >= edge[rrows])
            phase[rrows[fin_sub]] = _PH_DONE
            open_sub = alive & ~fin_sub
            if np.count_nonzero(open_sub):
                orows = rrows[open_sub]
                # Explicit minimum fold over the (few) task columns: the
                # values are exactly what an axis reduction would pick,
                # without the reduce machinery's per-call overhead.
                nr_sub = next_release[orows]
                raw_min = nr_sub[:, 0]
                for k in range(1, n_tasks):
                    raw_min = np.minimum(raw_min, nr_sub[:, k])
                clipped = np.minimum(raw_min, duration[orows])
                stalled = clipped <= limit[orows]
                if np.count_nonzero(stalled):
                    abandon(orows[stalled], "stalled")
                    still = ~stalled
                    orows = orows[still]
                    raw_min = raw_min[still]
                    clipped = clipped[still]
                horizon_raw[orows] = raw_min
                horizon[orows] = clipped
                phase[orows] = _PH_EXEC

        # ================= execution step =================
        executing = ~abandoned & (phase == _PH_EXEC)
        if not np.count_nonzero(executing):
            continue
        # One segment per lane per iteration: completions that leave time
        # inside the window keep phase ``_PH_EXEC`` and rejoin the next
        # iteration's pass, batched with every other executing lane —
        # small per-window drain passes would be numpy-overhead-bound.
        exec_rows = executing.nonzero()[0]
        if exec_rows.size:
            ekeys = masked_key[exec_rows]
            ebest = ekeys.argmin(axis=1)
            # A lane has a ready job iff its smallest key is finite (the
            # key is inf exactly on empty slots); gathering the winner is
            # far cheaper than a second axis reduction.
            ehas = ekeys.ravel()[arange_scratch[:exec_rows.size]
                                 * n_tasks + ebest] < np.inf

            rows = exec_rows[~ehas]
            if rows.size:
                # ccEDF on_idle: drop to the slowest point before the
                # idle-energy computation, exactly like the hook.
                retune = rows[dyn[rows]]
                if retune.size:
                    point[retune] = 0
                points_now = point[rows]
                f = freqs[points_now]
                epc = epcs[points_now]
                cycles = (horizon[rows] - time[rows]) * f
                energy = (idle_coeff * cycles) * epc
                idle_energy[rows] += energy
                if any_capture:
                    seg_rows = cap[rows]
                    if np.count_nonzero(seg_rows):
                        for row, start, end, op_idx, joule in zip(
                                orig[rows][seg_rows].tolist(),
                                time[rows][seg_rows].tolist(),
                                horizon[rows][seg_rows].tolist(),
                                points_now[seg_rows].tolist(),
                                energy[seg_rows].tolist()):
                            segments[row].append(
                                (start, end, -1, op_idx, 0.0, joule, SEG_IDLE))
                time[rows] = horizon[rows]
                phase[rows] = _PH_RELEASE

            rows = exec_rows[ehas]
            exec_rows = empty_rows
            if rows.size:
                task = ebest[ehas]
                ridx = rows * n_tasks + task
                remaining = demand_f[ridx] - executed_f[ridx]
                remaining = np.maximum(remaining, 0.0)
                points_now = point[rows]
                f = freqs[points_now]
                epc = epcs[points_now]
                finish = time[rows] + remaining / f
                completes = finish <= horizon[rows] + _EPS

                crows = rows[completes]
                if crows.size:
                    cidx = ridx[completes]
                    ctask = task[completes]
                    cpoints = points_now[completes]
                    energy = (scale * remaining[completes]) * epc[completes]
                    sidx = crows * n_points + cpoints
                    slot_acc_f[sidx] += energy
                    fresh = ~slot_seen_f[sidx]
                    if np.count_nonzero(fresh):
                        slot_seen_f[sidx] = True
                        for row, op_idx in zip(orig[crows[fresh]].tolist(),
                                               cpoints[fresh].tolist()):
                            slot_order[row].append(op_idx)
                    done_demand = demand_f[cidx]
                    if any_capture:
                        seg_rows = cap[crows]
                        if np.count_nonzero(seg_rows):
                            for row, start, end, t_idx, op_idx, cyc, joule in \
                                    zip(orig[crows[seg_rows]].tolist(),
                                        time[crows][seg_rows].tolist(),
                                        finish[completes][seg_rows].tolist(),
                                        ctask[seg_rows].tolist(),
                                        cpoints[seg_rows].tolist(),
                                        remaining[completes][seg_rows].tolist(),
                                        energy[seg_rows].tolist()):
                                segments[row].append(
                                    (start, end, t_idx, op_idx, cyc, joule,
                                     SEG_RUN))
                    # Completion absorbs float residue: executed = demand.
                    executed_f[cidx] = done_demand
                    live_f[cidx] = False
                    masked_key_f[cidx] = np.inf
                    if jobs_exec is not None:
                        tracked = cyc_rows[crows] >= 0
                        if np.count_nonzero(tracked):
                            jobs_exec[cyc_rows[crows][tracked],
                                      job_of_f[cidx[tracked]]] = \
                                done_demand[tracked]
                    time[crows] = finish[completes]
                    dsel = dyn[crows]
                    if np.count_nonzero(dsel):
                        drows = crows[dsel]
                        didx = cidx[dsel]
                        # ccEDF on_completion: actual/period, then re-select.
                        util_f[didx] = demand_f[didx] / period_f[didx]
                        usub = util[drows]
                        total = usub[:, 0]
                        for k in range(1, n_tasks):
                            total = total + usub[:, k]
                        over = total > 1.0 + _EPS
                        if np.count_nonzero(over):
                            abandon(np.unique(drows[over]), "over-unity")
                        speed = np.minimum(total, 1.0)
                        point[drows] = np.minimum(
                            freqs.searchsorted(speed - _EPS, side="left"),
                            top)
                    stay = (~(horizon_raw[crows] <= time[crows] + _EPS)
                            & ~(time[crows] >= edge[crows]))
                    phase[crows] = np.where(stay, _PH_EXEC, _PH_RELEASE)

                prows = rows[~completes]
                if prows.size:
                    partial_idx = ridx[~completes]
                    ptask = task[~completes]
                    ppoints = points_now[~completes]
                    cycles = (horizon[prows] - time[prows]) * f[~completes]
                    energy = (scale * cycles) * epc[~completes]
                    sidx = prows * n_points + ppoints
                    slot_acc_f[sidx] += energy
                    fresh = ~slot_seen_f[sidx]
                    if np.count_nonzero(fresh):
                        slot_seen_f[sidx] = True
                        for row, op_idx in zip(orig[prows[fresh]].tolist(),
                                               ppoints[fresh].tolist()):
                            slot_order[row].append(op_idx)
                    executed_f[partial_idx] += cycles
                    if jobs_exec is not None:
                        tracked = cyc_rows[prows] >= 0
                        if np.count_nonzero(tracked):
                            jobs_exec[cyc_rows[prows][tracked],
                                      job_of_f[partial_idx[tracked]]] += \
                                cycles[tracked]
                    if any_capture:
                        seg_rows = cap[prows]
                        if np.count_nonzero(seg_rows):
                            for row, start, end, t_idx, op_idx, cyc, joule in \
                                    zip(orig[prows[seg_rows]].tolist(),
                                        time[prows][seg_rows].tolist(),
                                        horizon[prows][seg_rows].tolist(),
                                        ptask[seg_rows].tolist(),
                                        ppoints[seg_rows].tolist(),
                                        cycles[seg_rows].tolist(),
                                        energy[seg_rows].tolist()):
                                segments[row].append(
                                    (start, end, t_idx, op_idx, cyc, joule,
                                     SEG_RUN))
                    time[prows] = horizon[prows]
                    phase[prows] = _PH_RELEASE

    leftover = ~abandoned & (phase != _PH_DONE)
    if leftover.any():  # pragma: no cover - bound is generous
        abandon(np.nonzero(leftover)[0], "iteration-limit")

    # Lanes still in the working set get the same send-off compaction
    # gave the early finishers: the raise-mode deadline sweep, then an
    # accumulator flush to the per-original stores.
    final_check(np.nonzero(~abandoned)[0])
    flush(np.nonzero(~abandoned)[0])

    slot_rows = final_slot_acc.tolist()
    idle_list = final_idle.tolist()
    results: List[LaneResult] = []
    for row, lane in enumerate(lanes):
        if reasons[row] is not None:
            results.append(LaneResult(abandoned=reasons[row]))
            continue
        # Execution total in slot first-use order — the insertion order of
        # the kernel's breakdown dict — then idle, then (zero) switch.
        exec_total = 0.0
        acc = slot_rows[row]
        for op_idx in slot_order[row]:
            exec_total += acc[op_idx]
        total_energy = exec_total + idle_list[row] + 0.0
        cycles_total: Optional[float] = None
        if lane.need_cycles:
            job_row = jobs_exec[cyc_rows_full[row]]
            count = int(final_job_count[row])
            cycles_total = 0
            for value in job_row[:count].tolist():
                cycles_total += value
        results.append(LaneResult(
            abandoned=None,
            total_energy=total_energy,
            executed_cycles=cycles_total,
            segments=segments[row]))
    return results


def lane_segment_bound(periods: Sequence[float], duration: float) -> int:
    """Upper bound on the jobs one lane can release (sizing helper)."""
    total = 0
    for period_value in periods:
        if math.isfinite(period_value) and period_value > 0.0:
            total += int(math.ceil(duration / period_value)) + 1
    return total
