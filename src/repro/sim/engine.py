"""The discrete-event simulation engine.

Model (matching the paper's simulator, Sec. 3.1):

* one preemptive processor with a discrete table of operating points;
* task execution reduces to counting cycles — running at relative frequency
  ``f`` executes ``f`` cycles per time unit;
* preemption and task-switch overheads are ignored (the paper argues they
  are identical with and without DVS); operating-point switch halts are
  optional via :class:`~repro.hw.regulator.SwitchingModel`;
* energy: each executed cycle costs V² at the current point, each halted
  cycle costs ``idle_level`` × V².

The engine exposes the :class:`SchedulerView` protocol to DVS policies: the
per-task state the paper's pseudo-code reads (current deadlines, worst-case
remaining cycles ``c_left``, executed cycles, the earliest deadline in the
system, ...).  Policies react to *release* and *completion* events — exactly
the two hook points of Figs. 4, 6 and 8 — by returning a new operating
point.

Dynamic task addition (Sec. 4.3) is supported through scheduled
:class:`Admission` records: at the admission time the task joins the task
set (so DVS decisions immediately account for it), and its first release
happens either immediately or — with ``defer=True`` — once the current
invocations of all existing tasks have completed, the paper's recipe for
avoiding transient misses.

Event-queue architecture
------------------------

The hot path is indexed so per-event cost is logarithmic in the task count
rather than linear (see ``DESIGN.md`` for the full complexity table):

* **Release queue** — a min-heap of ``(next_release, ordinal, state)``
  entries.  Entries are never updated in place; every change to a state's
  ``next_release`` pushes a fresh entry, and stale entries (whose recorded
  time no longer matches the state) are discarded lazily on peek/pop.
* **Ready queue** — a min-heap of ``[priority_key, serial, job]`` entries
  ordered by :meth:`~repro.sim.scheduler.PriorityPolicy.key`.  Removal
  (completion, or a dropped late job) marks the entry invalid in O(1) via a
  side table; invalid entries are skipped lazily when the queue is peeked.
  Priority keys are immutable per job, so no decrease-key is ever needed.
* **Admission queue** — the pre-sorted admission list is consumed through
  an index pointer instead of ``pop(0)``.
* **Deadline index** — ``earliest_deadline()`` resolves from a min-heap of
  ``(deadline, serial, state, job)`` entries pushed at job creation; an
  entry is valid while the state's current job is still the recorded one,
  and stale entries are discarded lazily on peek.  ccRM and laEDF query
  the earliest deadline on every policy hook, so this turns an O(n) scan
  into amortized O(log n).
* **Policy wakeup** — ``wakeup_time()`` is cached and re-queried only after
  a policy hook has run (the only code that can change it).

Simultaneous releases still fire their ``on_release`` hooks in task-set
order (states carry an ``ordinal``), so scheduling decisions are
bit-for-bit identical to the pre-refactor linear engine — a property pinned
by the cross-validation suite against
:class:`~repro.sim.baseline.BaselineSimulator` and
:class:`~repro.sim.ticksim.TickSimulator`.

Horizon convention: a release landing within ``_EPS`` of ``duration`` (in
particular, *exactly at* the horizon when the period divides the duration)
is suppressed — the job would have zero executable window inside the run
and its deadline lies beyond it, so :meth:`Simulator._final_deadline_check`
could never classify it.  :class:`~repro.sim.ticksim.TickSimulator` applies
the identical convention, keeping job counts comparable.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from itertools import count
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import DeadlineMissError, SimulationError
from repro.hw.energy import EnergyModel
from repro.hw.machine import Machine
from repro.hw.operating_point import OperatingPoint
from repro.hw.regulator import SwitchingModel
from repro.model.demand import DemandModel, WorstCaseDemand, demand_from_spec
from repro.model.job import Job
from repro.model.task import Task, TaskSet
from repro.sim.results import DeadlineMiss, EnergyBreakdown, SimResult
from repro.sim.scheduler import PriorityPolicy, make_priority
from repro.sim.timeline import make_trace

_EPS = 1e-9

#: Sentinel distinguishing "wakeup cache empty" from a cached ``None``.
_UNSET = object()

#: What to do when a deadline miss is detected.
MISS_MODES = ("raise", "drop", "continue")


@dataclass(frozen=True, slots=True)
class Admission:
    """A task scheduled to join the system mid-run.

    Parameters
    ----------
    time:
        Simulated time at which the task is admitted (joins the task set).
    task:
        The task to add.
    defer:
        When True, the first release waits until every current invocation
        of the pre-existing tasks has completed (the paper's transient-miss
        avoidance); when False the task releases at the admission time.
    """

    time: float
    task: Task
    defer: bool = True


@dataclass(slots=True)
class _TaskState:
    """Mutable per-task bookkeeping."""

    task: Task
    next_release: float  # math.inf while a deferred admission is pending
    ordinal: int = 0  # insertion order; fixes simultaneous-release ordering
    invocation: int = 0
    job: Optional[Job] = None  # most recently released job
    pending_defer: bool = False
    # Jobs that were in flight when this task was admitted with defer=True;
    # the first release waits until every one of them has completed (the
    # paper's transient-miss avoidance, Sec. 4.3).
    defer_blockers: Optional[List[Job]] = None


class SchedulerView:
    """Read-only protocol that DVS policies use to inspect the system.

    :class:`Simulator` implements this protocol directly.  The methods map
    one-to-one onto the quantities in the paper's pseudo-code:

    * :meth:`worst_case_remaining` — ``c_left_i``;
    * :meth:`current_deadline` — ``D_i`` (deadline of the current
      invocation, which persists until the next release even after the job
      completes);
    * :meth:`earliest_deadline` — "the next deadline in the system";
    * :meth:`executed_in_invocation` — cycles the current invocation has
      executed so far (lets ccRM maintain its ``d_i`` counters).

    An admitted-but-not-yet-released task has no job: ``job_of`` returns
    ``None`` and ``current_deadline`` ``None``.  Policies treat such tasks
    conservatively (they reserve the full worst-case utilization but have
    no current-invocation work).
    """

    time: float
    taskset: TaskSet
    machine: Machine

    def job_of(self, task: Task) -> Optional[Job]:
        raise NotImplementedError

    def current_deadline(self, task: Task) -> Optional[float]:
        raise NotImplementedError

    def earliest_deadline(self) -> Optional[float]:
        raise NotImplementedError

    def worst_case_remaining(self, task: Task) -> float:
        raise NotImplementedError

    def worst_case_remaining_each(self, tasks: Sequence[Task],
                                  out: Optional[List[float]] = None
                                  ) -> List[float]:
        """Batch ``c_left`` lookup: one slot per task, the same values as
        calling :meth:`worst_case_remaining` task by task.

        Policies that walk the whole task set per callback (laEDF's
        deferral loop fires on every release and completion) pay a
        per-task method-call + property chain through the scalar API;
        the batch form lets the simulator resolve its own state dict in
        one tight loop.  ``out`` is an optional reused scratch list —
        when it already has ``len(tasks)`` slots it is filled in place
        and returned, so steady-state callbacks allocate nothing.
        """
        if out is not None and len(out) == len(tasks):
            for index, task in enumerate(tasks):
                out[index] = self.worst_case_remaining(task)
            return out
        return [self.worst_case_remaining(task) for task in tasks]

    def executed_in_invocation(self, task: Task) -> float:
        raise NotImplementedError

    def invocation_of(self, task: Task) -> int:
        raise NotImplementedError


class Simulator(SchedulerView):
    """Simulate one task set under one DVS policy.

    Parameters
    ----------
    taskset:
        The periodic tasks to run; all tasks release at time 0 (phase 0).
    machine:
        Operating-point table.
    policy:
        A DVS policy (see :mod:`repro.core`).  Its ``scheduler`` attribute
        ("edf" or "rm") selects the priority policy unless ``scheduler`` is
        given explicitly.
    demand:
        Per-invocation actual computation model; a float, string, or
        :class:`~repro.model.demand.DemandModel` (see
        :func:`~repro.model.demand.demand_from_spec`).  Defaults to the
        worst case.
    duration:
        Simulated time span; defaults to ``2 ×`` the largest period so
        every task runs at least twice.
    energy_model:
        Idle-level and unit scaling; defaults to a perfect halt
        (``idle_level = 0``).
    switching:
        Operating-point switch-overhead model; defaults to free switching
        (the paper's simulation assumption).
    on_miss:
        ``"raise"`` (default) aborts with :class:`DeadlineMissError`;
        ``"drop"`` abandons the late job's remaining work; ``"continue"``
        lets the late job keep executing alongside its successor.  RT-DVS
        policies never miss on schedulable sets, so the default is safe for
        all the paper's experiments.
    record_trace:
        When True, keep a full execution trace (costs memory; off by
        default for large sweeps).
    trace_backend:
        ``"array"`` (default) records into the columnar
        :class:`~repro.sim.timeline.SimTimeline`; ``"segments"`` keeps the
        legacy per-object :class:`~repro.sim.trace.ExecutionTrace`.  Both
        produce bit-identical ``Segment`` views; the array backend is
        faster and far smaller on long horizons.
    admissions:
        Tasks to add dynamically during the run (see :class:`Admission`).
    enforce_wcet:
        When True (default), per-invocation demands are clamped to the
        task's worst case — the paper's guarantee condition C2.  Setting it
        False lets demands overrun the bound, emulating the prototype's
        cold-start overruns (Sec. 4.3); deadline guarantees then no longer
        hold.
    instrument:
        Optional :class:`~repro.obs.hooks.Instrumentation` observing the
        run (e.g. :class:`~repro.obs.metrics.MetricsCollector`).  Hooks
        are cached as bound-method-or-``None`` at construction, so a
        disabled or partial instrument costs the hot path one pointer
        test per call site; ``None`` (the default) is free.
    """

    def __init__(self, taskset: TaskSet, machine: Machine, policy,
                 demand: Union[str, float, DemandModel, None] = None,
                 duration: Optional[float] = None,
                 energy_model: Optional[EnergyModel] = None,
                 switching: Optional[SwitchingModel] = None,
                 scheduler: Optional[str] = None,
                 on_miss: str = "raise",
                 record_trace: bool = False,
                 trace_backend: str = "array",
                 admissions: Sequence[Admission] = (),
                 enforce_wcet: bool = True,
                 instrument=None):
        if on_miss not in MISS_MODES:
            raise SimulationError(
                f"on_miss must be one of {MISS_MODES}, got {on_miss!r}")
        self.taskset = taskset
        self.machine = machine
        self.policy = policy
        if demand is None:
            self.demand_model: DemandModel = WorstCaseDemand()
        else:
            self.demand_model = demand_from_spec(demand)
        self.duration = (duration if duration is not None
                         else 2.0 * max(t.period for t in taskset))
        if self.duration <= 0:
            raise SimulationError(
                f"duration must be positive, got {self.duration}")
        self.energy_model = energy_model or EnergyModel()
        self.switching = switching or SwitchingModel.free()
        scheduler_name = scheduler or getattr(policy, "scheduler", "edf")
        self.priority: PriorityPolicy = make_priority(scheduler_name, taskset)
        self.on_miss = on_miss
        self.record_trace = record_trace
        self.enforce_wcet = enforce_wcet
        self._admissions: List[Admission] = sorted(admissions,
                                                   key=lambda a: a.time)
        self._admission_pos = 0  # consumed prefix of the sorted admissions

        # -- mutable run state --
        self.time = 0.0
        self._states: Dict[str, _TaskState] = {}
        self._jobs: List[Job] = []
        self._misses: List[DeadlineMiss] = []
        self._energy = EnergyBreakdown()
        self._switches = 0
        self._point: OperatingPoint = machine.fastest
        self._trace = make_trace(record_trace, trace_backend)
        # Bound method cached once: the recording hot path pays a single
        # None test per slice, and no dispatch on the backend type.
        self._trace_record = (self._trace.record
                              if self._trace is not None else None)
        self._busy_time = 0.0
        self._idle_time = 0.0
        self._finished = False

        # -- instrumentation (see repro.obs) --
        # Each hook is cached as bound-method-or-None so the hot path pays
        # a single `is not None` test per call site when observation is
        # off or partial.
        self.instrument = instrument
        if instrument is not None:
            self._obs_counters = getattr(instrument, "counters", None)
            self._obs_release = getattr(instrument, "on_release", None)
            self._obs_completion = getattr(instrument, "on_completion",
                                           None)
            self._obs_miss = getattr(instrument, "on_deadline_miss", None)
            self._obs_ctx = getattr(instrument, "on_context_switch", None)
            self._obs_freq = getattr(instrument, "on_frequency_change",
                                     None)
            self._obs_event = getattr(instrument, "on_event", None)
        else:
            self._obs_counters = self._obs_release = None
            self._obs_completion = self._obs_miss = self._obs_ctx = None
            self._obs_freq = self._obs_event = None

        # -- event indexes (see "Event-queue architecture" above) --
        self._release_heap: List[tuple] = []
        self._ready_heap: List[list] = []
        self._ready_entries: Dict[int, list] = {}  # id(job) -> heap entry
        self._ready_serial = count()
        self._deferred: List[_TaskState] = []  # states awaiting defer release
        self._wakeup_cache: object = _UNSET
        # Deadline index: (deadline, serial, state, job); valid while
        # ``state.job is job``.  See ``earliest_deadline``.
        self._deadline_heap: List[tuple] = []
        self._deadline_serial = count()

    # ------------------------------------------------------------------
    # SchedulerView protocol
    # ------------------------------------------------------------------
    def job_of(self, task: Task) -> Optional[Job]:
        """The most recently released job of ``task`` (may be complete)."""
        state = self._states.get(task.name)
        return state.job if state else None

    def current_deadline(self, task: Task) -> Optional[float]:
        """Absolute deadline of the task's current invocation.

        The deadline of a completed invocation remains "current" until the
        next release — exactly how the paper's algorithms treat ``D_i``.
        """
        job = self.job_of(task)
        return job.absolute_deadline if job else None

    def earliest_deadline(self) -> Optional[float]:
        """The next deadline in the system (minimum current deadline).

        Amortized O(log n): resolves from the deadline index, discarding
        entries whose state has since released a newer job.  The deadline
        of a completed invocation stays current until the next release, so
        completion does not invalidate an entry.
        """
        heap = self._deadline_heap
        while heap and heap[0][2].job is not heap[0][3]:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def worst_case_remaining(self, task: Task) -> float:
        """``c_left_i``: worst-case cycles the current invocation may still
        use (0 once it completes, and 0 before the first release)."""
        job = self.job_of(task)
        if job is None:
            return 0.0
        return job.worst_case_remaining

    def worst_case_remaining_each(self, tasks: Sequence[Task],
                                  out: Optional[List[float]] = None
                                  ) -> List[float]:
        """Batch ``c_left``, resolving the state dict directly.

        Inlines :attr:`Job.worst_case_remaining` (complete -> 0, else
        ``max(0, C_i - executed)``) so an n-task walk costs one method
        call plus n dict probes instead of 4n calls through the scalar
        property chain — laEDF's deferral loop reads every task on every
        release and completion.
        """
        states = self._states
        fill = out is not None and len(out) == len(tasks)
        if not fill:
            out = [0.0] * len(tasks)
        for index, task in enumerate(tasks):
            state = states.get(task.name)
            job = state.job if state is not None else None
            if job is None or job.completion_time is not None:
                out[index] = 0.0
            else:
                out[index] = max(0.0, job.task.wcet - job.executed)
        return out

    def executed_in_invocation(self, task: Task) -> float:
        """Cycles executed by the current invocation so far."""
        job = self.job_of(task)
        return job.executed if job else 0.0

    def invocation_of(self, task: Task) -> int:
        """Index of the current invocation (-1 before the first release)."""
        job = self.job_of(task)
        return job.index if job else -1

    @property
    def current_point(self) -> OperatingPoint:
        """The operating point currently in effect."""
        return self._point

    @property
    def busy_time(self) -> float:
        """Cumulative time spent executing tasks."""
        return self._busy_time

    @property
    def idle_time(self) -> float:
        """Cumulative time spent idle."""
        return self._idle_time

    # ------------------------------------------------------------------
    # event-queue primitives (overridden by BaselineSimulator)
    # ------------------------------------------------------------------
    def _schedule_release(self, state: _TaskState) -> None:
        """Index ``state``'s next release.  O(log n).

        Called after every change to ``state.next_release``; infinite times
        (deferred admissions) are not indexed — they re-enter the queue when
        the deferral resolves.
        """
        if state.next_release != math.inf:
            heapq.heappush(self._release_heap,
                           (state.next_release, state.ordinal, state))

    def _peek_next_release(self) -> float:
        """Earliest indexed release time (``inf`` when none), discarding
        entries invalidated by a later reschedule.  Amortized O(log n)."""
        heap = self._release_heap
        while heap and heap[0][0] != heap[0][2].next_release:
            heapq.heappop(heap)
        return heap[0][0] if heap else math.inf

    def _ready_add(self, job: Job) -> None:
        """Insert ``job`` into the ready queue.  O(log n).

        The priority key is computed once at insertion: deadlines, periods
        and tie-break indexes are immutable per job, so the key can never
        change while the job is queued (no decrease-key required).
        """
        entry = [self.priority.key(job), next(self._ready_serial), job]
        self._ready_entries[id(job)] = entry
        heapq.heappush(self._ready_heap, entry)

    def _ready_discard(self, job: Job) -> None:
        """Lazy O(1) removal: mark the entry invalid; the heap skips it."""
        entry = self._ready_entries.pop(id(job), None)
        if entry is not None:
            entry[2] = None

    def _pick_job(self) -> Optional[Job]:
        """Highest-priority ready job (amortized O(log n))."""
        heap = self._ready_heap
        while heap and heap[0][2] is None:
            heapq.heappop(heap)
        return heap[0][2] if heap else None

    def _index_deadline(self, state: _TaskState, job: Job) -> None:
        """Index ``job``'s absolute deadline for ``earliest_deadline``.

        O(log n).  The entry self-invalidates when the state moves on to a
        newer job (which always carries a later deadline for that task, so
        heap order is never violated by staleness).
        """
        heapq.heappush(self._deadline_heap,
                       (job.absolute_deadline, next(self._deadline_serial),
                        state, job))

    def _next_admission_time(self) -> float:
        if self._admission_pos < len(self._admissions):
            return self._admissions[self._admission_pos].time
        return math.inf

    def _policy_wakeup_time(self) -> Optional[float]:
        """The policy's next timer wakeup, cached between policy hooks.

        Only policy code can move the wakeup, and policy code only runs
        inside hooks — so the cache is invalidated exactly after each hook
        call (:meth:`_invalidate_wakeup`) instead of re-querying the policy
        on every segment.
        """
        cached = self._wakeup_cache
        if cached is _UNSET:
            getter = getattr(self.policy, "wakeup_time", None)
            cached = getter() if getter is not None else None
            self._wakeup_cache = cached
        return cached

    def _invalidate_wakeup(self) -> None:
        self._wakeup_cache = _UNSET

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        """Execute the simulation and return its result (single use)."""
        if self._finished:
            raise SimulationError("Simulator instances are single-use; "
                                  "construct a new one to run again")
        self._finished = True
        for task in self.taskset:
            state = _TaskState(task=task, next_release=0.0,
                               ordinal=len(self._states))
            self._states[task.name] = state
            self._schedule_release(state)
        initial = self.policy.setup(self)
        self._invalidate_wakeup()
        if initial is not None:
            self._point = initial
        obs = self.instrument
        if obs is not None:
            obs.on_run_start(self)
        # Context-switch accounting lives here, on loop locals, because
        # attribute increments per switch are measurable against the
        # instrumentation overhead budget; the tallies flush to the
        # instrument's HotCounters once, after the loop.
        obs_counters = self._obs_counters
        obs_ctx = self._obs_ctx
        track_ctx = obs_counters is not None or obs_ctx is not None
        last_job: Optional[Job] = None
        ctx_switches = 0
        preemptions = 0
        while True:
            self._process_due_events()
            # Releases/wakeups landing exactly at `duration` have already
            # been handled (or suppressed — see the horizon convention in
            # the module docstring) by the call above, so breaking here
            # cannot skip an event inside the simulated span.
            if self.time >= self.duration - _EPS:
                break
            if track_ctx:
                job = self._advance_one_segment()
                if job is not None and job is not last_job:
                    ctx_switches += 1
                    preempted = (last_job is not None and
                                 last_job.completion_time is None)
                    if preempted:
                        preemptions += 1
                    if obs_ctx is not None:
                        obs_ctx(self, last_job, job, preempted)
                    last_job = job
            else:
                self._advance_one_segment()
        if obs_counters is not None:
            obs_counters.context_switches += ctx_switches
            obs_counters.preemptions += preemptions
        self._final_deadline_check()
        result = SimResult(
            taskset=self.taskset,
            policy_name=getattr(self.policy, "name",
                                type(self.policy).__name__),
            scheduler_name=self.priority.name,
            duration=self.duration,
            energy=self._energy,
            jobs=self._jobs,
            misses=self._misses,
            switches=self._switches,
            trace=self._trace,
        )
        if obs is not None:
            obs.on_run_end(self, result)
        return result

    # ------------------------------------------------------------------
    # event processing
    # ------------------------------------------------------------------
    def _event_budget(self) -> int:
        """Cap on same-instant event-processing passes.

        Scales with the amount of work that can still legally fire (pending
        admissions can each add a task whose release and policy hooks need
        a pass of their own), so pathological-but-legal workloads — e.g.
        thousands of same-instant admissions with switch halts — terminate,
        while genuine non-progress (a policy that never advances) is still
        caught quickly.
        """
        pending = (len(self._admissions) - self._admission_pos
                   + len(self._states))
        return 1024 + 8 * pending

    def _process_due_events(self) -> None:
        """Handle every admission, release, and policy wakeup that is due.

        Loops to a fixed point because a hook may advance time (switch
        halts) past further events.
        """
        if self._obs_event is not None:
            self._process_due_events_profiled()
            return
        passes = 0
        while True:
            progressed = self._process_due_admissions()
            progressed |= self._process_due_releases()
            progressed |= self._process_due_wakeup()
            if not progressed:
                return
            passes += 1
            if passes > self._event_budget():  # recomputed: admissions grow it
                raise SimulationError(
                    "event processing did not reach a fixed point after "
                    f"{passes} passes at t={self.time:g}")

    def _process_due_events_profiled(self) -> None:
        """:meth:`_process_due_events` with per-event-type wall timing.

        Selected only when the instrument implements ``on_event``
        (self-profiling), so the unprofiled loop never pays for the
        ``perf_counter`` brackets.
        """
        cb = self._obs_event
        passes = 0
        while True:
            t0 = perf_counter()
            admitted = self._process_due_admissions()
            t1 = perf_counter()
            released = self._process_due_releases()
            t2 = perf_counter()
            woke = self._process_due_wakeup()
            t3 = perf_counter()
            if admitted:
                cb("admission", self.time, t1 - t0)
            if released:
                cb("release", self.time, t2 - t1)
            if woke:
                cb("wakeup", self.time, t3 - t2)
            if not (admitted or released or woke):
                return
            passes += 1
            if passes > self._event_budget():
                raise SimulationError(
                    "event processing did not reach a fixed point after "
                    f"{passes} passes at t={self.time:g}")

    def _process_due_admissions(self) -> bool:
        progressed = False
        while (self._admission_pos < len(self._admissions)
               and self._admissions[self._admission_pos].time
               <= self.time + _EPS):
            admission = self._admissions[self._admission_pos]
            self._admission_pos += 1
            self._admit(admission)
            progressed = True
        self._check_deferred_releases()
        return progressed

    def _admit(self, admission: Admission) -> None:
        """Add a task to the live task set (Sec. 4.3)."""
        self.taskset = self.taskset.with_task(admission.task)
        task = self.taskset[-1]  # carries an auto-assigned name if needed
        self.priority.register_task(task)
        state = _TaskState(task=task, next_release=math.inf,
                           ordinal=len(self._states),
                           pending_defer=admission.defer)
        if admission.defer:
            state.defer_blockers = [
                s.job for s in self._states.values()
                if s.job is not None and not s.job.is_complete]
            self._deferred.append(state)
        else:
            state.next_release = max(self.time, admission.time)
            state.pending_defer = False
        self._states[task.name] = state
        self._schedule_release(state)
        hook = getattr(self.policy, "on_task_added", None)
        if hook is not None:
            new_point = hook(self, task)
            self._invalidate_wakeup()
            if new_point is not None:
                self._set_point(new_point)

    def _check_deferred_releases(self) -> None:
        """Release deferred admissions once the invocations that were in
        flight at their admission time have all completed."""
        if not self._deferred:
            return
        still_blocked: List[_TaskState] = []
        for state in self._deferred:
            if all(job.is_complete for job in state.defer_blockers or ()):
                state.pending_defer = False
                state.defer_blockers = None
                state.next_release = self.time
                self._schedule_release(state)
            else:
                still_blocked.append(state)
        self._deferred = still_blocked

    def _due_release_states(self) -> List[_TaskState]:
        """Pop every state with a due, non-suppressed release from the
        release queue, in task-set order."""
        due: List[_TaskState] = []
        heap = self._release_heap
        limit = self.time + _EPS
        suppress = self.duration - _EPS
        while heap:
            release, _, state = heap[0]
            if release != state.next_release:  # invalidated by reschedule
                heapq.heappop(heap)
                continue
            if release > limit or release >= suppress:
                # Heap order: every remaining entry is due later (or is a
                # suppressed at-the-horizon release; see module docstring).
                break
            heapq.heappop(heap)
            due.append(state)
        due.sort(key=lambda s: s.ordinal)
        return due

    def _process_due_releases(self) -> bool:
        """Release every task whose release time has arrived.

        Jobs for simultaneous releases are created *before* any policy hook
        fires, so policies observe a consistent system state (all current
        deadlines and ``c_left`` values updated), then the per-task
        ``on_release`` hooks fire in task order as in the paper's
        pseudo-code.
        """
        due = self._due_release_states()
        if not due:
            return False
        released: List[Task] = []
        for state in due:
            # Catch-up loop: a long switch halt may jump several periods.
            while state.next_release <= self.time + _EPS \
                    and state.next_release < self.duration - _EPS:
                self._create_job(state)
                released.append(state.task)
        zero_demand: List[Task] = []
        for task in released:
            job = self._states[task.name].job
            assert job is not None
            if job.demand <= _EPS and not job.is_complete:
                job.completion_time = self.time
                zero_demand.append(task)
                cb = self._obs_completion
                if cb is not None:
                    cb(self, job)
        if released:
            # Batch invalidation first: every job above already exists, so
            # per-task hooks observe the other co-released tasks' new
            # invocations; policies caching view-derived state (e.g.
            # laEDF's deferral order) refresh it here.
            invalidate = getattr(self.policy, "on_releases_invalidate",
                                 None)
            if invalidate is not None:
                invalidate(self, released)
        for task in released:
            self._policy_hook(self.policy.on_release, task)
        for task in zero_demand:
            self._policy_hook(self.policy.on_completion, task)
        return True

    def _create_job(self, state: _TaskState) -> None:
        release_time = state.next_release
        old_job = state.job
        if old_job is not None and not old_job.is_complete:
            self._record_miss(old_job)
            if self.on_miss == "drop":
                self._ready_discard(old_job)
        # Demand models that need the release time (e.g. a polling server
        # reading its queue) expose demand_at; plain models expose demand.
        demand_at = getattr(self.demand_model, "demand_at", None)
        if demand_at is not None:
            demand = demand_at(state.task, state.invocation, release_time)
        else:
            demand = self.demand_model.demand(state.task, state.invocation)
        if self.enforce_wcet:
            demand = min(demand, state.task.wcet)
        job = Job(task=state.task, release_time=release_time, demand=demand,
                  index=state.invocation)
        state.job = job
        self._index_deadline(state, job)
        state.invocation += 1
        state.next_release = release_time + state.task.period
        self._schedule_release(state)
        self._jobs.append(job)
        if job.demand > _EPS:
            self._ready_add(job)
        cb = self._obs_release
        if cb is not None:
            cb(self, job)

    def _process_due_wakeup(self) -> bool:
        """Fire the policy's timer hook when its wakeup time has arrived."""
        progressed = False
        for _ in range(64):  # defensive bound on same-instant wakeups
            wakeup = self._policy_wakeup_time()
            if wakeup is None or wakeup > self.time + _EPS:
                return progressed
            new_point = self.policy.on_wakeup(self)
            counters = self._obs_counters
            if counters is not None:
                counters.wakeups += 1
            self._invalidate_wakeup()
            if self._policy_wakeup_time() == wakeup:
                raise SimulationError(
                    f"policy {self.policy!r} did not advance its wakeup time")
            if new_point is not None:
                self._set_point(new_point)
            progressed = True
        raise SimulationError("too many policy wakeups at one instant")

    def _policy_hook(self, hook, task: Task) -> None:
        new_point = hook(self, task)
        self._invalidate_wakeup()
        if new_point is not None:
            self._set_point(new_point)

    def _set_point(self, new_point: OperatingPoint) -> None:
        """Change the operating point, charging any switch halt."""
        if new_point == self._point:
            return
        if new_point not in self.machine:  # O(1) membership via point index
            raise SimulationError(
                f"policy requested {new_point}, which is not an operating "
                f"point of {self.machine.name}")
        old_point = self._point
        self._switches += 1
        halt = self.switching.switch_time(old_point, new_point)
        self._point = new_point
        cb = self._obs_freq
        if cb is not None:
            # Fired before the halt advances time, so collectors see the
            # transition instant; the halt itself is charged below.
            cb(self, old_point, new_point)
        if halt > 0.0:
            # The processor halts for the transition; the halt is charged
            # like an idle interval at the *target* point ("almost no energy
            # ... the processor does not operate during the switching
            # interval" — at most idle-level energy).
            energy = self.energy_model.idle_energy(new_point, halt)
            self._energy.switch += energy
            self._record_segment(self.time, self.time + halt, None, 0.0,
                                 energy, kind="switch")
            self.time += halt

    # ------------------------------------------------------------------
    # time advancement
    # ------------------------------------------------------------------
    def _advance_one_segment(self) -> Optional[Job]:
        """Run or idle until the next event (release, completion, wakeup,
        admission, or end of simulation).

        Returns the job that executed (None for idle or zero-length
        segments) so the run loop can account context switches.
        """
        horizon = min(self._next_event_time(), self.duration)
        if horizon <= self.time + _EPS:
            # An event became due while a hook advanced time (switch halt);
            # let the main loop process it before executing anything.
            return None
        job = self._pick_job()
        if job is None:
            idle_hook = getattr(self.policy, "on_idle", None)
            if idle_hook is not None:
                new_point = idle_hook(self)
                self._invalidate_wakeup()
                if new_point is not None:
                    self._set_point(new_point)
            self._idle_until(horizon)
            return None
        frequency = self._point.frequency
        completion_time = self.time + job.remaining / frequency
        if completion_time <= horizon + _EPS:
            self._execute(job, cycles=job.remaining,
                          until=completion_time, completes=True)
        else:
            dt = horizon - self.time
            self._execute(job, cycles=dt * frequency, until=horizon,
                          completes=False)
        return job

    def _next_event_time(self) -> float:
        horizon = self._peek_next_release()
        admission = self._next_admission_time()
        if admission < horizon:
            horizon = admission
        wakeup = self._policy_wakeup_time()
        if wakeup is not None and wakeup < horizon:
            horizon = wakeup
        return horizon

    def _execute(self, job: Job, cycles: float, until: float,
                 completes: bool) -> None:
        start = self.time
        if until < start - _EPS:
            raise SimulationError(
                f"time would run backwards: {start} -> {until}")
        energy = self.energy_model.execution_energy(self._point, cycles)
        self._energy.add_execution(self._point, energy)
        job.executed += cycles
        self._busy_time += until - start
        self._record_segment(start, until, job.task.name, cycles, energy)
        self.time = until
        if completes:
            job.executed = job.demand  # absorb floating-point residue
            job.completion_time = self.time
            self._ready_discard(job)
            cb = self._obs_completion
            if cb is not None:
                cb(self, job)
            ev = self._obs_event
            if ev is not None:
                t0 = perf_counter()
                self._policy_hook(self.policy.on_completion, job.task)
                ev("completion", self.time, perf_counter() - t0)
            else:
                self._policy_hook(self.policy.on_completion, job.task)
            self._check_deferred_releases()

    def _idle_until(self, horizon: float) -> None:
        if horizon <= self.time + _EPS:
            self.time = max(self.time, horizon)
            return
        duration = horizon - self.time
        energy = self.energy_model.idle_energy(self._point, duration)
        self._energy.idle += energy
        self._idle_time += duration
        self._record_segment(self.time, horizon, None, 0.0, energy,
                             kind="idle")
        self.time = horizon

    def _record_segment(self, start: float, end: float, task: Optional[str],
                        cycles: float, energy: float,
                        kind: str = "run") -> None:
        record = self._trace_record
        if record is not None:
            record(start, end, task, self._point, cycles, energy, kind)

    # ------------------------------------------------------------------
    # deadline accounting
    # ------------------------------------------------------------------
    def _record_miss(self, job: Job) -> None:
        miss = DeadlineMiss(task_name=job.task.name,
                            release_time=job.release_time,
                            deadline=job.absolute_deadline,
                            demand=job.demand, executed=job.executed)
        self._misses.append(miss)
        cb = self._obs_miss
        if cb is not None:
            cb(self, miss)
        if self.on_miss == "raise":
            raise DeadlineMissError(job.task.name, job.release_time,
                                    job.absolute_deadline, self.time)

    def _final_deadline_check(self) -> None:
        """Flag jobs whose deadline fell inside the run but never finished."""
        for job in self._jobs:
            if job.is_complete:
                continue
            if job.absolute_deadline <= self.duration + _EPS:
                already = any(m.task_name == job.task.name
                              and m.release_time == job.release_time
                              for m in self._misses)
                if not already:
                    self._record_miss(job)


def simulate(taskset: TaskSet, machine: Machine, policy, **kwargs) -> SimResult:
    """Convenience one-shot wrapper: build a :class:`Simulator` and run it.

    All keyword arguments are forwarded to :class:`Simulator`.
    """
    return Simulator(taskset, machine, policy, **kwargs).run()
