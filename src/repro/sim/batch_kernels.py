"""Flat-array simulation kernels for the batch sweep backend.

The discrete-event :class:`~repro.sim.engine.Simulator` is built for
generality: admission queues, policy wakeups, switch halts, pluggable
instrumentation, and lazily-invalidated heaps.  A sweep cell needs none of
that — every cell the batch backend accepts is a fixed periodic task set,
free switching, WCET-clamped demands, and a policy that only reacts to
releases, completions, and idling.  :func:`kernel_simulate` replays exactly
that envelope over flat per-task arrays (release times, current deadlines,
ready slots — one slot per task index) and drives the *real* policy object
through the same :class:`~repro.sim.engine.SchedulerView` protocol the
engine exposes, so every frequency-selection decision (ccEDF's utilization
bands, ccRM's quota walk, laEDF's deferral loop) is made by the same code
and is bit-for-bit identical by construction.

What the kernel removes is pure engine overhead: the three event heaps and
their lazy-invalidation tuples, the ready-entry side table, the wakeup
cache churn, the instrumentation pointer tests, the per-event method-call
chains, and the repeated ``energy_per_cycle`` property evaluations (cached
here per operating point).  Because the supported modes (``on_miss``
"raise"/"drop") keep at most one live job per task, the ready queue
collapses to one slot per task index and job picking to a linear argmin
over ``(deadline-or-period, task index)`` — the same total order as the
engine's heap keys.  The main loop is deliberately one flat function:
between two release instants ("a window") it executes segments back to
back without re-deriving the release state the engine re-scans per event.

The module also hosts the cross-cell *block* kernels used by
:mod:`repro.analysis.batch`: vectorized release counting, zero-demand
release detection, the final deadline sweep, and ``lowest_at_least`` over a
batch of speed requests.  Each evaluates the identical per-element
comparisons as its scalar counterpart; numpy (when installed) only changes
how the elements are iterated, never the arithmetic, and is imported
lazily behind :func:`numpy_backend` so the scalar sweep path keeps its
"numpy never imported" invariant (pinned by ``benchmarks/numpy_guard``).
"""

from __future__ import annotations

import bisect
import math
import os
from typing import Dict, List, Optional, Sequence, Union

from repro.core.base import DVSPolicy
from repro.errors import DeadlineMissError, MachineError, SimulationError
from repro.hw.energy import EnergyModel
from repro.hw.machine import Machine
from repro.model.demand import DemandModel, WorstCaseDemand, demand_from_spec
from repro.model.job import Job
from repro.model.task import Task, TaskSet
from repro.sim.engine import SchedulerView
from repro.sim.results import DeadlineMiss, EnergyBreakdown, SimResult
from repro.sim.scheduler import make_priority
from repro.sim.timeline import make_trace

#: Same event tolerance as the engine.
_EPS = 1e-9

#: Miss modes the kernel replicates.  "continue" allows several live jobs
#: per task, which breaks the one-ready-slot-per-task layout; cells that
#: need it fall back to the engine.
KERNEL_MISS_MODES = ("raise", "drop")

#: Element count below which the block kernels skip numpy: crossing into
#: numpy costs more than a tiny Python loop for a handful of elements.
#: The size check runs *before* :func:`numpy_backend`, so small batches
#: never trigger the import.
_NUMPY_MIN = 64

_INF = math.inf

# ---------------------------------------------------------------------------
# the lazy numpy seam
# ---------------------------------------------------------------------------

#: ``RTDVS_NO_NUMPY=1`` pins the pure-Python kernels process-wide (the
#: numpy-absent CI leg runs the batch/block suites under it); a later
#: ``set_numpy_enabled(True)`` still overrides for targeted tests.
_numpy_enabled = os.environ.get("RTDVS_NO_NUMPY", "") not in ("1", "true")
_numpy_module = None
_numpy_missing = False


def set_numpy_enabled(enabled: bool) -> None:
    """Force the pure-Python block kernels (``False``) or restore the
    default lazy numpy acceleration (``True``).

    Used by the differential tests to pin both sides of the
    numpy-on/numpy-off bit-identity gate, and available to callers that
    must not pull numpy into the process.
    """
    global _numpy_enabled
    _numpy_enabled = bool(enabled)


def numpy_backend():
    """The numpy module, or ``None`` (disabled or not installed).

    The import happens on first use from *batch* code only — nothing on
    the scalar sweep path calls into this module, so ``numpy`` stays out
    of ``sys.modules`` for scalar sweeps (the laziness invariant asserted
    by ``benchmarks.numpy_guard``).
    """
    global _numpy_module, _numpy_missing
    if not _numpy_enabled or _numpy_missing:
        return None
    if _numpy_module is None:
        try:
            import numpy
        except ImportError:  # pragma: no cover - image always has numpy
            _numpy_missing = True
            return None
        _numpy_module = numpy
    return _numpy_module


# ---------------------------------------------------------------------------
# block kernels (cell/task index as the leading axis)
# ---------------------------------------------------------------------------

def release_counts(periods: Sequence[float], duration: float) -> List[int]:
    """Releases the engine fires per task over ``[0, duration)``.

    Replays the engine's convention exactly: releases happen at the
    *accumulated* times ``0, p, p+p, ...`` (repeated addition, not
    ``k*p``) while the accumulated time stays below ``duration - _EPS``
    (the at-the-horizon release is suppressed).  Accumulation order
    matters in floating point, so this kernel is intentionally not
    expressed as a closed-form divide.
    """
    limit = duration - _EPS
    counts: List[int] = []
    for period in periods:
        release = 0.0
        n = 0
        while release < limit:
            n += 1
            release += period
        counts.append(n)
    return counts


def zero_demand_mask(demands: Sequence[float]) -> List[bool]:
    """Per-element ``demand <= _EPS`` — the engine's zero-demand release
    test, applied to a whole release batch at once."""
    if len(demands) >= _NUMPY_MIN:
        np = numpy_backend()
        if np is not None:
            arr = np.asarray(demands, dtype=np.float64)
            return (arr <= _EPS).tolist()
    return [demand <= _EPS for demand in demands]


def deadline_miss_mask(deadlines: Sequence[float],
                       completed: Sequence[bool],
                       duration: float) -> List[bool]:
    """Per-job final-deadline test: incomplete and the absolute deadline
    fell inside the run (``deadline <= duration + _EPS``) — exactly the
    predicate of the engine's final deadline check."""
    if len(deadlines) >= _NUMPY_MIN:
        np = numpy_backend()
        if np is not None:
            dl = np.asarray(deadlines, dtype=np.float64)
            done = np.asarray(completed, dtype=bool)
            return (~done & (dl <= duration + _EPS)).tolist()
    return [not done and deadline <= duration + _EPS
            for deadline, done in zip(deadlines, completed)]


def lowest_at_least_indices(machine: Machine,
                            speeds: Sequence[float]) -> List[int]:
    """Vectorized frequency selection: the operating-point index
    :meth:`~repro.hw.machine.Machine.lowest_at_least` would pick for each
    requested speed.

    Mirrors the scalar method exactly — ``bisect_left(frequencies,
    speed - 1e-9)`` clamped to the table, with the same over-unity error —
    so ``machine.points[i]`` equals the scalar selection element-wise.
    """
    frequencies = machine.frequencies
    top = len(frequencies) - 1
    if len(speeds) >= _NUMPY_MIN:
        np = numpy_backend()
        if np is not None:
            arr = np.asarray(speeds, dtype=np.float64)
            over = arr > 1.0 + 1e-7
            if bool(over.any()):
                _raise_over_unity(float(arr[over][0]))
            indices = np.searchsorted(
                np.asarray(frequencies, dtype=np.float64),
                arr - _EPS, side="left")
            return np.minimum(indices, top).tolist()
    out: List[int] = []
    for speed in speeds:
        if speed > 1.0 + 1e-7:
            _raise_over_unity(speed)
        index = bisect.bisect_left(frequencies, speed - _EPS)
        out.append(index if index <= top else top)
    return out


def _raise_over_unity(speed: float) -> None:
    """The same error ``Machine.lowest_at_least`` raises."""
    raise MachineError(
        f"required relative speed {speed} exceeds the maximum (1.0)")


# ---------------------------------------------------------------------------
# kernel eligibility
# ---------------------------------------------------------------------------

def kernel_supported(policy, on_miss: str = "raise", instrument=None,
                     admissions: Sequence = (), enforce_wcet: bool = True,
                     switching=None, **_ignored) -> bool:
    """Whether :func:`kernel_simulate` replicates this run exactly.

    The envelope: a :class:`~repro.core.base.DVSPolicy` without a timer
    (``wakeup_time``), no instrumentation, no dynamic admissions,
    WCET-clamped demands, free switching, and a miss mode that keeps at
    most one live job per task.  Everything else falls back to the engine
    (the caller's responsibility — see
    :func:`repro.analysis.batch.batch_simulate`).
    """
    return (isinstance(policy, DVSPolicy)
            and getattr(policy, "wakeup_time", None) is None
            and instrument is None
            and not admissions
            and enforce_wcet
            and switching is None
            and on_miss in KERNEL_MISS_MODES)


def _overrides(policy, hook_name: str) -> bool:
    """Whether ``policy`` overrides a :class:`DVSPolicy` no-op hook.

    The engine calls every hook unconditionally; the base-class bodies
    return ``None``, which the engine ignores.  Skipping those calls is
    outcome-identical and removes per-event call overhead entirely for
    the static and NoDVS policies.
    """
    return getattr(type(policy), hook_name) is not getattr(DVSPolicy,
                                                           hook_name)


# ---------------------------------------------------------------------------
# the per-cell kernel
# ---------------------------------------------------------------------------

class CellKernel(SchedulerView):
    """One cell's simulation state, flattened to per-task-index arrays.

    Implements the :class:`~repro.sim.engine.SchedulerView` protocol the
    policies read, over:

    * ``_next_release[i]`` — the release queue (argmin instead of a heap;
      at-the-horizon releases follow the engine's suppression convention);
    * ``_job[i]`` / ``_job_deadline[i]`` — the deadline index (the current
      invocation's deadline persists after completion, exactly like the
      engine's lazily-invalidated deadline heap);
    * ``_ready[i]`` — the ready queue (one slot per task: the supported
      miss modes never leave two live jobs of one task ready).

    Task parameters may be supplied pre-flattened by a column block
    (``params=(periods, wcets)``) so a sweep column shares one SoA
    materialization across its cells.
    """

    def __init__(self, taskset: TaskSet, machine: Machine, policy,
                 demand: Union[str, float, DemandModel, None] = None,
                 duration: Optional[float] = None,
                 energy_model: Optional[EnergyModel] = None,
                 on_miss: str = "raise",
                 record_trace: bool = False,
                 trace_backend: str = "array",
                 scheduler: Optional[str] = None,
                 instrument=None,
                 params: Optional[tuple] = None):
        if instrument is not None:
            raise SimulationError(
                "the batch kernel does not support instrumentation; "
                "use the scalar engine for instrumented runs")
        if on_miss not in KERNEL_MISS_MODES:
            raise SimulationError(
                f"batch kernel supports on_miss in {KERNEL_MISS_MODES}, "
                f"got {on_miss!r}")
        self.taskset = taskset
        self.machine = machine
        self.policy = policy
        if demand is None:
            self.demand_model: DemandModel = WorstCaseDemand()
        else:
            self.demand_model = demand_from_spec(demand)
        self.duration = (duration if duration is not None
                         else 2.0 * max(t.period for t in taskset))
        if self.duration <= 0:
            raise SimulationError(
                f"duration must be positive, got {self.duration}")
        self.energy_model = energy_model or EnergyModel()
        scheduler_name = scheduler or getattr(policy, "scheduler", "edf")
        # Built for its validation and canonical name; keys are inlined.
        self._priority_name = make_priority(scheduler_name, taskset).name
        self.on_miss = on_miss

        tasks = list(taskset)
        self._tasks = tasks
        self._n = len(tasks)
        self._tindex: Dict[str, int] = {t.name: i for i, t in
                                        enumerate(tasks)}
        # Identity fast path for job_of: policies pass the task objects of
        # this task set, so an id() lookup skips the attribute access and
        # string hash of the name lookup (kept as the fallback so
        # equal-but-distinct Task objects still resolve, like the engine).
        self._id_index: Dict[int, int] = {id(t): i for i, t in
                                          enumerate(tasks)}
        if params is not None:
            self._period, self._wcet = params
        else:
            self._period = [t.period for t in tasks]
            self._wcet = [t.wcet for t in tasks]

        # -- flat per-task state (the SoA row this cell occupies) --
        self._next_release = [0.0] * self._n
        self._invocation = [0] * self._n
        self._job: List[Optional[Job]] = [None] * self._n
        self._job_deadline = [_INF] * self._n
        self._ready: List[Optional[Job]] = [None] * self._n

        # -- run accounting --
        self.time = 0.0
        self._jobs: List[Job] = []
        self._jobs_deadline: List[float] = []
        self._misses: List[DeadlineMiss] = []
        self._energy = EnergyBreakdown()
        self._switches = 0
        self._point = machine.fastest
        self._trace = make_trace(record_trace, trace_backend)
        self._finished = False

        # Hook dispatch: bound method when overridden, None when the
        # base-class no-op would run (the engine calls it and discards
        # the None — skipping is outcome-identical).
        self._on_release = (policy.on_release
                            if _overrides(policy, "on_release") else None)
        self._on_completion = (policy.on_completion
                               if _overrides(policy, "on_completion")
                               else None)
        self._on_idle = (policy.on_idle
                         if _overrides(policy, "on_idle") else None)
        self._on_invalidate = (policy.on_releases_invalidate
                               if _overrides(policy,
                                             "on_releases_invalidate")
                               else None)

    # ------------------------------------------------------------------
    # SchedulerView protocol
    # ------------------------------------------------------------------
    def job_of(self, task: Task) -> Optional[Job]:
        index = self._id_index.get(id(task))
        if index is None:
            index = self._tindex.get(task.name)
            if index is None:
                return None
        return self._job[index]

    def current_deadline(self, task: Task) -> Optional[float]:
        job = self.job_of(task)
        return job.absolute_deadline if job else None

    def earliest_deadline(self) -> Optional[float]:
        earliest = min(self._job_deadline) if self._job_deadline else _INF
        return earliest if earliest != _INF else None

    def worst_case_remaining(self, task: Task) -> float:
        job = self.job_of(task)
        if job is None:
            return 0.0
        return job.worst_case_remaining

    def worst_case_remaining_each(self, tasks: Sequence[Task],
                                  out: Optional[List[float]] = None
                                  ) -> List[float]:
        id_index = self._id_index
        tindex = self._tindex
        jobs = self._job
        if out is None or len(out) != len(tasks):
            out = [0.0] * len(tasks)
        for index, task in enumerate(tasks):
            i = id_index.get(id(task))
            if i is None:
                i = tindex.get(task.name)
            job = jobs[i] if i is not None else None
            if job is None or job.completion_time is not None:
                out[index] = 0.0
            else:
                remaining = job.task.wcet - job.executed
                out[index] = remaining if remaining > 0.0 else 0.0
        return out

    def executed_in_invocation(self, task: Task) -> float:
        job = self.job_of(task)
        return job.executed if job else 0.0

    def invocation_of(self, task: Task) -> int:
        job = self.job_of(task)
        return job.index if job else -1

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        """Execute the cell and return its result (single use).

        One flat loop, engine-equivalent step for step: process every due
        release (index order = the engine's ordinal order), stop at the
        duration edge, otherwise execute segments back to back until the
        next release instant.  All simulator state lives in locals; the
        attributes policies read through the view protocol (``time`` and
        the per-task arrays) are synced at every point a policy can
        observe them (hook calls and miss handling).
        """
        if self._finished:
            raise SimulationError("CellKernel instances are single-use; "
                                  "construct a new one to run again")
        self._finished = True

        initial = self.policy.setup(self)
        if initial is not None:
            # The engine assigns the setup point directly: no switch is
            # counted and no membership check is applied.
            self._point = initial

        # -- hoist everything the hot loop touches --
        n = self._n
        range_n = range(n)
        tasks = self._tasks
        period = self._period
        wcet = self._wcet
        next_release = self._next_release
        invocation = self._invocation
        job_slot = self._job
        job_deadline = self._job_deadline
        ready = self._ready
        duration = self.duration
        edge = duration - _EPS
        drop_on_miss = self.on_miss == "drop"
        jobs_log = self._jobs
        deadline_log = self._jobs_deadline
        trace = self._trace
        record = trace.record if trace is not None else None
        on_release = self._on_release
        on_completion = self._on_completion
        on_idle = self._on_idle
        invalidate = self._on_invalidate
        key = period if self._priority_name == "rm" else job_deadline

        model = self.demand_model
        demand_at = getattr(model, "demand_at", None)
        demand_of = model.demand

        # Energy coefficients, with energy_per_cycle (a property that
        # multiplies voltage² on every access) cached per point.  The
        # engine computes scale * idle_level * cycles * epc left to
        # right, so hoisting (scale * idle_level) keeps the products
        # bit-identical.
        scale = self.energy_model.cycle_energy_scale
        idle_coeff = scale * self.energy_model.idle_level
        point = self._point
        frequency = point.frequency
        epc = point.energy_per_cycle

        # Execution energy accumulates into flat slots, one per operating
        # point in first-use order (the insertion order the engine's
        # breakdown dict ends up with).  The slot for the current point is
        # resolved lazily after each switch, so the hot segment loop pays
        # a single list-indexed add — no OperatingPoint hashing.
        self._acc_energy: List[float] = []
        self._acc_points: List[object] = []
        self._acc_by_op = [-1] * len(self.machine.frequencies)
        self._acc_off: Dict[object, int] = {}
        acc_energy = self._acc_energy
        slot = -1
        idle_energy = 0.0

        time = 0.0

        while True:
            # ---- release phase (engine: fixed point over due releases;
            # one extra scan confirms quiescence) ----
            limit = time + _EPS
            due = [i for i in range_n
                   if next_release[i] <= limit and next_release[i] < edge]
            if due:
                released_tasks: List[Task] = []
                zero_tasks: List[Task] = []
                for i in due:
                    while True:
                        release_time = next_release[i]
                        old = job_slot[i]
                        if old is not None and old.completion_time is None:
                            self.time = time
                            self._record_miss(old)  # raises in raise mode
                            if drop_on_miss and ready[i] is old:
                                ready[i] = None
                        task = tasks[i]
                        inv = invocation[i]
                        if demand_at is not None:
                            demand = demand_at(task, inv, release_time)
                        else:
                            demand = demand_of(task, inv)
                        cap = wcet[i]
                        if demand > cap:  # enforce_wcet, as min(d, wcet)
                            demand = cap
                        job = Job(task=task, release_time=release_time,
                                  demand=demand, index=inv)
                        job_slot[i] = job
                        deadline = release_time + period[i]
                        job_deadline[i] = deadline
                        invocation[i] = inv + 1
                        next_release[i] = deadline
                        jobs_log.append(job)
                        deadline_log.append(deadline)
                        released_tasks.append(task)
                        if demand > _EPS:
                            ready[i] = job
                        else:
                            # Engine's zero-demand pass: completes at the
                            # current time without ever becoming ready.
                            job.completion_time = time
                            zero_tasks.append(task)
                        if not (next_release[i] <= limit
                                and next_release[i] < edge):
                            break
                if invalidate is not None:
                    self.time = time
                    invalidate(self, released_tasks)
                if on_release is not None:
                    self.time = time
                    for task in released_tasks:
                        new_point = on_release(self, task)
                        if new_point is not None and new_point != point:
                            self._point = point
                            self._set_point(new_point)
                            point = self._point
                            frequency = point.frequency
                            epc = point.energy_per_cycle
                            slot = -1
                if on_completion is not None and zero_tasks:
                    self.time = time
                    for task in zero_tasks:
                        new_point = on_completion(self, task)
                        if new_point is not None and new_point != point:
                            self._point = point
                            self._set_point(new_point)
                            point = self._point
                            frequency = point.frequency
                            epc = point.energy_per_cycle
                            slot = -1
                # No quiescence re-scan: every processed index advanced
                # its next release by a full period past ``limit`` (the
                # catch-up loop guarantees it), and hooks never touch the
                # release state, so the engine's fixed-point iteration
                # is provably a single pass here.

            # ---- duration edge (the engine checks after releases) ----
            if time >= edge:
                break

            # ---- one window: [time, next release instant) ----
            horizon_raw = min(next_release)
            horizon = horizon_raw if horizon_raw < duration else duration
            if horizon <= limit:
                # Suppressed at-the-edge release coinciding with the
                # current instant; the engine makes no progress here
                # either (it re-enters its event scan).
                continue
            while True:
                best = -1
                best_key = _INF
                for i in range_n:
                    if ready[i] is not None:
                        k = key[i]
                        if k < best_key:
                            best = i
                            best_key = k
                if best < 0:
                    # Idle to the horizon.  The idle hook may retune
                    # first (ccEDF drops to the slowest point).
                    if on_idle is not None:
                        self.time = time
                        new_point = on_idle(self)
                        if new_point is not None and new_point != point:
                            self._point = point
                            self._set_point(new_point)
                            point = self._point
                            frequency = point.frequency
                            epc = point.energy_per_cycle
                            slot = -1
                    cycles = (horizon - time) * frequency
                    energy = idle_coeff * cycles * epc
                    idle_energy += energy
                    if record is not None:
                        record(time, horizon, None, point, 0.0, energy,
                               "idle")
                    time = horizon
                    break
                job = ready[best]
                remaining = job.demand - job.executed
                if remaining < 0.0:
                    remaining = 0.0
                completion_time = time + remaining / frequency
                if completion_time <= horizon + _EPS:
                    energy = scale * remaining * epc
                    if slot < 0:
                        slot = self._slot_for(point)
                    acc_energy[slot] += energy
                    job.executed = job.demand  # absorb float residue
                    job.completion_time = completion_time
                    ready[best] = None
                    if record is not None:
                        record(time, completion_time, job.task.name, point,
                               remaining, energy, "run")
                    time = completion_time
                    if on_completion is not None:
                        self.time = time
                        new_point = on_completion(self, job.task)
                        if new_point is not None and new_point != point:
                            self._point = point
                            self._set_point(new_point)
                            point = self._point
                            frequency = point.frequency
                            epc = point.energy_per_cycle
                            slot = -1
                    # The window survives a completion unless the next
                    # release (or the duration edge) is upon us.
                    if horizon_raw <= time + _EPS or time >= edge:
                        break
                else:
                    cycles = (horizon - time) * frequency
                    energy = scale * cycles * epc
                    if slot < 0:
                        slot = self._slot_for(point)
                    acc_energy[slot] += energy
                    job.executed += cycles
                    if record is not None:
                        record(time, horizon, job.task.name, point, cycles,
                               energy, "run")
                    time = horizon
                    break

        # ---- wind down ----
        self.time = time
        self._point = point
        breakdown = self._energy
        for acc_point, energy in zip(self._acc_points, acc_energy):
            breakdown.add_execution(acc_point, energy)
        breakdown.idle = idle_energy
        self._final_deadline_check()
        return SimResult(
            taskset=self.taskset,
            policy_name=getattr(self.policy, "name",
                                type(self.policy).__name__),
            scheduler_name=self._priority_name,
            duration=duration,
            energy=breakdown,
            jobs=jobs_log,
            misses=self._misses,
            switches=self._switches,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # point changes / deadline accounting
    # ------------------------------------------------------------------
    def _slot_for(self, point) -> int:
        """Accumulation slot for ``point``, created on first use.

        Called at most once per operating-point switch (the hot loop
        caches the result), so the hash/index work happens off the
        per-segment path.  Slots are created in first-accumulation order,
        which is exactly the key insertion order of the engine's energy
        breakdown dict; value-equal points share a slot just as they
        share a dict key.  Points outside the machine table (a ``setup``
        return is not membership-checked, matching the engine) fall back
        to a value-keyed side map.
        """
        try:
            op_index = self.machine.index_of(point)
        except MachineError:
            slot = self._acc_off.get(point, -1)
            if slot < 0:
                slot = len(self._acc_energy)
                self._acc_off[point] = slot
                self._acc_points.append(point)
                self._acc_energy.append(0.0)
            return slot
        slot = self._acc_by_op[op_index]
        if slot < 0:
            slot = len(self._acc_energy)
            self._acc_by_op[op_index] = slot
            self._acc_points.append(point)
            self._acc_energy.append(0.0)
        return slot

    def _set_point(self, new_point) -> None:
        if new_point == self._point:
            return
        if new_point not in self.machine:
            raise SimulationError(
                f"policy requested {new_point}, which is not an operating "
                f"point of {self.machine.name}")
        self._switches += 1
        self._point = new_point

    def _record_miss(self, job: Job) -> None:
        miss = DeadlineMiss(task_name=job.task.name,
                            release_time=job.release_time,
                            deadline=job.absolute_deadline,
                            demand=job.demand, executed=job.executed)
        self._misses.append(miss)
        if self.on_miss == "raise":
            raise DeadlineMissError(job.task.name, job.release_time,
                                    job.absolute_deadline, self.time)

    def _final_deadline_check(self) -> None:
        jobs = self._jobs
        if not jobs:
            return
        completed = [job.completion_time is not None for job in jobs]
        mask = deadline_miss_mask(self._jobs_deadline, completed,
                                  self.duration)
        misses = self._misses
        for index, flagged in enumerate(mask):
            if not flagged:
                continue
            job = jobs[index]
            already = any(m.task_name == job.task.name
                          and m.release_time == job.release_time
                          for m in misses)
            if not already:
                self._record_miss(job)


def kernel_simulate(taskset: TaskSet, machine: Machine, policy,
                    **kwargs) -> SimResult:
    """One-shot wrapper: build a :class:`CellKernel` and run it.

    Accepts the :func:`repro.sim.engine.simulate` keywords inside the
    kernel envelope (``demand``, ``duration``, ``energy_model``,
    ``on_miss``, ``record_trace``, ``trace_backend``, ``scheduler``) and
    returns a :class:`~repro.sim.results.SimResult` bit-identical to the
    engine's.  Callers should gate on :func:`kernel_supported` and fall
    back to the engine outside the envelope.
    """
    return CellKernel(taskset, machine, policy, **kwargs).run()
