"""Standalone sweep worker: pull leases, simulate, stream outcomes back.

``rtdvs worker --connect HOST:PORT`` runs :func:`run_worker`: connect to
a coordinator, announce capabilities (``hello``), then loop
request → lease → simulate → result until the coordinator says
``shutdown``.  The worker simulates with the same scalar/batch/block
engines the in-process path uses — ``--engine auto`` (the default)
follows each lease's engine hint, an explicit engine pins it (the
operator knows whether this box has numpy, how wide its vector units
are) — so distributed outcomes are bit-identical by construction, and
results return as the exact CTR1 bytes of
:mod:`repro.analysis.transport`.

While a batch simulates, a daemon heartbeat thread extends the lease
every ``heartbeat_interval`` seconds (interval assigned by the
coordinator in ``welcome``); a worker that stops heartbeating — killed,
wedged, partitioned — loses the lease and its cells are re-queued.  The
socket write lock serializes heartbeats against result frames.

Deterministic simulation errors (a cell raising
:class:`~repro.errors.ReproError`) are reported with an ``error`` frame
so the coordinator fails those cells instead of burning retries on them;
infrastructure failures just drop the connection and let lease recovery
do its job.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.analysis.sweep import SweepContext, run_cell
from repro.analysis.transport import encode_cell
from repro.dist.wire import (WIRE_VERSION, WireError, context_from_wire,
                             recv_frame, send_frame, specs_from_wire)
from repro.errors import ReproError

#: Engines a worker accepts for ``--engine`` (``"auto"`` = follow the
#: coordinator's per-lease hint).
WORKER_ENGINES = ("auto", "scalar", "batch", "block")


class WorkerError(ReproError):
    """The worker could not reach or converse with the coordinator."""


def parse_connect(text: str) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (host may be omitted: ``:9000`` = loopback)."""
    host, sep, port_text = text.rpartition(":")
    if not sep:
        raise WorkerError(
            f"--connect expects HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
        if not 0 < port < 65536:
            raise ValueError
    except ValueError:
        raise WorkerError(f"invalid port in --connect {text!r}") from None
    return host or "127.0.0.1", port


def _simulate_lease(context: SweepContext, specs: List, engine: str
                    ) -> Tuple[List[bytes], Optional[Dict[str, object]]]:
    """Run one lease's cells; returns encoded outcomes in spec order
    (plus the block engine's stats dict when applicable)."""
    encoded: List[Optional[bytes]] = [None] * len(specs)
    if engine == "block":
        from repro.analysis.batch import BlockStats, iter_cells_block
        stats = BlockStats()
        for index, outcome in iter_cells_block(context, specs,
                                               stats=stats):
            encoded[index] = encode_cell(outcome)
        return encoded, stats.to_dict()
    if engine == "batch":
        from repro.analysis.batch import iter_cells_batch
        for index, outcome in iter_cells_batch(context, specs):
            encoded[index] = encode_cell(outcome)
        return encoded, None
    for index, spec in enumerate(specs):
        encoded[index] = encode_cell(run_cell(context, spec))
    return encoded, None


class _Heartbeat:
    """Daemon thread extending one lease while its batch simulates."""

    def __init__(self, sock: socket.socket, lock: threading.Lock,
                 lease_id: int, interval: float):
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, args=(sock, lock, lease_id, interval),
            name=f"dist-heartbeat-{lease_id}", daemon=True)
        self._thread.start()

    def _run(self, sock, lock, lease_id, interval):
        while not self._stop.wait(interval):
            try:
                send_frame(sock, "heartbeat", {"lease": lease_id},
                           lock=lock)
            except OSError:
                return

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def run_worker(host: str, port: int, engine: str = "auto",
               max_leases: Optional[int] = None,
               reconnect: int = 0, reconnect_delay: float = 0.5,
               connect_timeout: float = 10.0,
               log=None) -> Dict[str, object]:
    """Serve one coordinator until it shuts down; returns run stats.

    ``reconnect`` bounds re-dial attempts after a *dropped* connection
    (an orderly ``shutdown`` frame always ends the loop); ``max_leases``
    exits after N leases (test harnesses simulate short-lived workers
    with it).
    """
    if engine not in WORKER_ENGINES:
        raise WorkerError(
            f"unknown worker engine {engine!r}; expected one of "
            f"{', '.join(WORKER_ENGINES)}")
    stats: Dict[str, object] = {
        "leases": 0, "cells": 0, "bytes_out": 0,
        "reconnects": 0, "errors": 0,
    }
    attempts_left = reconnect
    while True:
        try:
            sock = socket.create_connection((host, port),
                                            timeout=connect_timeout)
        except OSError as exc:
            if attempts_left > 0:
                attempts_left -= 1
                stats["reconnects"] += 1
                time.sleep(reconnect_delay)
                continue
            raise WorkerError(
                f"cannot reach coordinator at {host}:{port}: {exc}"
            ) from exc
        try:
            finished = _serve_connection(sock, engine, max_leases, stats,
                                         log)
        except (OSError, WireError) as exc:
            if log is not None:
                print(f"[worker] connection lost: {exc}", file=log,
                      flush=True)
            finished = False
        finally:
            sock.close()
        if finished:
            return stats
        if attempts_left <= 0:
            return stats
        attempts_left -= 1
        stats["reconnects"] += 1
        time.sleep(reconnect_delay)


def _serve_connection(sock: socket.socket, engine: str,
                      max_leases: Optional[int], stats: Dict[str, object],
                      log) -> bool:
    """One connection's lifetime; ``True`` on orderly shutdown."""
    write_lock = threading.Lock()
    stats["bytes_out"] += send_frame(
        sock, "hello",
        {"pid": os.getpid(), "engine": engine, "wire": WIRE_VERSION},
        lock=write_lock)
    sock.settimeout(30.0)  # welcome must arrive promptly
    welcome = recv_frame(sock)
    if welcome is None or welcome[0].get("kind") != "welcome":
        raise WorkerError("coordinator did not send a welcome frame")
    header = welcome[0]
    worker_id = header.get("worker_id", "?")
    heartbeat_interval = float(header.get("heartbeat", 5.0))
    if log is not None:
        print(f"[worker] connected as {worker_id} "
              f"(engine={engine}, heartbeat={heartbeat_interval:g}s)",
              file=log, flush=True)
    # Lease waits can legitimately be long (an idle coordinator holds the
    # request open until work arrives); rely on EOF/RST for liveness.
    sock.settimeout(None)
    contexts: Dict[str, SweepContext] = {}
    while True:
        if max_leases is not None and stats["leases"] >= max_leases:
            return True
        stats["bytes_out"] += send_frame(sock, "request", lock=write_lock)
        frame = recv_frame(sock)
        if frame is None:
            raise WireError("coordinator closed the connection")
        head, _ = frame
        kind = head.get("kind")
        if kind == "shutdown":
            return True
        if kind != "lease":
            raise WireError(f"unexpected frame kind {kind!r} from "
                            "coordinator")
        stats["leases"] += 1
        digest = head["digest"]
        if "context" in head:
            contexts[digest] = context_from_wire(head["context"])
        context = contexts.get(digest)
        if context is None:
            raise WireError(f"lease names unknown context {digest[:12]}")
        specs = specs_from_wire(head["specs"])
        tickets = head["tickets"]
        lease_engine = engine if engine != "auto" \
            else head.get("engine", "scalar")
        heartbeat = _Heartbeat(sock, write_lock, head["lease"],
                               heartbeat_interval)
        try:
            encoded, block_stats = _simulate_lease(context, specs,
                                                   lease_engine)
        except ReproError as exc:
            stats["errors"] += 1
            heartbeat.stop()
            stats["bytes_out"] += send_frame(
                sock, "error",
                {"lease": head["lease"], "tickets": tickets,
                 "message": str(exc)}, lock=write_lock)
            continue
        finally:
            heartbeat.stop()
        result_header = {"lease": head["lease"], "tickets": tickets}
        if block_stats is not None:
            result_header["stats"] = block_stats
        stats["bytes_out"] += send_frame(sock, "result", result_header,
                                         payloads=encoded,
                                         lock=write_lock)
        stats["cells"] += len(specs)
