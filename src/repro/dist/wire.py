"""Frame and payload codecs of the distributed sweep protocol.

Coordinator and workers speak length-prefixed frames over a plain TCP
stream:

``<I frame length | b"DWP1" | <I header length | JSON header | payloads``

The outer length covers everything after the prefix, so a reader always
knows exactly how many bytes to pull before parsing; the JSON header
carries the message ``kind`` plus small structured fields, and binary
payloads (encoded cell outcomes) ride as a raw tail whose segment sizes
are listed in the header (``"sizes"``).  Cell outcomes are *never*
re-encoded for the wire — workers produce the exact CTR1 bytes of
:mod:`repro.analysis.transport` and the coordinator forwards them to
:func:`~repro.analysis.transport.decode_cell` untouched, so distributed
outcomes are bit-identical to in-process ones by construction (raw
IEEE-754 columns round-trip exactly).

Message kinds
-------------
``hello`` (worker -> coordinator)
    First frame on a fresh connection: worker pid, pinned engine, wire
    version.
``welcome`` (coordinator -> worker)
    Assigned worker id, lease sizing, and the heartbeat interval the
    worker must honor.
``request`` (worker -> coordinator)
    The worker is idle and wants a lease.
``lease`` (coordinator -> worker)
    A batch of cells: lease id, context digest (full context JSON on
    first sight per connection), engine hint, and the cell specs.
``heartbeat`` (worker -> coordinator)
    Extends the named lease's deadline while a long batch simulates.
``result`` (worker -> coordinator)
    Completed tickets of a lease; one CTR1 payload per ticket, plus the
    block engine's stats dict when applicable.
``error`` (worker -> coordinator)
    A lease's cells raised a *deterministic* simulation error; the
    coordinator fails those tickets instead of retrying them.
``shutdown`` (coordinator -> worker)
    No more work will ever arrive; the worker exits its loop.

Specs and contexts travel as JSON built from the same canonical fields
:meth:`~repro.analysis.sweep.SweepContext.description` hashes, so a
worker-side rebuild reproduces cache keys and outcomes exactly.
Trace-carrying (uncacheable) specs are rejected at encode time — they
hold live demand traces that cannot be regenerated remotely, and the
coordinator runs them inline instead.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.sweep import CellSpec, SweepContext
from repro.errors import ReproError
from repro.hw.machine import Machine

#: Leading magic of every frame (Distributed Worker Protocol v1).
MAGIC = b"DWP1"

#: Version tag carried in ``hello`` frames; bump on incompatible change.
WIRE_VERSION = 1

#: Upper bound on a single frame — a lease of hundreds of cells plus a
#: context is a few hundred KB; anything near this limit is corruption.
MAX_FRAME_BYTES = 64 << 20

_LEN = struct.Struct("<I")


class WireError(ReproError):
    """A malformed, oversized, or truncated protocol frame."""


# ---------------------------------------------------------------------------
# frame codec
# ---------------------------------------------------------------------------

def pack_frame(kind: str, header: Optional[Dict[str, object]] = None,
               payloads: Sequence[bytes] = ()) -> bytes:
    """Serialize one frame to bytes (length prefix included)."""
    head: Dict[str, object] = {"kind": kind}
    if header:
        head.update(header)
    if payloads:
        head["sizes"] = [len(p) for p in payloads]
    head_bytes = json.dumps(head, separators=(",", ":"),
                            allow_nan=False).encode("utf-8")
    body = b"".join((MAGIC, _LEN.pack(len(head_bytes)), head_bytes,
                     *payloads))
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds the "
                        f"{MAX_FRAME_BYTES}-byte limit")
    return _LEN.pack(len(body)) + body


def unpack_frame(body: bytes) -> Tuple[Dict[str, object], List[bytes]]:
    """Parse a frame body (everything after the length prefix)."""
    try:
        if body[:4] != MAGIC:
            raise ValueError("bad frame magic")
        (head_len,) = _LEN.unpack_from(body, 4)
        head_end = 8 + head_len
        header = json.loads(body[8:head_end].decode("utf-8"))
        if not isinstance(header, dict) or "kind" not in header:
            raise ValueError("frame header must be an object with 'kind'")
        payloads: List[bytes] = []
        cursor = head_end
        for size in header.get("sizes", ()):
            payloads.append(body[cursor:cursor + size])
            cursor += size
        if cursor != len(body):
            raise ValueError("payload sizes disagree with frame length")
    except (ValueError, KeyError, IndexError, TypeError, struct.error,
            UnicodeDecodeError) as exc:
        raise WireError(f"malformed frame: {exc}") from exc
    return header, payloads


def send_frame(sock: socket.socket, kind: str,
               header: Optional[Dict[str, object]] = None,
               payloads: Sequence[bytes] = (),
               lock: Optional[threading.Lock] = None) -> int:
    """Write one frame to ``sock``; returns the bytes sent.

    ``lock`` serializes writers sharing a socket (the worker's heartbeat
    thread interleaves with its result sender).
    """
    frame = pack_frame(kind, header, payloads)
    if lock is not None:
        with lock:
            sock.sendall(frame)
    else:
        sock.sendall(frame)
    return len(frame)


def recv_frame(sock: socket.socket
               ) -> Optional[Tuple[Dict[str, object], List[bytes]]]:
    """Read one frame from ``sock``; ``None`` on clean EOF.

    Raises :class:`WireError` on a torn frame (EOF mid-body) or a length
    prefix beyond :data:`MAX_FRAME_BYTES`; socket timeouts propagate as
    :class:`socket.timeout` for the caller's keepalive logic.
    """
    prefix = _recv_exact(sock, _LEN.size, eof_ok=True)
    if prefix is None:
        return None
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds the "
                        f"{MAX_FRAME_BYTES}-byte limit")
    body = _recv_exact(sock, length, eof_ok=False)
    return unpack_frame(body)


def _recv_exact(sock: socket.socket, count: int,
                eof_ok: bool) -> Optional[bytes]:
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise WireError(
                f"connection closed mid-frame ({count - remaining}/"
                f"{count} bytes read)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# context / spec codecs
# ---------------------------------------------------------------------------

def context_to_wire(context: SweepContext) -> Dict[str, object]:
    """JSON-safe encoding of a shared sweep context.

    Carries the machine's operating points verbatim (floats survive JSON
    bit-exactly), so the worker-side rebuild hashes to the same digest.
    """
    return {
        "machine": [[p.frequency, p.voltage] for p in
                    context.machine.points],
        "machine_name": context.machine.name,
        "policies": list(context.policies),
        "duration": context.duration,
        "idle_level": context.idle_level,
        "cycle_energy_scale": context.cycle_energy_scale,
        "residency_policies": list(context.residency_policies),
        "steady_fast_path": context.steady_fast_path,
        "steady_resolution": context.steady_resolution,
    }


def context_from_wire(data: Dict[str, object]) -> SweepContext:
    """Rebuild a :class:`SweepContext` from its wire form."""
    try:
        return SweepContext(
            machine=Machine([tuple(point) for point in data["machine"]],
                            name=data.get("machine_name", "machine")),
            policies=tuple(data["policies"]),
            duration=data["duration"],
            idle_level=data["idle_level"],
            cycle_energy_scale=data["cycle_energy_scale"],
            residency_policies=tuple(data.get("residency_policies", ())),
            steady_fast_path=bool(data.get("steady_fast_path", False)),
            steady_resolution=data.get("steady_resolution", 1e-6))
    except (KeyError, TypeError, ValueError, ReproError) as exc:
        raise WireError(f"malformed wire context: {exc}") from exc


def spec_to_wire(spec: CellSpec) -> Dict[str, object]:
    """JSON-safe encoding of one cell spec (seed-level cells only)."""
    if spec.trace is not None:
        raise WireError(
            "trace-carrying cell specs are not wire-able (live demand "
            "traces cannot be regenerated remotely); run them locally")
    wire: Dict[str, object] = {
        "utilization": spec.utilization,
        "set_index": spec.set_index,
        "n_tasks": spec.n_tasks,
        "gen_seed": spec.gen_seed,
        "demand_seed": spec.demand_seed,
        "demand": spec.demand,
    }
    if spec.bands is not None:
        wire["bands"] = [list(band) for band in spec.bands]
    return wire


def spec_from_wire(data: Dict[str, object]) -> CellSpec:
    """Rebuild a :class:`CellSpec` from its wire form."""
    try:
        bands = data.get("bands")
        return CellSpec(
            utilization=data["utilization"],
            set_index=data["set_index"],
            n_tasks=data["n_tasks"],
            gen_seed=data["gen_seed"],
            demand_seed=data["demand_seed"],
            demand=data["demand"],
            bands=tuple(tuple(band) for band in bands)
            if bands is not None else None)
    except (KeyError, TypeError) as exc:
        raise WireError(f"malformed wire spec: {exc}") from exc


def specs_to_wire(specs: Iterable[CellSpec]) -> List[Dict[str, object]]:
    return [spec_to_wire(spec) for spec in specs]


def specs_from_wire(data: Iterable[Dict[str, object]]) -> List[CellSpec]:
    return [spec_from_wire(item) for item in data]
