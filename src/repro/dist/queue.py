"""Lease-based work queue for distributed sweep cells.

The coordinator owns one :class:`LeaseQueue`; connection handlers lease
batches of cells to workers and feed results back.  The queue guarantees
the two distributed invariants the bench enforces:

* **No lost cells.**  Every enqueued ticket is eventually delivered —
  either a result payload or an exception.  A dead or stalled worker's
  lease expires (missed heartbeats) or is released (connection drop) and
  its unfinished tickets re-enter the *front* of the queue with a retry
  count; a ticket that exhausts ``max_retries`` delivers a
  :class:`~repro.errors.ReproError` instead of hanging forever.
* **No double-counted cells.**  A result is accepted only from the lease
  that currently owns the ticket; anything else — a late result from an
  expired lease, a second copy after a retry already landed — increments
  ``duplicates_dropped`` and is discarded.  Delivery is exactly-once per
  ticket by construction.

Tickets are queue-assigned monotonic integers; cells of one
:meth:`~repro.dist.coordinator.RemoteCellExecutor.run_cells` call share a
``group`` token so a lease never mixes cells of different calls (lease
batches also never mix context digests or engines — the worker simulates
a lease as one homogeneous column batch).

Locking: all state lives behind one condition variable; delivery
callbacks are collected under the lock but *invoked outside it*, so a
callback may re-enter the queue (e.g. a future's waiter immediately
submitting more work) without deadlocking.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: ``deliver`` receives either the raw result payload (bytes) or an
#: exception; consumers dispatch on type.
Deliver = Callable[[object], None]


@dataclass
class WorkItem:
    """One enqueued cell: identity, routing, and its delivery callback."""

    ticket: int
    digest: str
    engine: str
    group: int
    spec: object
    wire_spec: Dict[str, object]
    deliver: Deliver
    #: Block-stats sink shared by the item's group (may be ``None``).
    on_stats: Optional[Callable[[Dict[str, object]], None]] = None
    retries: int = 0


@dataclass
class Lease:
    """A batch of cells granted to one worker, with a liveness deadline."""

    lease_id: int
    worker: str
    digest: str
    engine: str
    deadline: float
    items: Dict[int, WorkItem] = field(default_factory=dict)

    @property
    def tickets(self) -> List[int]:
        return list(self.items)


class LeaseQueue:
    """Thread-safe cell queue with leases, heartbeats, and retry bounds."""

    def __init__(self, lease_timeout: float = 30.0, max_retries: int = 2,
                 clock: Callable[[], float] = time.monotonic):
        self.lease_timeout = lease_timeout
        self.max_retries = max_retries
        self._clock = clock
        self._cond = threading.Condition()
        self._pending: Deque[WorkItem] = deque()
        self._leases: Dict[int, Lease] = {}
        self._done: set = set()
        self._next_ticket = 0
        self._next_lease = 0
        self._closed = False
        #: Times a ticket was re-queued after a lost/expired lease.
        self.retries = 0
        #: Late or repeated results discarded without delivery.
        self.duplicates_dropped = 0
        #: Tickets delivered a result payload.
        self.completed = 0
        #: Tickets delivered an exception (retry budget exhausted or a
        #: deterministic simulation error reported by a worker).
        self.failed = 0

    # -- producer side ------------------------------------------------------
    def add_batch(self, digest: str, engine: str, group: int,
                  items: Sequence[Tuple[object, Dict[str, object],
                                        Deliver]],
                  on_stats: Optional[Callable] = None) -> List[int]:
        """Enqueue ``(spec, wire_spec, deliver)`` triples; returns tickets."""
        with self._cond:
            if self._closed:
                raise ReproError("lease queue is closed")
            tickets: List[int] = []
            for spec, wire_spec, deliver in items:
                ticket = self._next_ticket
                self._next_ticket += 1
                self._pending.append(WorkItem(
                    ticket=ticket, digest=digest, engine=engine,
                    group=group, spec=spec, wire_spec=wire_spec,
                    deliver=deliver, on_stats=on_stats))
                tickets.append(ticket)
            self._cond.notify_all()
            return tickets

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._pending)

    @property
    def active_leases(self) -> int:
        with self._cond:
            return len(self._leases)

    # -- worker side (via connection handlers) ------------------------------
    def lease(self, worker: str, max_cells: int,
              timeout: Optional[float] = None) -> Optional[Lease]:
        """Grant up to ``max_cells`` homogeneous pending cells.

        Blocks up to ``timeout`` for work (``None`` = forever); returns
        ``None`` on timeout or once the queue is closed.  The batch is
        the longest prefix run of pending items sharing the head item's
        ``(digest, engine, group)`` — skipping over non-matching items
        would reorder delivery priorities for no benefit, since each
        group is homogeneous by construction.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            while not self._pending:
                if self._closed:
                    return None
                if deadline is not None:
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)
                else:
                    self._cond.wait()
            if self._closed:
                return None
            head = self._pending[0]
            lease = Lease(
                lease_id=self._next_lease, worker=worker,
                digest=head.digest, engine=head.engine,
                deadline=self._clock() + self.lease_timeout)
            self._next_lease += 1
            while self._pending and len(lease.items) < max(1, max_cells):
                item = self._pending[0]
                if (item.digest, item.engine, item.group) != \
                        (head.digest, head.engine, head.group):
                    break
                self._pending.popleft()
                lease.items[item.ticket] = item
            self._leases[lease.lease_id] = lease
            return lease

    def heartbeat(self, lease_id: int) -> bool:
        """Extend a lease's deadline; ``False`` if it no longer exists."""
        with self._cond:
            lease = self._leases.get(lease_id)
            if lease is None:
                return False
            lease.deadline = self._clock() + self.lease_timeout
            return True

    def complete(self, lease_id: int, ticket: int, payload: bytes,
                 stats: Optional[Dict[str, object]] = None) -> bool:
        """Deliver one ticket's result; ``False`` for dropped duplicates.

        Only the lease currently owning the ticket may complete it — a
        late result from an expired/released lease is dropped even if
        the retry has not finished yet (the retry will deliver it), so
        a ticket can never deliver twice.
        """
        with self._cond:
            lease = self._leases.get(lease_id)
            item = lease.items.pop(ticket, None) if lease is not None \
                else None
            if item is None:
                self.duplicates_dropped += 1
                return False
            self._done.add(ticket)
            self.completed += 1
            if lease is not None and not lease.items:
                del self._leases[lease_id]
        if stats and item.on_stats is not None:
            item.on_stats(stats)
        item.deliver(payload)
        return True

    def fail_tickets(self, lease_id: int, tickets: Sequence[int],
                     message: str) -> int:
        """Deliver a deterministic worker-reported error to tickets.

        Used for simulation errors (not worker death): retrying a
        deterministic failure wastes a worker, so the error is terminal.
        Returns the number of tickets actually failed (stale duplicates
        are dropped, as in :meth:`complete`).
        """
        failed: List[WorkItem] = []
        with self._cond:
            lease = self._leases.get(lease_id)
            for ticket in tickets:
                item = lease.items.pop(ticket, None) if lease is not None \
                    else None
                if item is None:
                    self.duplicates_dropped += 1
                    continue
                self._done.add(ticket)
                self.failed += 1
                failed.append(item)
            if lease is not None and not lease.items:
                self._leases.pop(lease_id, None)
        error = ReproError(message)
        for item in failed:
            item.deliver(error)
        return len(failed)

    # -- liveness -----------------------------------------------------------
    def release_lease(self, lease_id: int, reason: str = "released") -> int:
        """Return a lease's unfinished cells to the queue (worker died)."""
        with self._cond:
            lease = self._leases.pop(lease_id, None)
            items = list(lease.items.values()) if lease is not None else []
            requeued, exhausted = self._requeue_locked(items)
        self._fail_exhausted(exhausted, reason)
        return requeued

    def release_worker(self, worker: str, reason: str = "disconnect"
                       ) -> int:
        """Release every lease held by ``worker``."""
        with self._cond:
            items: List[WorkItem] = []
            for lease_id in [lid for lid, lease in self._leases.items()
                             if lease.worker == worker]:
                items.extend(self._leases.pop(lease_id).items.values())
            requeued, exhausted = self._requeue_locked(items)
        self._fail_exhausted(exhausted, reason)
        return requeued

    def expire(self, now: Optional[float] = None) -> int:
        """Requeue cells of every lease past its deadline."""
        now = self._clock() if now is None else now
        with self._cond:
            items: List[WorkItem] = []
            for lease_id in [lid for lid, lease in self._leases.items()
                             if lease.deadline < now]:
                items.extend(self._leases.pop(lease_id).items.values())
            requeued, exhausted = self._requeue_locked(items)
        self._fail_exhausted(exhausted, "lease expired")
        return requeued

    def _requeue_locked(self, items: List[WorkItem]
                        ) -> Tuple[int, List[WorkItem]]:
        """Requeue (front) items, splitting off retry-budget-exhausted
        ones for the caller to fail *outside* the lock."""
        requeued = 0
        exhausted: List[WorkItem] = []
        for item in reversed(items):
            item.retries += 1
            if item.retries > self.max_retries:
                self._done.add(item.ticket)
                self.failed += 1
                exhausted.append(item)
                continue
            self.retries += 1
            requeued += 1
            self._pending.appendleft(item)
        if requeued:
            self._cond.notify_all()
        return requeued, exhausted

    def _fail_exhausted(self, items: List[WorkItem], reason: str) -> None:
        for item in items:
            item.deliver(ReproError(
                f"cell ticket {item.ticket} lost {item.retries} leases "
                f"({reason}); retry budget ({self.max_retries}) exhausted"))

    # -- group / lifecycle --------------------------------------------------
    def cancel_group(self, group: int) -> int:
        """Drop a group's still-pending cells (consumer bailed early).

        Leased cells are left to finish; their late results are dropped
        as duplicates once the consumer is gone only if the consumer's
        deliver callbacks tolerate it (ours enqueue into dead queues,
        which is harmless).
        """
        with self._cond:
            kept = deque(item for item in self._pending
                         if item.group != group)
            dropped = len(self._pending) - len(kept)
            self._pending = kept
            for lease in self._leases.values():
                for ticket in [t for t, item in lease.items.items()
                               if item.group == group]:
                    del lease.items[ticket]
                    self._done.add(ticket)
                    dropped += 1
            return dropped

    def close(self) -> None:
        """Refuse new work, wake lease waiters, fail undelivered cells."""
        with self._cond:
            self._closed = True
            orphans = list(self._pending)
            self._pending.clear()
            for lease in self._leases.values():
                orphans.extend(lease.items.values())
            self._leases.clear()
            for item in orphans:
                self._done.add(item.ticket)
                self.failed += 1
            self._cond.notify_all()
        error = ReproError("lease queue closed with undelivered cells")
        for item in orphans:
            item.deliver(error)

    @property
    def closed(self) -> bool:
        return self._closed
