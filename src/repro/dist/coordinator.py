"""Coordinator side of distributed sweeps: the remote cell executor.

:class:`RemoteCellExecutor` implements the exact
``run_cells`` / ``submit_cell`` / ``register`` / ``shutdown`` seam of
:class:`~repro.analysis.executor.CellExecutor`, so
:func:`~repro.analysis.sweep.utilization_sweep`, ``run-all``, and the
:class:`~repro.service.server.SweepService` use it unchanged — the only
difference is *where* cells simulate.  Behind the seam sits a
:class:`~repro.dist.queue.LeaseQueue` plus a TCP listener; each
connected worker gets a dedicated handler thread that leases cell
batches, ships them (context JSON once per connection, then digest-only),
and feeds CTR1 result payloads back through the queue's exactly-once
delivery.

Fault model: worker death is detected two ways — connection drop
(handler's recv fails → leases released immediately) and lease expiry
(a wedged-but-connected worker misses heartbeats → the expiry thread
requeues its cells).  Both routes go through the queue, which enforces
the retry budget and drops late duplicates, so a sweep completes with
no lost and no double-counted cells regardless of worker churn.

Trace-carrying (uncacheable) specs hold live demand traces that cannot
be regenerated remotely; they run inline on the coordinator, exactly as
the in-process executor would.
"""

from __future__ import annotations

import queue as _queue_mod
import socket
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple

from repro.analysis.executor import SweepProgress
from repro.analysis.transport import decode_cell
from repro.dist.queue import LeaseQueue
from repro.dist.wire import (WireError, context_to_wire, recv_frame,
                             send_frame, spec_to_wire)
from repro.errors import ReproError


class RemoteCellExecutor:
    """Lease cells to remote workers through the ``CellExecutor`` seam.

    Parameters
    ----------
    host, port:
        Listen address; ``port=0`` binds an ephemeral port (read the
        resolved one from :attr:`port`).
    lease_cells:
        Hard cap on cells per lease.  Actual lease sizes adapt: roughly
        ``pending / (2 * connected_workers)``, so early leases split the
        sweep evenly and late leases shrink to keep stragglers short.
    lease_timeout:
        Seconds a lease may go without a heartbeat before its cells are
        re-queued.  Workers heartbeat every ``lease_timeout / 3``.
    max_retries:
        Lease losses one cell may survive before it fails the sweep.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 lease_cells: int = 25, lease_timeout: float = 30.0,
                 max_retries: int = 2):
        self.lease_cells = max(1, lease_cells)
        self.lease_timeout = lease_timeout
        self.heartbeat_interval = max(0.2, lease_timeout / 3.0)
        self._queue = LeaseQueue(lease_timeout=lease_timeout,
                                 max_retries=max_retries)
        self._contexts: Dict[str, object] = {}
        self._lock = threading.Lock()
        self._connected: Dict[str, threading.Thread] = {}
        self._worker_seq = 0
        self._group_seq = 0
        self._shutdown = False
        self._stop = threading.Event()
        self._inline_thread: Optional[ThreadPoolExecutor] = None
        #: Total bytes of encoded cell outcomes received from workers.
        self.ipc_bytes = 0
        #: Peak simultaneously connected workers (lifetime high-water).
        self.peak_workers = 0

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR,
                                  1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dist-accept", daemon=True)
        self._accept_thread.start()
        self._expiry_thread = threading.Thread(
            target=self._expiry_loop, name="dist-expiry", daemon=True)
        self._expiry_thread.start()

    # -- CellExecutor seam ---------------------------------------------------
    @property
    def workers(self) -> int:
        """Connected worker count (the seam's ``workers_used`` source)."""
        with self._lock:
            return max(1, len(self._connected))

    @property
    def retries(self) -> int:
        """Cells re-queued after a lost or expired lease."""
        return self._queue.retries

    @property
    def duplicates_dropped(self) -> int:
        """Late/stale worker results discarded without delivery."""
        return self._queue.duplicates_dropped

    def register(self, context) -> str:
        digest = context.digest()
        with self._lock:
            self._contexts.setdefault(digest, context)
        return digest

    def run_cells(self, context, specs: Sequence,
                  progress: Optional[SweepProgress] = None,
                  on_result: Optional[Callable[[int, object], None]] = None,
                  engine: str = "scalar",
                  stats=None,
                  ) -> Iterator[Tuple[int, object]]:
        """Yield ``(index, outcome)`` for every spec, unordered.

        All wire-able specs are enqueued up front (barrier-free — leases
        stream out as workers ask); trace-carrying specs run inline on
        the coordinator first, then remote results drain as they land.
        """
        if self._shutdown:
            raise RuntimeError("executor already shut down")
        digest = self.register(context)
        with self._lock:
            self._group_seq += 1
            group = self._group_seq
        results: _queue_mod.Queue = _queue_mod.Queue()
        stats_lock = threading.Lock()

        def on_stats(stats_dict: Dict[str, object]) -> None:
            if stats is not None:
                with stats_lock:
                    stats.merge_dict(stats_dict)

        remote: list = []
        local: list = []
        for index, spec in enumerate(specs):
            (local if spec.trace is not None else remote).append(
                (index, spec))
        if remote:
            self._queue.add_batch(
                digest, engine, group,
                [(spec, spec_to_wire(spec),
                  (lambda value, index=index: results.put((index, value))))
                 for index, spec in remote],
                on_stats=on_stats)
        try:
            if local:
                from repro.analysis.sweep import run_cell
                for index, spec in local:
                    outcome = run_cell(context, spec)
                    if on_result is not None:
                        on_result(index, outcome)
                    if progress is not None:
                        progress.advance()
                    yield index, outcome
            remaining = len(remote)
            while remaining:
                try:
                    index, value = results.get(timeout=1.0)
                except _queue_mod.Empty:
                    if self._shutdown:
                        raise ReproError(
                            "remote executor shut down mid-sweep")
                    continue
                if isinstance(value, BaseException):
                    raise value
                self.ipc_bytes += len(value)
                outcome = decode_cell(value)
                remaining -= 1
                if on_result is not None:
                    on_result(index, outcome)
                if progress is not None:
                    progress.advance()
                yield index, outcome
        finally:
            # Consumer bailed (error or early close): orphan this
            # group's unleased cells so workers don't simulate for a
            # dead audience.
            self._queue.cancel_group(group)

    def submit_cell(self, context, spec, engine: str = "scalar") -> Future:
        """Schedule one cell on the worker fleet; never blocks.

        Trace-carrying specs run on a coordinator-local thread (same
        semantics as the in-process executor's inline lane).
        """
        if self._shutdown:
            raise RuntimeError("executor already shut down")
        digest = self.register(context)
        future: Future = Future()
        if spec.trace is not None:
            from repro.analysis.sweep import run_cell
            if self._inline_thread is None:
                self._inline_thread = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="dist-inline")
            return self._inline_thread.submit(run_cell, context, spec)

        def deliver(value: object) -> None:
            if isinstance(value, BaseException):
                future.set_exception(value)
                return
            self.ipc_bytes += len(value)
            try:
                future.set_result(decode_cell(value))
            except ReproError as exc:  # pragma: no cover - codec bug
                future.set_exception(exc)

        with self._lock:
            self._group_seq += 1
            group = self._group_seq
        self._queue.add_batch(digest, engine, group,
                              [(spec, spec_to_wire(spec), deliver)])
        return future

    # -- lifecycle -----------------------------------------------------------
    def __enter__(self) -> "RemoteCellExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> bool:
        """Block until ``count`` workers are connected (or timeout)."""
        end = time.monotonic() + timeout
        while True:
            with self._lock:
                if len(self._connected) >= count:
                    return True
            if time.monotonic() >= end:
                return False
            self._stop.wait(0.02)

    def shutdown(self) -> None:
        if self._shutdown:
            return
        self._shutdown = True
        self._stop.set()
        self._queue.close()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self._inline_thread is not None:
            self._inline_thread.shutdown()
            self._inline_thread = None

    # -- listener / handlers -------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._shutdown:
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return  # listener closed by shutdown
            with self._lock:
                self._worker_seq += 1
                worker_id = f"w{self._worker_seq}"
            thread = threading.Thread(
                target=self._serve_worker, args=(conn, addr, worker_id),
                name=f"dist-worker-{worker_id}", daemon=True)
            thread.start()

    def _expiry_loop(self) -> None:
        interval = max(0.1, self.lease_timeout / 4.0)
        while not self._shutdown:
            self._queue.expire()
            self._stop.wait(interval)

    def _serve_worker(self, conn: socket.socket, addr, worker_id: str
                      ) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            conn.settimeout(10.0)
            hello = recv_frame(conn)
            if hello is None or hello[0].get("kind") != "hello":
                return
            send_frame(conn, "welcome", {
                "worker_id": worker_id,
                "heartbeat": self.heartbeat_interval,
                "lease_cells": self.lease_cells,
            })
            with self._lock:
                self._connected[worker_id] = threading.current_thread()
                self.peak_workers = max(self.peak_workers,
                                        len(self._connected))
            self._worker_loop(conn, worker_id)
        except (WireError, OSError):
            pass  # lease recovery below handles in-flight work
        finally:
            with self._lock:
                self._connected.pop(worker_id, None)
            self._queue.release_worker(worker_id)
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _worker_loop(self, conn: socket.socket, worker_id: str) -> None:
        # A healthy worker is never silent longer than a heartbeat; a
        # few missed beats means it is gone even if TCP has not noticed.
        conn.settimeout(max(3.0 * self.heartbeat_interval, 5.0))
        shipped: set = set()
        while not self._shutdown:
            frame = recv_frame(conn)
            if frame is None:
                return  # orderly EOF
            head, payloads = frame
            kind = head.get("kind")
            if kind == "request":
                lease = None
                while lease is None:
                    if self._shutdown:
                        send_frame(conn, "shutdown")
                        return
                    lease = self._queue.lease(
                        worker_id, self._lease_size(), timeout=0.25)
                header: Dict[str, object] = {
                    "lease": lease.lease_id,
                    "digest": lease.digest,
                    "engine": lease.engine,
                    "tickets": lease.tickets,
                    "specs": [lease.items[t].wire_spec
                              for t in lease.tickets],
                }
                if lease.digest not in shipped:
                    with self._lock:
                        context = self._contexts.get(lease.digest)
                    if context is None:  # pragma: no cover - defensive
                        raise WireError(
                            f"lease for unregistered context "
                            f"{lease.digest[:12]}")
                    header["context"] = context_to_wire(context)
                    shipped.add(lease.digest)
                send_frame(conn, "lease", header)
            elif kind == "heartbeat":
                self._queue.heartbeat(head.get("lease", -1))
            elif kind == "result":
                stats = head.get("stats")
                for ticket, payload in zip(head.get("tickets", ()),
                                           payloads):
                    self._queue.complete(head.get("lease", -1), ticket,
                                         payload, stats=stats)
                    stats = None  # merge block stats once per frame
            elif kind == "error":
                self._queue.fail_tickets(
                    head.get("lease", -1), head.get("tickets", ()),
                    head.get("message", "worker reported an error"))
            else:
                raise WireError(
                    f"unexpected frame kind {kind!r} from {worker_id}")

    def _lease_size(self) -> int:
        """Adaptive lease sizing: split pending work across the fleet."""
        with self._lock:
            fleet = max(1, len(self._connected))
        pending = self._queue.pending
        fair = -(-pending // (2 * fleet)) if pending else 1
        return max(1, min(self.lease_cells, fair))
