"""Durable sweep journal: request spec + completed cell fingerprints.

One append-only NDJSON file per request id under
``<cache_dir>/journal/``.  The first line records the original request
body; every later line records one completed cell fingerprint:

.. code-block:: text

    {"journal": 1, "request_id": "fig9", "request": {"scenario": ...}}
    {"done": "2f0c…"}
    {"done": "91ab…"}

The journal is deliberately *redundant* with the cell cache: every
journaled fingerprint was written through to the cache first, so a
resumed request answers its journaled cells from cache (and falls back
to honest re-simulation if the cache was evicted in between — the
journal promises progress tracking, the cache holds the bytes).  What
the journal adds over the cache alone is the *request spec* (so
``rtdvs submit --resume ID`` needs no re-specification) and an exact
completed-set to assert "zero re-simulated cells" against.

Appends are line-buffered and flushed per batch; a coordinator killed
mid-append leaves at most one torn final line, which :meth:`load`
tolerates (and reports) instead of failing the resume.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ReproError

#: Journal file format version (first line of every journal).
JOURNAL_VERSION = 1

_REQUEST_ID_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,127}\Z")


class JournalError(ReproError):
    """A journal operation failed (bad id, missing/duplicate journal)."""


def validate_request_id(request_id: str) -> str:
    """Reject ids that could escape the journal directory or collide."""
    if not isinstance(request_id, str) or \
            not _REQUEST_ID_RE.fullmatch(request_id):
        raise JournalError(
            f"invalid request id {request_id!r}: expected 1-128 chars of "
            "[A-Za-z0-9._-], not starting with '.' or '-'")
    return request_id


class SweepJournal:
    """Journal store rooted at ``<cache_dir>/journal``."""

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)

    def path(self, request_id: str) -> Path:
        return self.root / f"{validate_request_id(request_id)}.ndjson"

    def exists(self, request_id: str) -> bool:
        return self.path(request_id).is_file()

    def list_ids(self) -> List[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.ndjson"))

    def create(self, request_id: str,
               request: Dict[str, object]) -> "JournalWriter":
        """Start a journal; fails if one already exists for this id."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(request_id)
        try:
            handle = open(path, "x", encoding="utf-8")
        except FileExistsError:
            raise JournalError(
                f"journal for request id {request_id!r} already exists; "
                "resume it or pick a fresh id") from None
        handle.write(json.dumps(
            {"journal": JOURNAL_VERSION, "request_id": request_id,
             "request": request}, separators=(",", ":")) + "\n")
        handle.flush()
        return JournalWriter(handle)

    def append(self, request_id: str) -> "JournalWriter":
        """Open an existing journal for appending more fingerprints."""
        path = self.path(request_id)
        if not path.is_file():
            raise JournalError(
                f"no journal for request id {request_id!r} under "
                f"{self.root}")
        return JournalWriter(open(path, "a", encoding="utf-8"))

    def load(self, request_id: str
             ) -> Tuple[Dict[str, object], Set[str], int]:
        """Read one journal: ``(request, completed_fps, torn_lines)``.

        Undecodable lines (a torn tail from a killed coordinator, at
        most one in practice) are counted, not fatal.  A journal whose
        *header* is unreadable is unusable and raises.
        """
        path = self.path(request_id)
        if not path.is_file():
            raise JournalError(
                f"no journal for request id {request_id!r} under "
                f"{self.root}")
        completed: Set[str] = set()
        request: Optional[Dict[str, object]] = None
        torn = 0
        with open(path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    if line_no == 0:
                        if record.get("journal") != JOURNAL_VERSION:
                            raise ValueError(
                                f"unsupported journal version "
                                f"{record.get('journal')!r}")
                        request = record["request"]
                    else:
                        completed.add(record["done"])
                except (ValueError, KeyError, TypeError) as exc:
                    if line_no == 0:
                        raise JournalError(
                            f"journal {path} has a corrupt header: "
                            f"{exc}") from exc
                    torn += 1
        if request is None:
            raise JournalError(f"journal {path} is empty")
        return request, completed, torn


class JournalWriter:
    """Append-side handle: one flushed line per completed fingerprint."""

    def __init__(self, handle) -> None:
        self._handle = handle
        self._closed = False

    def mark(self, fingerprint: str) -> None:
        self.mark_many((fingerprint,))

    def mark_many(self, fingerprints: Iterable[str]) -> None:
        if self._closed:
            return
        lines = [json.dumps({"done": fp}, separators=(",", ":"))
                 for fp in fingerprints]
        if not lines:
            return
        self._handle.write("\n".join(lines) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
