"""Distributed sweep execution: lease queue, workers, resumable sweeps.

The package slots a multi-host worker backend behind the existing
``CellExecutor`` seam (ROADMAP item 1):

* :mod:`repro.dist.wire` — length-prefixed TCP frames; cell outcomes
  travel as the CTR1 bytes of :mod:`repro.analysis.transport`, so
  distributed results are bit-identical to in-process ones.
* :mod:`repro.dist.queue` — the :class:`~repro.dist.queue.LeaseQueue`:
  deadlines, heartbeats, bounded retries, exactly-once delivery.
* :mod:`repro.dist.coordinator` —
  :class:`~repro.dist.coordinator.RemoteCellExecutor`, a drop-in
  ``run_cells`` / ``submit_cell`` executor backed by the fleet.
* :mod:`repro.dist.worker` — the ``rtdvs worker`` pull loop.
* :mod:`repro.dist.journal` — durable request journal enabling
  ``rtdvs submit --resume REQUEST_ID``.
"""

from repro.dist.coordinator import RemoteCellExecutor
from repro.dist.journal import (JournalError, JournalWriter, SweepJournal,
                                validate_request_id)
from repro.dist.queue import Lease, LeaseQueue, WorkItem
from repro.dist.wire import (WIRE_VERSION, WireError, context_from_wire,
                             context_to_wire, pack_frame, recv_frame,
                             send_frame, spec_from_wire, spec_to_wire,
                             unpack_frame)
from repro.dist.worker import WORKER_ENGINES, WorkerError, parse_connect, \
    run_worker

__all__ = [
    "RemoteCellExecutor",
    "LeaseQueue",
    "Lease",
    "WorkItem",
    "SweepJournal",
    "JournalWriter",
    "JournalError",
    "validate_request_id",
    "run_worker",
    "parse_connect",
    "WorkerError",
    "WORKER_ENGINES",
    "WireError",
    "WIRE_VERSION",
    "pack_frame",
    "unpack_frame",
    "send_frame",
    "recv_frame",
    "context_to_wire",
    "context_from_wire",
    "spec_to_wire",
    "spec_from_wire",
]
