"""The prototype substrate: a Linux-module-style RT-DVS stack (Sec. 4).

The paper's implementation is a set of Linux 2.2 kernel modules (Fig. 14):

* a *periodic RT task* module hooked into the scheduler and timer tick,
* swappable *RT scheduler / RT-DVS policy* modules,
* a *PowerNow!* module driving the K6-2+ frequency/voltage interface,
* a ``/procfs`` file interface for user-level tasks and control.

This package reproduces that architecture in-process on top of the
simulator: the same policy objects the simulator uses are loaded as
"modules", tasks register through a procfs-style text interface, the
PowerNow module enforces the mandatory stop intervals measured on the real
hardware, and the kernel runs phases of simulated time (policy modules can
be swapped between phases without unregistering the task set, as on the
prototype).
"""

from repro.kernel.procfs import ProcFS
from repro.kernel.powernow import PowerNowModule
from repro.kernel.modules import PolicyModule, RTKernel
from repro.kernel.rt_task import PeriodicRTTask
from repro.kernel.admission import AdmissionController
from repro.kernel.coldstart import ColdStartDemand
from repro.kernel.userland import UserTask, constant_body, phased_body

__all__ = [
    "UserTask",
    "constant_body",
    "phased_body",
    "ProcFS",
    "PowerNowModule",
    "PolicyModule",
    "RTKernel",
    "PeriodicRTTask",
    "AdmissionController",
    "ColdStartDemand",
]
