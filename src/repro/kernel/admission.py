"""Admission control and transient-safe dynamic task addition (Sec. 4.3).

The paper observes that "the dynamic addition of a task to the task set may
cause transient missed deadlines unless one is very careful", because the
aggressive RT-DVS schemes run the system closely matched to the *current*
load.  Its recipe: "immediately insert the task into task set, so DVS
decisions are based on the new system characteristics, but defer the
initial release of the new task until the current invocations of all
existing tasks have completed."

:class:`AdmissionController` performs the schedulability check a real
kernel must do before accepting a task, and packages the deferred release
as an :class:`~repro.sim.engine.Admission` for the engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AdmissionError
from repro.model.schedulability import edf_schedulable, rm_exact_schedulable
from repro.model.task import Task, TaskSet
from repro.sim.engine import Admission


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of an admission test."""

    admitted: bool
    reason: str

    def __bool__(self) -> bool:
        return self.admitted


class AdmissionController:
    """Schedulability-gated task admission.

    Parameters
    ----------
    scheduler:
        "edf" or "rm"; selects the schedulability test (EDF utilization or
        the exact RM scheduling-point test, both at full frequency — the
        RT-DVS layer then scales from there).
    """

    def __init__(self, scheduler: str = "edf"):
        scheduler = scheduler.strip().lower()
        if scheduler not in ("edf", "rm"):
            raise AdmissionError(
                f"scheduler must be 'edf' or 'rm', got {scheduler!r}")
        self.scheduler = scheduler

    def check(self, current: TaskSet, candidate: Task) -> AdmissionDecision:
        """Would ``current + candidate`` remain schedulable at full speed?"""
        try:
            combined = current.with_task(candidate)
        except Exception as exc:
            return AdmissionDecision(False, f"invalid task: {exc}")
        if self.scheduler == "edf":
            if edf_schedulable(combined, 1.0):
                return AdmissionDecision(
                    True, f"EDF utilization {combined.utilization:.3f} <= 1")
            return AdmissionDecision(
                False,
                f"EDF utilization {combined.utilization:.3f} exceeds 1")
        if rm_exact_schedulable(combined, 1.0):
            return AdmissionDecision(True, "passes exact RM test")
        return AdmissionDecision(False, "fails exact RM test at full speed")

    def admit(self, current: TaskSet, candidate: Task, time: float,
              defer: bool = True) -> Admission:
        """Validate and build the engine-level admission record.

        Raises
        ------
        AdmissionError
            When the combined set would be unschedulable; admitting it
            would break the guarantees for *existing* tasks, so the kernel
            must refuse.
        """
        decision = self.check(current, candidate)
        if not decision:
            raise AdmissionError(
                f"cannot admit {candidate.name or 'task'}: {decision.reason}")
        return Admission(time=time, task=candidate, defer=defer)
