"""User-level periodic real-time tasks, prototype style.

On the prototype, "a task can write its required period and maximum
computing bound to our module, and it will be made into a periodic
real-time task that will be released periodically ... The task also uses
writes to indicate the completion of each invocation" (Sec. 4.2).

:class:`PeriodicRTTask` is that user-level object.  Instead of running real
code, each invocation's computational behaviour is given by a *workload*: a
fraction of the worst case, a callable ``invocation -> cycles``, or a
:class:`~repro.model.demand.DemandModel`.  The kernel turns registered
tasks into the simulator's :class:`~repro.model.task.Task` objects and a
combined demand model, and fills in per-task statistics after each phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Union

from repro.errors import KernelError
from repro.model.demand import DemandModel
from repro.model.task import Task

Workload = Union[float, Callable[[int], float], DemandModel, None]


@dataclass
class TaskStats:
    """Per-task statistics accumulated across kernel phases."""

    invocations: int = 0
    completions: int = 0
    misses: int = 0
    cycles: float = 0.0

    def as_text(self) -> str:
        return (f"invocations={self.invocations} "
                f"completions={self.completions} misses={self.misses} "
                f"cycles={self.cycles:g}")


class PeriodicRTTask:
    """A registered periodic RT task plus its workload behaviour.

    Parameters
    ----------
    name:
        Unique task name (the prototype keys tasks by open file handle; we
        use names).
    period, wcet:
        The classic parameters, in milliseconds / cycles.
    workload:
        How many cycles each invocation actually uses:

        * ``None`` — always the worst case;
        * a float ``c`` in (0, 1] — fixed fraction of the worst case;
        * a callable ``invocation -> cycles`` — arbitrary behaviour
          (cycles are clamped to the worst case unless the kernel runs
          with ``enforce_wcet=False``);
        * a :class:`~repro.model.demand.DemandModel`.
    """

    def __init__(self, name: str, period: float, wcet: float,
                 workload: Workload = None):
        self.task = Task(wcet=wcet, period=period, name=name)
        self.workload = workload
        self.stats = TaskStats()
        self._invocation_offset = 0  # invocations completed in past phases

    @property
    def name(self) -> str:
        return self.task.name

    @property
    def period(self) -> float:
        return self.task.period

    @property
    def wcet(self) -> float:
        return self.task.wcet

    def demand_for(self, invocation: int) -> float:
        """Actual cycles for a *global* invocation index (phases append)."""
        workload = self.workload
        if workload is None:
            return self.task.wcet
        if isinstance(workload, DemandModel):
            return workload.demand(self.task, invocation)
        if callable(workload):
            value = workload(invocation)
            if value < 0:
                raise KernelError(
                    f"task {self.name!r} workload returned negative cycles "
                    f"({value}) for invocation {invocation}")
            return value
        fraction = float(workload)
        if not 0.0 < fraction <= 1.0:
            raise KernelError(
                f"task {self.name!r} workload fraction must be in (0, 1], "
                f"got {fraction}")
        return self.task.wcet * fraction

    def advance_phase(self, invocations: int) -> None:
        """Shift the global invocation counter after a kernel phase."""
        self._invocation_offset += invocations

    @property
    def invocation_offset(self) -> int:
        return self._invocation_offset

    @classmethod
    def parse(cls, text: str) -> "PeriodicRTTask":
        """Parse the procfs registration line: ``<name> <period> <wcet>``
        with an optional trailing constant workload fraction."""
        parts = text.split()
        if len(parts) not in (3, 4):
            raise KernelError(
                "task registration expects '<name> <period> <wcet> "
                f"[fraction]', got {text!r}")
        name = parts[0]
        try:
            period = float(parts[1])
            wcet = float(parts[2])
            workload: Workload = float(parts[3]) if len(parts) == 4 else None
        except ValueError:
            raise KernelError(
                f"malformed task registration {text!r}") from None
        return cls(name=name, period=period, wcet=wcet, workload=workload)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PeriodicRTTask({self.name!r}, period={self.period:g}, "
                f"wcet={self.wcet:g})")


class KernelDemand(DemandModel):
    """Adapter: routes the engine's demand queries to registered tasks,
    offsetting invocation indices so workloads see phase-global counters."""

    def __init__(self, tasks: Dict[str, PeriodicRTTask]):
        self._tasks = tasks

    def demand(self, task: Task, invocation: int) -> float:
        rt_task = self._tasks.get(task.name)
        if rt_task is None:
            raise KernelError(f"demand query for unknown task {task.name!r}")
        return rt_task.demand_for(invocation + rt_task.invocation_offset)
