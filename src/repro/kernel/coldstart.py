"""Cold-start overrun emulation (Sec. 4.3, first observation).

"We noticed that the very first invocation of a task may overrun its
specified computing time bound ... caused by 'cold' processor and operating
system state" — cache misses, TLB misses, and copy-on-write page faults all
count against the task's budget on a general-purpose platform.

:class:`ColdStartDemand` wraps any demand model and inflates the first
invocation of each task by a penalty factor.  Because the inflated demand
may exceed the task's worst case, runs that want to *observe* the overrun
must pass ``enforce_wcet=False`` to the simulator (with the default
clamping, the overrun is silently truncated — which is how a well-built
RTOS with budget enforcement would respond).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import KernelError
from repro.model.demand import DemandModel, WorstCaseDemand
from repro.model.task import Task


class ColdStartDemand(DemandModel):
    """First-invocation inflation of another demand model.

    Parameters
    ----------
    base:
        Underlying demand model (worst case if omitted).
    penalty:
        Multiplier applied to the first invocation's demand; must be
        >= 1.0.  The paper's measured overruns came from cold caches, TLBs
        and page faults; 1.2-2.0 is a plausible range on a general-purpose
        platform.
    """

    def __init__(self, base: Optional[DemandModel] = None,
                 penalty: float = 1.5):
        if penalty < 1.0:
            raise KernelError(
                f"cold-start penalty must be >= 1.0, got {penalty}")
        self.base = base if base is not None else WorstCaseDemand()
        self.penalty = penalty

    def demand(self, task: Task, invocation: int) -> float:
        value = self.base.demand(task, invocation)
        if invocation == 0:
            return value * self.penalty
        return value

    def reset(self) -> None:
        self.base.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColdStartDemand({self.base!r}, penalty={self.penalty})"
