"""Emulation of the AMD K6-2+ PowerNow! interface (Sec. 4.1).

The real processor exposes frequency/voltage control through a special
feature register: software writes a frequency identifier (PLL multiplier
selection) and a 5-bit voltage identifier, plus a programmable "stop
interval" in multiples of 41 µs (4096 cycles of the 100 MHz bus clock)
during which the CPU halts while the clock and regulator settle.

This module reproduces that register-level interface on top of a
:class:`~repro.hw.machine.Machine`:

* frequencies are requested in MHz and must match a PLL step;
* the voltage is *not* chosen by the caller — like HP's board, the module
  maps each frequency to the lowest stable voltage (1.4 V up to 450 MHz,
  2.0 V above, for the default machine);
* every transition charges the mandatory stop interval: the measured
  behaviour is ~41 µs for frequency-only changes and ~0.4 ms (halt
  duration value 10) when the voltage changes;
* a ``/proc/powernow`` style status text mirrors the prototype's
  human-readable interface.

The module also converts to the simulator's abstractions: it *is* a
factory for the :class:`~repro.hw.regulator.SwitchingModel` and machine the
kernel passes to the engine, so simulated runs pay exactly the overheads
the prototype measured.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import PowerNowError
from repro.hw.machine import Machine, k6_2_plus
from repro.hw.operating_point import OperatingPoint
from repro.hw.regulator import SwitchingModel

#: One stop-interval unit: 4096 cycles of the 100 MHz system bus (41 µs),
#: expressed in milliseconds (the library's canonical time unit).
STOP_INTERVAL_UNIT_MS = 0.041

#: Halt duration (in units) that the paper found sufficient for stable
#: voltage transitions ("a halt duration value of 10 (approximately
#: 0.4 ms) resulted in no observable instability").
DEFAULT_VOLTAGE_HALT_UNITS = 10


class PowerNowModule:
    """Software-controlled frequency/voltage switching with stop intervals.

    Parameters
    ----------
    machine:
        Operating-point table; defaults to the HP N3350's K6-2+
        configuration (550 MHz max, two wired voltages).
    max_mhz:
        Nominal frequency of the relative-1.0 point, used to translate
        between MHz and relative frequency.
    voltage_halt_units:
        Programmed stop interval (multiples of 41 µs) for transitions that
        change the voltage.
    """

    def __init__(self, machine: Optional[Machine] = None,
                 max_mhz: float = 550.0,
                 voltage_halt_units: int = DEFAULT_VOLTAGE_HALT_UNITS):
        if voltage_halt_units < 1:
            raise PowerNowError(
                f"stop interval must be >= 1 unit, got {voltage_halt_units}")
        self.machine = machine if machine is not None else k6_2_plus()
        self.max_mhz = max_mhz
        self.voltage_halt_units = voltage_halt_units
        self._current: OperatingPoint = self.machine.fastest
        self._transitions: List[Tuple[OperatingPoint, OperatingPoint, float]] = []

    # -- unit conversion ----------------------------------------------------
    def mhz_of(self, point: OperatingPoint) -> float:
        """Nominal MHz of an operating point."""
        return point.frequency * self.max_mhz

    def point_for_mhz(self, mhz: float) -> OperatingPoint:
        """The operating point for a PLL frequency in MHz."""
        relative = mhz / self.max_mhz
        for point in self.machine:
            if abs(point.frequency - relative) <= 1e-6:
                return point
        available = [round(self.mhz_of(p)) for p in self.machine]
        raise PowerNowError(
            f"{mhz} MHz is not a PLL step; available: {available}")

    # -- register-level interface --------------------------------------------
    @property
    def current_point(self) -> OperatingPoint:
        return self._current

    @property
    def current_mhz(self) -> float:
        return self.mhz_of(self._current)

    @property
    def current_voltage(self) -> float:
        return self._current.voltage

    def set_frequency(self, mhz: float) -> float:
        """Program the PLL to ``mhz``; returns the halt duration (ms).

        The voltage follows the board's frequency-to-voltage mapping
        automatically, as on the prototype.
        """
        target = self.point_for_mhz(mhz)
        return self._transition(target)

    def set_point(self, point: OperatingPoint) -> float:
        """Program an operating point directly; returns the halt (ms)."""
        if point not in self.machine.points:
            raise PowerNowError(
                f"{point} is not an operating point of {self.machine.name}")
        return self._transition(point)

    def _transition(self, target: OperatingPoint) -> float:
        halt = self.switching_model().switch_time(self._current, target)
        if target != self._current:
            self._transitions.append((self._current, target, halt))
        self._current = target
        return halt

    @property
    def transition_count(self) -> int:
        return len(self._transitions)

    @property
    def total_halt_time(self) -> float:
        """Total time spent halted in transitions so far (ms)."""
        return sum(halt for _, _, halt in self._transitions)

    def tsc_cycles_for_transition(self, target_mhz: float,
                                  halt_units: int = 1) -> float:
        """Cycles the time-stamp counter advances during a transition.

        The paper observed that the TSC "continues to increment during
        the halt duration": "around 8200 cycles occur during any
        transition to 200 MHz, and around 22500 cycles for a transition
        to 550 MHz, both with the minimum interval of 41 us" — i.e. the
        clock reaches the *target* frequency almost immediately and ticks
        there for the rest of the stop interval.  This method reproduces
        that measurement: 41 us × 200 MHz = 8200, 41 us × 550 MHz =
        22550 ≈ the paper's "around 22500".
        """
        self.point_for_mhz(target_mhz)  # validate it is a PLL step
        halt_ms = halt_units * STOP_INTERVAL_UNIT_MS
        return halt_ms * 1e-3 * target_mhz * 1e6

    # -- integration with the simulator ---------------------------------------
    def switching_model(self) -> SwitchingModel:
        """The engine-facing overhead model implied by the stop interval."""
        return SwitchingModel(
            frequency_switch_time=STOP_INTERVAL_UNIT_MS,
            voltage_switch_time=self.voltage_halt_units
            * STOP_INTERVAL_UNIT_MS)

    # -- procfs text interface --------------------------------------------------
    def status_text(self) -> str:
        """Status as shown by ``cat /proc/powernow`` on the prototype."""
        lines = [
            "PowerNow! status",
            f"  cpu: {self.current_mhz:.0f} MHz @ {self.current_voltage:.1f} V",
            f"  stop interval: {self.voltage_halt_units} x 41us",
            f"  transitions: {self.transition_count} "
            f"(halted {self.total_halt_time:.3f} ms total)",
            "  available:",
        ]
        for point in self.machine:
            marker = "*" if point == self._current else " "
            lines.append(f"   {marker} {self.mhz_of(point):6.0f} MHz @ "
                         f"{point.voltage:.1f} V")
        return "\n".join(lines)

    def handle_write(self, text: str) -> None:
        """``echo <mhz> > /proc/powernow`` — manual frequency control
        ("deal with operating frequency and voltage through simple Unix
        shell commands", Sec. 4.2)."""
        try:
            mhz = float(text.strip())
        except ValueError:
            raise PowerNowError(
                f"powernow write expects a frequency in MHz, got {text!r}"
            ) from None
        self.set_frequency(mhz)
