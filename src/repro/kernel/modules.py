"""The module layer: loadable policies and the kernel facade (Fig. 14).

The prototype separates three kernel modules:

* the periodic-RT-task machinery (scheduler hook + timer tick),
* one loadable RT-scheduler/RT-DVS *policy module* at a time, swappable
  "without shutting down the system or the running RT tasks",
* the PowerNow! module for frequency/voltage control.

:class:`RTKernel` reproduces this composition in-process.  Simulated time
advances in *phases* (:meth:`RTKernel.run_phase`); between phases the
policy module may be swapped while the registered task set persists —
matching the prototype's behaviour, including its caveat that during the
swap "a real-time scheduler is not defined" (running a phase with no
module loaded is refused).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.core import DVSPolicy, make_policy
from repro.errors import AdmissionError, KernelError
from repro.hw.energy import EnergyModel
from repro.hw.machine import Machine
from repro.hw.regulator import SwitchingModel
from repro.kernel.admission import AdmissionController
from repro.kernel.powernow import PowerNowModule
from repro.kernel.procfs import ProcFS
from repro.kernel.rt_task import KernelDemand, PeriodicRTTask
from repro.model.task import Task, TaskSet
from repro.sim.engine import Admission, Simulator
from repro.sim.results import SimResult


class PolicyModule:
    """A loadable RT-scheduler + RT-DVS policy module.

    Thin metadata wrapper around a :class:`~repro.core.base.DVSPolicy`; the
    class exists so the kernel mirrors the prototype's "one RT
    scheduler/DVS module loaded at a time" structure.
    """

    def __init__(self, policy: DVSPolicy):
        self.policy = policy

    @property
    def name(self) -> str:
        return self.policy.name

    @property
    def scheduler(self) -> str:
        return self.policy.scheduler

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PolicyModule({self.policy!r})"


class RTKernel:
    """In-process emulation of the prototype's kernel extension stack.

    Parameters
    ----------
    powernow:
        The frequency/voltage module; defaults to the K6-2+ configuration.
        Its machine table and stop intervals feed the simulator.
    energy_model:
        Energy accounting for simulated phases.
    charge_switch_overhead:
        When True (default), phases pay the PowerNow stop intervals on
        every operating-point change, like the real hardware; when False,
        switching is free (the paper's pure-simulation assumption).
    enforce_wcet:
        Clamp demands to worst case (condition C2); set False to let
        cold-start overruns through (Sec. 4.3).
    """

    def __init__(self, powernow: Optional[PowerNowModule] = None,
                 energy_model: Optional[EnergyModel] = None,
                 charge_switch_overhead: bool = True,
                 enforce_wcet: bool = True):
        self.powernow = powernow if powernow is not None else PowerNowModule()
        self.machine: Machine = self.powernow.machine
        self.energy_model = energy_model or EnergyModel()
        self.charge_switch_overhead = charge_switch_overhead
        self.enforce_wcet = enforce_wcet
        self.procfs = ProcFS()
        self._tasks: Dict[str, PeriodicRTTask] = {}
        self._module: Optional[PolicyModule] = None
        self._results: List[SimResult] = []
        self._uptime = 0.0
        self._register_procfs()

    # ------------------------------------------------------------------
    # task management
    # ------------------------------------------------------------------
    def register_task(self, task: PeriodicRTTask,
                      check_admission: bool = True) -> None:
        """Register a periodic RT task (takes effect next phase)."""
        if task.name in self._tasks:
            raise KernelError(f"task {task.name!r} already registered")
        if check_admission and self._tasks:
            controller = AdmissionController(self._scheduler_name())
            decision = controller.check(self.taskset(), task.task)
            if not decision:
                raise AdmissionError(
                    f"refusing task {task.name!r}: {decision.reason}")
        self._tasks[task.name] = task

    def unregister_task(self, name: str) -> None:
        """Remove a task (the prototype's close-the-file-handle path)."""
        if name not in self._tasks:
            raise KernelError(f"task {name!r} is not registered")
        del self._tasks[name]

    def taskset(self) -> TaskSet:
        """The registered tasks as a simulator task set."""
        if not self._tasks:
            raise KernelError("no real-time tasks are registered")
        return TaskSet([t.task for t in self._tasks.values()])

    def padded_taskset(self) -> TaskSet:
        """The task set with switch overheads folded into the WCETs.

        "At most only two transitions are attributable to each task in each
        invocation" (Sec. 4.1), so when phases charge the PowerNow stop
        intervals, each task's worst case is padded by two voltage-switch
        halts.  Scheduling and DVS decisions then remain safe; actual
        demands are unchanged.
        """
        if not self.charge_switch_overhead:
            return self.taskset()
        pad = 2.0 * self.powernow.switching_model().voltage_switch_time
        padded = []
        for rt_task in self._tasks.values():
            wcet = rt_task.task.wcet + pad
            if wcet > rt_task.task.period:
                raise KernelError(
                    f"task {rt_task.name!r}: wcet {rt_task.task.wcet:g} plus "
                    f"switch-overhead pad {pad:g} exceeds its period "
                    f"{rt_task.task.period:g}")
            padded.append(Task(wcet=wcet, period=rt_task.task.period,
                               name=rt_task.name))
        return TaskSet(padded)

    def task(self, name: str) -> PeriodicRTTask:
        """Look up a registered task by name."""
        try:
            return self._tasks[name]
        except KeyError:
            raise KernelError(f"task {name!r} is not registered") from None

    @property
    def tasks(self) -> List[PeriodicRTTask]:
        return list(self._tasks.values())

    # ------------------------------------------------------------------
    # policy modules
    # ------------------------------------------------------------------
    def load_policy(self, policy: Union[str, DVSPolicy, PolicyModule],
                    **kwargs) -> PolicyModule:
        """Load (or swap in) the RT-scheduler/RT-DVS policy module."""
        if isinstance(policy, PolicyModule):
            module = policy
        elif isinstance(policy, DVSPolicy):
            module = PolicyModule(policy)
        else:
            module = PolicyModule(make_policy(policy, **kwargs))
        self._module = module
        return module

    def unload_policy(self) -> None:
        """Unload the policy module; phases are refused until a new load."""
        self._module = None

    @property
    def loaded_policy(self) -> Optional[PolicyModule]:
        return self._module

    def _scheduler_name(self) -> str:
        return self._module.scheduler if self._module else "edf"

    # ------------------------------------------------------------------
    # running phases
    # ------------------------------------------------------------------
    def run_phase(self, duration: float,
                  admissions: Sequence[Admission] = (),
                  record_trace: bool = False,
                  on_miss: str = "raise") -> SimResult:
        """Advance simulated time by ``duration`` under the loaded module.

        Admission records use phase-relative times.  Tasks admitted during
        the phase stay registered afterwards.
        """
        if self._module is None:
            raise KernelError(
                "no RT scheduler/DVS policy module is loaded; \"during the "
                "switch-over time ... a real-time scheduler is not defined\"")
        taskset = self.padded_taskset()
        pad = (2.0 * self.powernow.switching_model().voltage_switch_time
               if self.charge_switch_overhead else 0.0)
        controller = AdmissionController(self._scheduler_name())
        checked = taskset
        padded_admissions = []
        for admission in admissions:
            padded_task = Task(wcet=admission.task.wcet + pad,
                               period=admission.task.period,
                               name=admission.task.name)
            decision = controller.check(checked, padded_task)
            if not decision:
                raise AdmissionError(
                    f"refusing admission of {admission.task.name!r}: "
                    f"{decision.reason}")
            checked = checked.with_task(padded_task)
            padded_admissions.append(Admission(
                time=admission.time, task=padded_task,
                defer=admission.defer))
        switching = (self.powernow.switching_model()
                     if self.charge_switch_overhead
                     else SwitchingModel.free())
        simulator = Simulator(
            taskset=taskset,
            machine=self.machine,
            policy=self._module.policy,
            demand=KernelDemand(dict(self._tasks)),
            duration=duration,
            energy_model=self.energy_model,
            switching=switching,
            on_miss=on_miss,
            record_trace=record_trace,
            admissions=padded_admissions,
            enforce_wcet=self.enforce_wcet,
        )
        # Tasks admitted mid-phase must be resolvable by the demand adapter.
        for admission in admissions:
            if admission.task.name not in self._tasks:
                rt_task = PeriodicRTTask(
                    name=admission.task.name,
                    period=admission.task.period,
                    wcet=admission.task.wcet)
                self._tasks[rt_task.name] = rt_task
                simulator.demand_model = KernelDemand(dict(self._tasks))
        result = simulator.run()
        self._absorb(result)
        return result

    def _absorb(self, result: SimResult) -> None:
        self._results.append(result)
        self._uptime += result.duration
        per_task_jobs: Dict[str, List] = {}
        for job in result.jobs:
            per_task_jobs.setdefault(job.task.name, []).append(job)
        for name, jobs in per_task_jobs.items():
            task = self._tasks.get(name)
            if task is None:
                continue
            task.stats.invocations += len(jobs)
            task.stats.completions += sum(1 for j in jobs if j.is_complete)
            task.stats.cycles += sum(j.executed for j in jobs)
            task.advance_phase(len(jobs))
        for miss in result.misses:
            task = self._tasks.get(miss.task_name)
            if task is not None:
                task.stats.misses += 1

    # ------------------------------------------------------------------
    # accumulated accounting
    # ------------------------------------------------------------------
    @property
    def results(self) -> List[SimResult]:
        return list(self._results)

    @property
    def uptime(self) -> float:
        """Total simulated time across phases."""
        return self._uptime

    @property
    def total_energy(self) -> float:
        return sum(r.total_energy for r in self._results)

    @property
    def total_misses(self) -> int:
        return sum(r.deadline_miss_count for r in self._results)

    # ------------------------------------------------------------------
    # procfs plumbing
    # ------------------------------------------------------------------
    def _register_procfs(self) -> None:
        fs = self.procfs
        fs.register("/rt/tasks", read=self._tasks_text,
                    write=self._tasks_write)
        fs.register("/rt/policy", read=self._policy_text,
                    write=self._policy_write)
        fs.register("/rt/stats", read=self._stats_text)
        fs.register("/powernow", read=self.powernow.status_text,
                    write=self.powernow.handle_write)

    def _tasks_text(self) -> str:
        lines = ["name period wcet stats"]
        for task in self._tasks.values():
            lines.append(f"{task.name} {task.period:g} {task.wcet:g} "
                         f"[{task.stats.as_text()}]")
        return "\n".join(lines)

    def _tasks_write(self, text: str) -> None:
        self.register_task(PeriodicRTTask.parse(text))

    def _policy_text(self) -> str:
        if self._module is None:
            return "(no policy module loaded)"
        return (f"{self._module.name} "
                f"(scheduler={self._module.scheduler})")

    def _policy_write(self, text: str) -> None:
        self.load_policy(text.strip())

    def _stats_text(self) -> str:
        return (f"uptime={self.uptime:g} phases={len(self._results)} "
                f"energy={self.total_energy:g} misses={self.total_misses}")
