"""User-level task bodies, prototype style.

On the prototype, a user program registers itself through procfs, then
runs its periodic body and "uses writes to indicate the completion of each
invocation, at which time it will be blocked until the next release time"
(Sec. 4.2).

:class:`UserTask` gives that structure to simulated tasks: the body is a
Python generator function ``body(invocation)`` that *yields the cycle
counts of its computation phases* and returns when the invocation is done
(the yield points are where the real task would block or the write-"done"
happens).  The kernel sums the phases into the invocation's demand, and —
like a real budget-enforcing RTOS — counts invocations whose body asked
for more than the registered worst case.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import KernelError
from repro.kernel.rt_task import PeriodicRTTask

Body = Callable[[int], Iterator[float]]


class UserTask:
    """A periodic task whose behaviour is written as a generator body.

    Parameters
    ----------
    name, period, wcet:
        Registration parameters, as written to the procfs interface.
    body:
        Generator function taking the invocation index and yielding the
        cycles of each computation phase.

    Example
    -------
    >>> def body(invocation):
    ...     yield 1.0                      # read sensors
    ...     if invocation % 10 == 0:
    ...         yield 2.0                  # periodic recalibration
    >>> task = UserTask("sensor", period=10.0, wcet=3.0, body=body)
    >>> task.rt_task.demand_for(0)
    3.0
    >>> task.rt_task.demand_for(1)
    1.0
    """

    def __init__(self, name: str, period: float, wcet: float, body: Body):
        if not callable(body):
            raise KernelError(f"body of task {name!r} must be callable")
        self._body = body
        self.overruns = 0
        self.rt_task = PeriodicRTTask(name=name, period=period, wcet=wcet,
                                      workload=self._demand)

    @property
    def name(self) -> str:
        return self.rt_task.name

    def _demand(self, invocation: int) -> float:
        total = 0.0
        for phase in self._body(invocation):
            try:
                cycles = float(phase)
            except (TypeError, ValueError):
                raise KernelError(
                    f"task {self.name!r} body yielded a non-numeric phase "
                    f"{phase!r} in invocation {invocation}") from None
            if cycles < 0:
                raise KernelError(
                    f"task {self.name!r} body yielded negative cycles "
                    f"({cycles}) in invocation {invocation}")
            total += cycles
        if total > self.rt_task.wcet + 1e-9:
            # The prototype saw exactly this on cold starts; a budget-
            # enforcing kernel clamps and accounts it.
            self.overruns += 1
            return self.rt_task.wcet
        return total

    def register_with(self, kernel, check_admission: bool = True) -> None:
        """Register this task's periodic RT task with an RTKernel."""
        kernel.register_task(self.rt_task,
                             check_admission=check_admission)


def constant_body(cycles: float) -> Body:
    """A body with a single fixed computation phase per invocation."""
    def body(invocation: int):
        yield cycles
    return body


def phased_body(*phases: float) -> Body:
    """A body running the same fixed sequence of phases each invocation."""
    def body(invocation: int):
        for phase in phases:
            yield phase
    return body
