"""An in-memory ``/proc`` filesystem emulation.

The prototype exposes its kernel modules "to user-level programs through
the Linux /procfs filesystem.  Tasks can use ordinary file read and write
mechanisms to interact with our modules" (Sec. 4.2) — handy enough that
status could be read with ``cat``.  This class reproduces that interface:
modules register files with read/write callbacks, user code reads and
writes text.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import KernelError

ReadFn = Callable[[], str]
WriteFn = Callable[[str], None]


class ProcFS:
    """A tree of virtual text files backed by callbacks.

    Paths are ``/``-separated, absolute by convention (a leading ``/proc``
    prefix is accepted and stripped).
    """

    def __init__(self):
        self._reads: Dict[str, ReadFn] = {}
        self._writes: Dict[str, WriteFn] = {}

    @staticmethod
    def _normalize(path: str) -> str:
        path = path.strip()
        if path.startswith("/proc/"):
            path = path[len("/proc"):]
        if not path.startswith("/"):
            path = "/" + path
        while "//" in path:
            path = path.replace("//", "/")
        return path.rstrip("/") or "/"

    def register(self, path: str, read: Optional[ReadFn] = None,
                 write: Optional[WriteFn] = None) -> None:
        """Expose a virtual file; at least one of read/write is required."""
        if read is None and write is None:
            raise KernelError(f"file {path!r} needs a read or write handler")
        key = self._normalize(path)
        if key in self._reads or key in self._writes:
            raise KernelError(f"procfs path {key!r} already registered")
        if read is not None:
            self._reads[key] = read
        if write is not None:
            self._writes[key] = write

    def unregister(self, path: str) -> None:
        """Remove a virtual file (module unload)."""
        key = self._normalize(path)
        found = False
        if key in self._reads:
            del self._reads[key]
            found = True
        if key in self._writes:
            del self._writes[key]
            found = True
        if not found:
            raise KernelError(f"procfs path {key!r} not registered")

    def read(self, path: str) -> str:
        """``cat`` a virtual file."""
        key = self._normalize(path)
        handler = self._reads.get(key)
        if handler is None:
            raise KernelError(f"cannot read procfs path {key!r}")
        return handler()

    def write(self, path: str, text: str) -> None:
        """``echo text >`` a virtual file."""
        key = self._normalize(path)
        handler = self._writes.get(key)
        if handler is None:
            raise KernelError(f"cannot write procfs path {key!r}")
        handler(text)

    def listdir(self, prefix: str = "/") -> List[str]:
        """All registered paths under ``prefix``."""
        prefix = self._normalize(prefix)
        if prefix != "/":
            prefix += "/"
        paths = set(self._reads) | set(self._writes)
        if prefix == "/":
            return sorted(paths)
        return sorted(p for p in paths if p.startswith(prefix))

    def exists(self, path: str) -> bool:
        """Whether a virtual file is registered at ``path``."""
        key = self._normalize(path)
        return key in self._reads or key in self._writes
