"""Task partitioning onto identical processors.

Classic bin-packing heuristics on worst-case utilization, with the
capacity check selectable per scheduler:

* EDF: a processor accepts a task while its utilization stays <= 1
  (necessary and sufficient per processor);
* RM: the exact scheduling-point test gates each assignment
  (conservative-free, but still a heuristic packing overall).

Partitioned scheduling deliberately forgoes global-scheduling gains: each
processor is exactly the paper's uniprocessor model, so every RT-DVS
guarantee carries over with no new theory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ReproError
from repro.model.schedulability import edf_schedulable, rm_exact_schedulable
from repro.model.task import Task, TaskSet

HEURISTICS = ("first-fit", "best-fit", "worst-fit")


class PartitionError(ReproError):
    """The task set could not be packed onto the given processors."""


@dataclass
class Partition:
    """An assignment of tasks to processors."""

    assignments: Tuple[TaskSet, ...]
    scheduler: str

    @property
    def n_processors(self) -> int:
        return len(self.assignments)

    @property
    def utilizations(self) -> List[float]:
        return [ts.utilization for ts in self.assignments]

    @property
    def imbalance(self) -> float:
        """Max minus min per-processor utilization (0 = perfectly even)."""
        utils = self.utilizations
        return max(utils) - min(utils)

    def taskset_for(self, processor: int) -> TaskSet:
        return self.assignments[processor]


def _fits(tasks: List[Task], candidate: Task, scheduler: str) -> bool:
    trial = tasks + [candidate]
    if scheduler == "edf":
        return edf_schedulable(trial, 1.0)
    return rm_exact_schedulable(trial, 1.0)


def partition_tasks(taskset: TaskSet, n_processors: int,
                    scheduler: str = "edf",
                    heuristic: str = "first-fit") -> Partition:
    """Pack ``taskset`` onto ``n_processors`` identical processors.

    Tasks are considered in decreasing utilization order (the standard
    "-decreasing" variants, which have the best packing guarantees).

    Parameters
    ----------
    heuristic:
        ``"first-fit"`` — first processor that accepts;
        ``"best-fit"`` — feasible processor with the *highest* remaining
        load (packs tight, frees whole processors for deep sleep);
        ``"worst-fit"`` — feasible processor with the *lowest* load
        (balances, which suits DVS: evenly slow beats some-fast-some-idle
        under a convex power curve).

    Raises
    ------
    PartitionError
        If some task fits no processor.
    """
    scheduler = scheduler.strip().lower()
    if scheduler not in ("edf", "rm"):
        raise PartitionError(
            f"scheduler must be 'edf' or 'rm', got {scheduler!r}")
    if heuristic not in HEURISTICS:
        raise PartitionError(
            f"heuristic must be one of {HEURISTICS}, got {heuristic!r}")
    if n_processors < 1:
        raise PartitionError(
            f"n_processors must be >= 1, got {n_processors}")
    bins: List[List[Task]] = [[] for _ in range(n_processors)]
    ordered = sorted(taskset, key=lambda t: -t.utilization)
    for task in ordered:
        candidates = [index for index in range(n_processors)
                      if _fits(bins[index], task, scheduler)]
        if not candidates:
            raise PartitionError(
                f"task {task.name!r} (U={task.utilization:.3f}) fits no "
                f"processor under {heuristic} / {scheduler.upper()} with "
                f"{n_processors} processors")
        index = _choose(bins, candidates, heuristic)
        bins[index].append(task)
    assignments = tuple(TaskSet(b) for b in bins if b)
    if len(assignments) < n_processors:
        # Keep empty processors out of the partition: they host no tasks
        # and (with a perfect halt) no energy.
        pass
    return Partition(assignments=assignments, scheduler=scheduler)


def _choose(bins: List[List[Task]], candidates: Sequence[int],
            heuristic: str) -> int:
    if heuristic == "first-fit":
        return candidates[0]
    loads = [(sum(t.utilization for t in bins[index]), index)
             for index in candidates]
    if heuristic == "best-fit":
        return max(loads)[1]
    return min(loads)[1]
