"""Simulate a partitioned multiprocessor: one RT-DVS instance per CPU."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from repro.core import make_policy
from repro.hw.energy import EnergyModel
from repro.hw.machine import Machine
from repro.model.demand import DemandModel
from repro.mp.partition import Partition
from repro.sim.engine import simulate
from repro.sim.results import SimResult


@dataclass
class MultiProcessorResult:
    """Aggregated outcome of a partitioned run."""

    partition: Partition
    per_processor: Tuple[SimResult, ...]
    duration: float

    @property
    def total_energy(self) -> float:
        return sum(r.total_energy for r in self.per_processor)

    @property
    def average_power(self) -> float:
        return self.total_energy / self.duration

    @property
    def peak_processor_power(self) -> float:
        """Highest single-processor average power (the hot spot a cooling
        system must be sized for, in the paper's closing argument)."""
        return max(r.average_power for r in self.per_processor)

    @property
    def met_all_deadlines(self) -> bool:
        return all(r.met_all_deadlines for r in self.per_processor)

    @property
    def deadline_miss_count(self) -> int:
        return sum(r.deadline_miss_count for r in self.per_processor)

    @property
    def executed_cycles(self) -> float:
        return sum(r.executed_cycles for r in self.per_processor)

    def summary(self) -> str:
        utils = ", ".join(f"{u:.2f}" for u in self.partition.utilizations)
        return (f"{self.partition.n_processors} processors (U: {utils}): "
                f"energy={self.total_energy:.4g}, "
                f"peak power={self.peak_processor_power:.4g}, "
                f"misses={self.deadline_miss_count}")


def simulate_partitioned(partition: Partition, machine: Machine,
                         policy_name: str,
                         demand: Union[str, float, None] = None,
                         demand_factory: Optional[
                             Callable[[int], DemandModel]] = None,
                         duration: float = 1000.0,
                         energy_model: Optional[EnergyModel] = None,
                         on_miss: str = "raise") -> MultiProcessorResult:
    """Run every processor's task set under its own policy instance.

    Parameters
    ----------
    partition:
        Output of :func:`~repro.mp.partition.partition_tasks`.
    policy_name:
        Policy instantiated *fresh per processor* (policies are stateful).
    demand / demand_factory:
        Either a shared spec (fraction / "worst" / "uniform") or a factory
        ``processor_index -> DemandModel`` when each processor needs its
        own deterministic stream.
    """
    results: List[SimResult] = []
    for index, taskset in enumerate(partition.assignments):
        if demand_factory is not None:
            processor_demand: Union[str, float, DemandModel, None] = \
                demand_factory(index)
        else:
            processor_demand = demand
        results.append(simulate(
            taskset, machine, make_policy(policy_name),
            demand=processor_demand, duration=duration,
            energy_model=energy_model, on_miss=on_miss))
    return MultiProcessorResult(partition=partition,
                                per_processor=tuple(results),
                                duration=duration)
