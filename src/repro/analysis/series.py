"""Lightweight containers for plotted/tabulated data."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Series:
    """One labelled curve: (x, y) pairs plus a label.

    Immutable; algebraic helpers return new series.
    """

    label: str
    xs: Tuple[float, ...]
    ys: Tuple[float, ...]

    def __post_init__(self):
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.label!r}: {len(self.xs)} xs vs "
                f"{len(self.ys)} ys")

    @classmethod
    def from_pairs(cls, label: str, pairs: Sequence[Tuple[float, float]]
                   ) -> "Series":
        xs, ys = zip(*pairs) if pairs else ((), ())
        return cls(label, tuple(xs), tuple(ys))

    def __len__(self) -> int:
        return len(self.xs)

    def scaled(self, factor: float, label: Optional[str] = None) -> "Series":
        """Multiply every y by ``factor``."""
        return Series(label or self.label, self.xs,
                      tuple(y * factor for y in self.ys))

    def shifted(self, offset: float, label: Optional[str] = None) -> "Series":
        """Add ``offset`` to every y (e.g. constant system overhead)."""
        return Series(label or self.label, self.xs,
                      tuple(y + offset for y in self.ys))

    def divided_by(self, other: "Series",
                   label: Optional[str] = None) -> "Series":
        """Pointwise ratio against another series on the same xs."""
        if self.xs != other.xs:
            raise ValueError("series have different x grids")
        ys = tuple(a / b for a, b in zip(self.ys, other.ys))
        return Series(label or self.label, self.xs, ys)

    def y_at(self, x: float) -> float:
        """The y value at grid point ``x`` (exact match required)."""
        for xi, yi in zip(self.xs, self.ys):
            if abs(xi - x) <= 1e-12:
                return yi
        raise KeyError(f"x={x} not on the grid of series {self.label!r}")


@dataclass
class SweepTable:
    """A family of series over a shared x grid (one per policy).

    This is the in-memory form of each of the paper's figures: x is the
    task-set worst-case utilization, one curve per scheduling method.
    """

    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)

    def add(self, series: Series) -> None:
        if self.series and series.xs != self.series[0].xs:
            raise ValueError("all series in a table must share the x grid")
        self.series.append(series)

    def labels(self) -> List[str]:
        return [s.label for s in self.series]

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    @property
    def xs(self) -> Tuple[float, ...]:
        return self.series[0].xs if self.series else ()

    def rows(self) -> List[List[float]]:
        """Row-major data: one row per x, columns = series order."""
        return [[s.ys[i] for s in self.series]
                for i in range(len(self.xs))]
