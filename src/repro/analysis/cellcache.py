"""Content-addressed on-disk cache for sweep cell results.

A sweep *cell* is one (task set, all policies) simulation unit, fully
determined by a :class:`~repro.analysis.sweep.CellSpec` plus the sweep's
shared :class:`~repro.analysis.sweep.SweepContext` (machine, policy list,
duration, energy-model parameters).  Because cells are regenerated from
seeds, a cell's *outcome* is a pure function of that description — so it
can be cached under a stable content hash and reused across interrupted
``--full`` runs, repeated figures that share cells (fig16/fig17 run the
identical platform sweep), and future invocations of ``run-all``.

Key derivation
--------------
``cell_key`` hashes the canonical JSON of the full cell description plus
:data:`CACHE_SCHEMA`.  Anything that can change a cell's outcome **must**
be part of the description; anything that merely changes *how* the cell is
executed (worker count, executor, submission order) must not be.

Invalidation rules
------------------
* Changing any sweep parameter (seeds, utilization, task count, demand
  spec, machine table, policy list, duration, idle level, energy scale)
  changes the key — old entries are simply never looked up again.
* Changing *simulator semantics* (engine, policies, energy accounting)
  requires bumping :data:`CACHE_SCHEMA`; the schema tag is hashed into
  every key, so a bump orphans all previous entries at once.
* ``make sweep-cache-clean`` (or :meth:`CellCache.clear`) removes orphaned
  entries wholesale.

The cache directory defaults to ``~/.cache/rtdvs-repro/cells`` and can be
redirected with the ``RTDVS_CELL_CACHE`` environment variable or the
``--cache-dir`` CLI option.  Since schema 3, entries are ``.bin`` files in
the columnar wire format of :mod:`repro.analysis.transport` (raw float64
buffers round-trip bit-exactly by construction) — the same codec the
parallel executor ships worker results with.  Entries are written
atomically via a temp file and ``os.replace`` so concurrent sweeps never
observe torn entries.  Legacy schema-2 ``.json`` entries self-evict: a
``get`` that finds one removes it and reports a miss, so stale files drain
away as sweeps re-run instead of lingering forever.

Bounded growth
--------------
A one-shot CLI sweep can afford an unbounded cache; a long-lived serving
process (``rtdvs serve``) cannot.  :meth:`CellCache.sweep` implements
size- and age-bounded LRU eviction: every ``get`` hit touches the entry's
mtime, so mtime order *is* recency order, and the sweeper first drops
entries older than ``max_age`` seconds, then — oldest first — exactly as
many more as needed to bring the total under ``max_bytes``.  Eviction is
whole-file ``unlink``: a concurrent reader either wins the race (a
complete, valid entry) or loses it (a plain miss) — it can never observe
a half-evicted entry.  Limits passed to the constructor arm
:meth:`CellCache.maybe_sweep`, which ``put`` calls opportunistically, and
which the service tier runs on a timer; ``rtdvs cache clean --max-bytes
--max-age`` exposes the same sweeper to operators.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.transport import decode_cell, encode_cell
from repro.errors import ReproError

#: Bump whenever simulator/policy/energy semantics change in a way that
#: alters cell outcomes without changing the sweep parameters themselves.
#: 2: outcomes gained the ``_fast_path`` accounting block and the steady
#: fast path / period-band options entered the context description.
#: 3: entries moved from JSON to the columnar ``transport`` codec
#: (``.bin``); old ``.json`` entries are evicted on sight.
CACHE_SCHEMA = 3

#: Environment variable overriding the default cache root.
CACHE_ENV_VAR = "RTDVS_CELL_CACHE"


def default_cache_dir() -> str:
    """The cache root: ``$RTDVS_CELL_CACHE`` or ``~/.cache/rtdvs-repro/cells``."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(base, "rtdvs-repro", "cells")


def cell_key(description: Dict[str, object]) -> str:
    """Stable content hash of a cell description.

    The description must be JSON-serializable; key order does not matter
    (the JSON is canonicalized with sorted keys).  :data:`CACHE_SCHEMA` is
    mixed in so semantic revisions orphan old entries.
    """
    payload = dict(description)
    payload["_cache_schema"] = CACHE_SCHEMA
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                           allow_nan=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def encode_outcome(outcome: Dict[str, object]) -> Dict[str, object]:
    """Convert a cell outcome to a JSON-safe dict (legacy schema <= 2
    entry format; current entries use :mod:`repro.analysis.transport`).

    Outcomes map policy labels to float energies, plus ``_rm_fallbacks``
    (int) and optionally ``_residency`` (policy -> {float frequency ->
    fraction}).  JSON object keys must be strings, so residency tables are
    flattened into ``[frequency, fraction]`` pairs.
    """
    encoded: Dict[str, object] = {
        "energies": {label: value for label, value in outcome.items()
                     if not label.startswith("_")},
        "rm_fallbacks": outcome.get("_rm_fallbacks", 0),
    }
    residency = outcome.get("_residency")
    if residency:
        encoded["residency"] = {
            policy: sorted([f, frac] for f, frac in table.items())
            for policy, table in residency.items()}
    fast_path = outcome.get("_fast_path")
    if fast_path is not None:
        encoded["fast_path"] = fast_path
    return encoded


def decode_outcome(encoded: Dict[str, object]) -> Dict[str, object]:
    """Inverse of :func:`encode_outcome`."""
    outcome: Dict[str, object] = dict(encoded["energies"])
    outcome["_rm_fallbacks"] = int(encoded["rm_fallbacks"])
    residency = encoded.get("residency")
    if residency:
        outcome["_residency"] = {
            policy: {float(f): float(frac) for f, frac in pairs}
            for policy, pairs in residency.items()}
    fast_path = encoded.get("fast_path")
    if fast_path is not None:
        outcome["_fast_path"] = {
            "used": int(fast_path.get("used", 0)),
            "fallbacks": {reason: int(count) for reason, count in
                          fast_path.get("fallbacks", {}).items()}}
    return outcome


@dataclass
class EvictionStats:
    """What one :meth:`CellCache.sweep` pass did."""

    #: Entries examined (current ``.bin`` plus legacy ``.json``).
    scanned: int = 0
    #: Entries removed because they were older than ``max_age``.
    expired: int = 0
    #: Entries removed (oldest first) to satisfy ``max_bytes``.
    evicted: int = 0
    #: Bytes reclaimed by both passes together.
    reclaimed_bytes: int = 0
    #: Entries left after the sweep.
    remaining_entries: int = 0
    #: Bytes left after the sweep.
    remaining_bytes: int = 0

    @property
    def removed(self) -> int:
        return self.expired + self.evicted

    def to_dict(self) -> Dict[str, int]:
        return {"scanned": self.scanned, "expired": self.expired,
                "evicted": self.evicted,
                "reclaimed_bytes": self.reclaimed_bytes,
                "remaining_entries": self.remaining_entries,
                "remaining_bytes": self.remaining_bytes}


class CellCache:
    """A directory of content-addressed cell outcomes.

    Entries are sharded two hex characters deep (``ab/abcdef....bin``) so
    paper-scale sweeps (thousands of cells) do not pile every entry into
    one directory.  Unreadable or schema-mismatched entries — including
    pre-schema-3 ``.json`` files — are treated as misses and removed.

    ``max_bytes`` / ``max_age`` (seconds) arm the LRU eviction sweeper
    (see the module docstring); ``None`` leaves growth unbounded, the
    historical CLI behavior.
    """

    #: Entry globs in probe order: current binary format first, then the
    #: legacy JSON format kept only so old entries can self-evict.
    _ENTRY_GLOBS = ("??/*.bin", "??/*.json")

    #: Errors a cache probe treats as a *silent* miss: our own
    #: schema-mismatch ``ValueError`` (expected after a schema bump) and
    #: I/O failures reading the entry.  Corrupt payloads (the codec wraps
    #: json/codec/struct failures in :class:`~repro.errors.ReproError`)
    #: are also misses, but they are counted in :attr:`swallowed_errors`
    #: — a torn or bit-rotted entry should be visible to operators even
    #: though it self-evicts.  Anything else is a bug, never a miss.
    _EXPECTED_ENTRY_ERRORS = (ValueError, OSError)

    #: Sidecar file (under the cache root) recording swallowed
    #: unexpected errors, one line each, so ``repro cache info`` can
    #: surface problems from past runs and other processes.
    SWALLOWED_LOG = "swallowed.log"

    #: ``put`` calls between opportunistic :meth:`maybe_sweep` passes
    #: when eviction limits are configured.
    SWEEP_EVERY_PUTS = 64

    def __init__(self, root: Union[str, Path],
                 max_bytes: Optional[int] = None,
                 max_age: Optional[float] = None):
        self.root = Path(root)
        #: Swallowed errors recorded by this instance (each one is also
        #: appended to :attr:`SWALLOWED_LOG`): unexpected exceptions on
        #: any path, plus corrupt ``.bin`` payloads — a torn or
        #: bit-rotted entry self-evicts (so it counts exactly once) but
        #: an operator should still hear about it.  Plain misses —
        #: absent entries, legacy/stale schema drains — never count.
        self.swallowed_errors = 0
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if max_age is not None and max_age < 0:
            raise ValueError(f"max_age must be >= 0, got {max_age}")
        self.max_bytes = max_bytes
        self.max_age = max_age
        self._puts_since_sweep = 0

    def _swallow(self, where: str, exc: BaseException) -> None:
        """Count (and best-effort log) one unexpected, swallowed error."""
        self.swallowed_errors += 1
        line = f"{where}: {type(exc).__name__}: {exc}\n"
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(self.root / self.SWALLOWED_LOG, "a",
                      encoding="utf-8") as handle:
                handle.write(line)
        except OSError:
            pass  # logging the swallow must never break the sweep

    def swallowed_log_lines(self) -> list:
        """Recorded swallow lines from this and previous runs."""
        try:
            with open(self.root / self.SWALLOWED_LOG,
                      encoding="utf-8") as handle:
                return handle.read().splitlines()
        except OSError:
            return []

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.bin"

    def _legacy_path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached outcome for ``key``, or ``None`` on a miss.

        Probes the ``.bin`` entry, then the legacy ``.json`` slot; a
        legacy (or torn, or wrong-schema) file is unlinked on sight so
        stale entries drain away instead of being re-parsed on every
        sweep forever.  A hit touches the entry's mtime, so
        :meth:`sweep` sees mtime order as true LRU order.

        A :class:`PermissionError` propagates: an unreadable shard means
        the cache directory is misconfigured, and reporting every entry
        as a miss would silently resimulate the whole sweep.
        """
        path = self.path_for(key)
        try:
            data = path.read_bytes()
            outcome, meta = decode_cell(data, with_meta=True)
            if meta.get("schema") != CACHE_SCHEMA:
                raise ValueError(f"schema {meta.get('schema')!r}")
            self._touch(path)
            self._evict(self._legacy_path_for(key))
            return outcome
        except FileNotFoundError:
            pass
        except PermissionError:
            raise
        except ReproError as exc:
            # Corrupt payload (torn write, bit rot): a miss, but counted
            # — the entry self-evicts, so it counts exactly once.
            self._swallow(f"corrupt {key[:12]}", exc)
            self._evict(path)
            return None
        except self._EXPECTED_ENTRY_ERRORS:
            # Stale-schema entry or unreadable file: drop and resimulate.
            self._evict(path)
            return None
        except Exception as exc:
            # A decode bug is not a miss; count it so `repro cache info`
            # surfaces the problem instead of the sweep resimulating
            # silently forever.
            self._swallow(f"get {key[:12]}", exc)
            self._evict(path)
            return None
        # No binary entry; a JSON file here is by definition pre-schema-3.
        self._evict(self._legacy_path_for(key))
        return None

    @staticmethod
    def _touch(path: Path) -> None:
        """Best-effort mtime bump (LRU recency marker); losing the race
        with an eviction or running on a read-only mount is harmless."""
        try:
            os.utime(path)
        except OSError:
            pass

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except FileNotFoundError:
            pass  # racing writer already replaced/removed it
        except OSError as exc:
            # Undeletable entry (permissions, read-only mount): the cache
            # still works, but a stale file is now pinned — record it.
            self._swallow(f"evict {path.name}", exc)

    def put(self, key: str, outcome: Dict[str, object]) -> None:
        """Store ``outcome`` under ``key`` (atomic; last writer wins)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = encode_cell(outcome,
                              meta={"schema": CACHE_SCHEMA, "key": key})
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            except OSError as exc:
                self._swallow(f"put-cleanup {path.name}", exc)
            raise
        if self.max_bytes is not None or self.max_age is not None:
            self._puts_since_sweep += 1
            if self._puts_since_sweep >= self.SWEEP_EVERY_PUTS:
                self.maybe_sweep()

    def _entries(self):
        for pattern in self._ENTRY_GLOBS:
            yield from self.root.glob(pattern)

    # -- bounded eviction ---------------------------------------------------
    def _stat_entries(self) -> List[Tuple[float, int, Path]]:
        """(mtime, size, path) for every current entry, oldest first.

        Entries racing away mid-scan (concurrent eviction or ``clear``)
        are simply skipped.
        """
        stats: List[Tuple[float, int, Path]] = []
        for path in self._entries():
            try:
                st = path.stat()
            except OSError:
                continue  # raced away; nothing to account
            stats.append((st.st_mtime, st.st_size, path))
        stats.sort(key=lambda item: (item[0], str(item[2])))
        return stats

    def sweep(self, max_bytes: Optional[int] = None,
              max_age: Optional[float] = None,
              now: Optional[float] = None) -> EvictionStats:
        """Size- and age-bounded LRU eviction pass.

        Two passes over a single stat snapshot: first every entry whose
        age exceeds ``max_age`` seconds is removed, then — strictly
        oldest-mtime first — exactly as many more as needed to bring the
        surviving total to ``max_bytes`` or less.  The sweep never
        removes an entry it does not have to: once the running total is
        within budget, every younger entry survives.

        ``max_bytes``/``max_age`` default to the instance limits;
        ``now`` pins the age reference for tests.  Returns
        :class:`EvictionStats`.
        """
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        max_age = self.max_age if max_age is None else max_age
        now = time.time() if now is None else now
        stats = EvictionStats()
        entries = self._stat_entries()
        stats.scanned = len(entries)
        survivors: List[Tuple[float, int, Path]] = []
        for mtime, size, path in entries:
            if max_age is not None and now - mtime > max_age:
                if self._evict_counted(path):
                    stats.expired += 1
                    stats.reclaimed_bytes += size
                continue
            survivors.append((mtime, size, path))
        total = sum(size for _, size, _ in survivors)
        if max_bytes is not None:
            for mtime, size, path in survivors:
                if total <= max_bytes:
                    break
                if self._evict_counted(path):
                    stats.evicted += 1
                    stats.reclaimed_bytes += size
                # Either way the entry no longer counts against the
                # budget: a failed unlink means a racing sweep/clear
                # removed it first (FileNotFoundError is success-like).
                total -= size
        stats.remaining_entries = stats.scanned - stats.expired \
            - stats.evicted
        stats.remaining_bytes = total
        return stats

    def _evict_counted(self, path: Path) -> bool:
        """Unlink one entry for the sweeper; True when this call removed
        it (a concurrent remover winning the race reports False)."""
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False
        except OSError as exc:
            self._swallow(f"sweep {path.name}", exc)
            return False

    def maybe_sweep(self) -> Optional[EvictionStats]:
        """Run :meth:`sweep` if this cache was built with limits."""
        if self.max_bytes is None and self.max_age is None:
            return None
        self._puts_since_sweep = 0
        return self.sweep()

    def age_summary(self, now: Optional[float] = None,
                    ) -> Optional[Tuple[int, int, float, float]]:
        """``(entries, total_bytes, newest_age_s, oldest_age_s)`` from one
        stat pass, or ``None`` for an empty cache.

        The operator view behind ``rtdvs cache info``: total bytes sizes
        ``--max-bytes``, the age spread sizes ``--max-age``.  Ages are
        against entry mtimes, i.e. last *use* (reads touch).
        """
        entries = self._stat_entries()
        if not entries:
            return None
        now = time.time() if now is None else now
        total = sum(size for _, size, _ in entries)
        oldest_age = max(0.0, now - entries[0][0])
        newest_age = max(0.0, now - entries[-1][0])
        return len(entries), total, newest_age, oldest_age

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def size_bytes(self) -> int:
        """Total size of all cache entries (legacy JSON included), in bytes."""
        return sum(p.stat().st_size for p in self._entries())

    def clear(self) -> int:
        """Remove every entry (legacy JSON included); returns the count."""
        removed = 0
        for path in list(self._entries()):
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                pass  # concurrent clear/eviction got there first
            except OSError as exc:
                self._swallow(f"clear {path.name}", exc)
        for shard in self.root.glob("??"):
            try:
                shard.rmdir()
            except OSError:
                pass  # shard not empty (undeletable entry) — expected
        try:
            (self.root / self.SWALLOWED_LOG).unlink()
        except FileNotFoundError:
            pass
        except OSError as exc:
            self._swallow("clear swallowed.log", exc)
        return removed


def open_cache(cache_dir: Union[str, Path, None],
               max_bytes: Optional[int] = None,
               max_age: Optional[float] = None) -> Optional[CellCache]:
    """Open a :class:`CellCache` at ``cache_dir``; ``None`` disables caching.

    ``max_bytes``/``max_age`` arm the LRU eviction sweeper (the service
    tier passes its configured bounds; the CLI leaves growth unbounded).
    """
    if cache_dir is None:
        return None
    return CellCache(cache_dir, max_bytes=max_bytes, max_age=max_age)
