"""Combined reproduction report.

Assembles the outputs of many experiments into a single Markdown document
(summary table up front, full per-experiment sections after), the
machine-generated companion to the hand-written EXPERIMENTS.md.
"""

from __future__ import annotations

import datetime
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import is type-only to avoid a
    # cycle (experiments.common uses the analysis exporters).
    from repro.experiments.common import ExperimentResult


def combined_report(results: Sequence[ExperimentResult],
                    title: str = "RT-DVS reproduction report",
                    charts: bool = True,
                    generated_at: Optional[str] = None) -> str:
    """Render many experiment results as one Markdown document.

    ``generated_at`` defaults to the current UTC time; pass a fixed string
    for reproducible output.
    """
    if generated_at is None:
        generated_at = datetime.datetime.now(
            datetime.timezone.utc).strftime("%Y-%m-%d %H:%M UTC")
    lines: List[str] = [f"# {title}", "",
                        f"Generated {generated_at}.", ""]
    lines.append("## Summary")
    lines.append("")
    lines.append("| experiment | scale | shape checks | status |")
    lines.append("|---|---|---|---|")
    for result in results:
        passed = sum(1 for c in result.checks if c.passed)
        total = len(result.checks)
        status = "ok" if result.all_checks_pass else "**CHECK FAILURES**"
        scale = "quick" if result.quick else "full"
        lines.append(f"| {result.experiment_id} | {scale} | "
                     f"{passed}/{total} | {status} |")
    lines.append("")
    residency_count = sum(len(getattr(r, "residency_tables", ()))
                          for r in results)
    if residency_count:
        lines.append(f"Includes {residency_count} frequency-residency "
                     "table(s) from instrumented runs "
                     "(`repro.obs.MetricsCollector`).")
        lines.append("")
    for result in results:
        lines.append(result.render(charts=charts))
        lines.append("")
    return "\n".join(lines)


def write_combined_report(results: Sequence[ExperimentResult], path: str,
                          **kwargs) -> str:
    """Write :func:`combined_report` to ``path``; returns the text."""
    text = combined_report(results, **kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text
