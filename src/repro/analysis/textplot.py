"""ASCII line charts.

No plotting library is available offline, so the experiment drivers render
each figure as a character grid: one glyph per series, a y axis with tick
labels, and a legend.  The *shapes* — who wins, where curves cross — are
what the reproduction claims, and they read fine in ASCII.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.series import SweepTable

_GLYPHS = "ox+*#@%&$~^"


def line_chart(table: SweepTable, width: int = 64, height: int = 20,
               y_min: Optional[float] = None,
               y_max: Optional[float] = None) -> str:
    """Render a :class:`SweepTable` as an ASCII chart."""
    if not table.series:
        return "(no data)"
    xs = table.xs
    if len(xs) < 2:
        return _single_column(table)
    all_ys = [y for s in table.series for y in s.ys]
    lo = y_min if y_min is not None else min(all_ys)
    hi = y_max if y_max is not None else max(all_ys)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        span = xs[-1] - xs[0]
        return min(width - 1, max(0, round((x - xs[0]) / span * (width - 1))))

    def row(y: float) -> int:
        fraction = (y - lo) / (hi - lo)
        return min(height - 1,
                   max(0, height - 1 - round(fraction * (height - 1))))

    for index, series in enumerate(table.series):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        points = [(col(x), row(y)) for x, y in zip(series.xs, series.ys)]
        for (c0, r0), (c1, r1) in zip(points, points[1:]):
            _draw_segment(grid, c0, r0, c1, r1, glyph)
        for c, r in points:
            grid[r][c] = glyph

    lines = [f"{table.title}", ""]
    for r in range(height):
        if r == 0:
            label = f"{hi:8.3g} |"
        elif r == height - 1:
            label = f"{lo:8.3g} |"
        else:
            label = "         |"
        lines.append(label + "".join(grid[r]))
    lines.append("         +" + "-" * width)
    left = f"{xs[0]:g}"
    right = f"{xs[-1]:g}"
    pad = max(1, width - len(left) - len(right))
    lines.append("          " + left + " " * pad + right)
    lines.append(f"          x: {table.x_label}   y: {table.y_label}")
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={s.label}"
        for i, s in enumerate(table.series))
    lines.append("          " + legend)
    return "\n".join(lines)


def _draw_segment(grid: List[List[str]], c0: int, r0: int, c1: int, r1: int,
                  glyph: str) -> None:
    """Bresenham-ish interpolation between consecutive data points."""
    steps = max(abs(c1 - c0), abs(r1 - r0))
    if steps == 0:
        grid[r0][c0] = glyph
        return
    for k in range(steps + 1):
        c = round(c0 + (c1 - c0) * k / steps)
        r = round(r0 + (r1 - r0) * k / steps)
        if grid[r][c] == " ":
            grid[r][c] = glyph


def _single_column(table: SweepTable) -> str:
    lines = [table.title, ""]
    x = table.xs[0]
    for series in table.series:
        lines.append(f"  {series.label:12s} x={x:g}  y={series.ys[0]:.4g}")
    return "\n".join(lines)
