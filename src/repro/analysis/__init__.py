"""Analysis harness: parameter sweeps, aggregation, rendering, export.

The paper's evaluation (Sec. 3.2) averages energy "across hundreds of
distinct task sets generated for several different total worst-case
utilization values".  :mod:`repro.analysis.sweep` runs exactly that
experiment shape; the other modules turn the results into the tables and
(ASCII) figures the experiment drivers print.
"""

from repro.analysis.cellcache import (CellCache, EvictionStats, cell_key,
                                      default_cache_dir, open_cache)
from repro.analysis.compare import (PolicyComparison, compare_policies,
                                    comparison_table)
from repro.analysis.executor import (CellExecutor, SweepProgress,
                                     effective_cpu_count, resolve_workers)
from repro.analysis.report import combined_report, write_combined_report
from repro.analysis.series import Series, SweepTable
from repro.analysis.sweep import (CellSpec, SweepConfig, SweepContext,
                                  SweepResult, utilization_sweep)
from repro.analysis.aggregate import mean, sample_std, normalize_series
from repro.analysis.textplot import line_chart
from repro.analysis.export import to_csv, to_markdown, trace_to_csv

__all__ = [
    "CellCache",
    "CellExecutor",
    "CellSpec",
    "EvictionStats",
    "SweepContext",
    "SweepProgress",
    "cell_key",
    "default_cache_dir",
    "effective_cpu_count",
    "open_cache",
    "resolve_workers",
    "PolicyComparison",
    "compare_policies",
    "comparison_table",
    "combined_report",
    "write_combined_report",
    "Series",
    "SweepTable",
    "SweepConfig",
    "SweepResult",
    "utilization_sweep",
    "mean",
    "sample_std",
    "normalize_series",
    "line_chart",
    "to_csv",
    "to_markdown",
    "trace_to_csv",
]
