"""Batch execution backend for sweep cells (``--engine batch``).

The scalar sweep path hands every cell to the discrete-event engine one
policy run at a time.  This module is the third execution mode: it walks
the sweep's cell stream *column by column* — a column being the run of
consecutive cells that share one task-set recipe ``(utilization, gen_seed,
n_tasks, bands, demand)`` — materializes each column once into a
structure-of-arrays :class:`ColumnBlock` (task parameters with the cell
index as the leading axis, per-cell hyperperiods, per-cell
frequency-selection state), and runs every cell through the flat-array
:class:`~repro.sim.batch_kernels.CellKernel` instead of the engine.

Two invariants anchor the design:

* **Bit identity.**  A batch cell produces the *same outcome dict* as the
  scalar path: :func:`run_cell_batch` is
  :func:`repro.analysis.sweep.run_cell` itself, parameterized with
  :func:`batch_simulate` as its simulation entry point, so the RM
  fallback logic, the bound, residency instrumentation, and the
  hyperperiod short-circuit compose identically (the short-circuit's
  warmup windows run on the batch kernel too, then extrapolate per cell
  exactly as before).  Runs outside the kernel envelope — instrumented
  policies, exotic miss modes — silently fall back to the engine, cell by
  cell.
* **Scalar-path laziness.**  Within the simulation layer, numpy only
  ever loads through :func:`repro.sim.batch_kernels.numpy_backend`,
  which nothing on the scalar path calls; the memory benchmark's record
  path keeps ``numpy`` out of ``sys.modules`` entirely (asserted by
  :mod:`benchmarks.numpy_guard`; the one sanctioned importer outside the
  batch kernels is the vectorized RTA in
  :mod:`repro.model.schedulability`, which only static-RM admission
  reaches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import groupby
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.sweep import (CellSpec, SweepContext, materialize_cell,
                                  run_cell)
from repro.model.demand import TraceDemand
from repro.model.task import TaskSet
from repro.sim.batch_kernels import (kernel_simulate, kernel_supported,
                                     lowest_at_least_indices)
from repro.sim.engine import simulate

#: Engine names accepted by the sweep layer.
ENGINES = ("scalar", "batch")

#: Keyword arguments the engine accepts but :class:`CellKernel` does not
#: spell out; they reach the kernel only with their default (supported)
#: values, so they are dropped rather than forwarded.
_ENGINE_ONLY_KWARGS = ("admissions", "enforce_wcet", "switching")


def batch_simulate(taskset: TaskSet, machine, policy,
                   params: Optional[tuple] = None, **kwargs):
    """Simulate one run on the batch kernel, or fall back to the engine.

    Drop-in compatible with :func:`repro.sim.engine.simulate` (including
    the ``instrument`` keyword); ``params`` optionally supplies the
    pre-flattened ``(periods, wcets)`` row of a :class:`ColumnBlock`.
    Anything the kernel envelope does not cover — instrumented runs,
    ``on_miss="continue"``, wakeup-timer policies, dynamic admissions —
    runs on the engine and returns its (identical) result.
    """
    if not kernel_supported(policy, **kwargs):
        return simulate(taskset, machine, policy, **kwargs)
    kernel_kwargs = {key: value for key, value in kwargs.items()
                     if key not in _ENGINE_ONLY_KWARGS}
    kernel_kwargs.pop("instrument", None)
    return kernel_simulate(taskset, machine, policy, params=params,
                           **kernel_kwargs)


def _batch_simulate_fn(params: Optional[tuple]):
    """A ``simulate``-shaped callable binding one cell's SoA row."""
    def sim(taskset, machine, policy, **kwargs):
        return batch_simulate(taskset, machine, policy, params=params,
                              **kwargs)
    return sim


# ---------------------------------------------------------------------------
# column blocks
# ---------------------------------------------------------------------------

def _column_key(spec: CellSpec) -> tuple:
    """The task-set recipe a sweep column shares.

    Cells with equal keys draw from the same seeded generator stream, so
    one materialization pass serves the whole run of them.
    """
    return (spec.utilization, spec.gen_seed, spec.n_tasks, spec.bands,
            spec.demand)


@dataclass
class ColumnBlock:
    """One sweep column, materialized as structure-of-arrays state.

    Every array is laid out with the **cell index as the leading axis**:
    ``periods[c][i]`` is task ``i`` of cell ``c``.  The block carries the
    release/deadline state seed (flattened task parameters consumed by
    :class:`~repro.sim.batch_kernels.CellKernel`), the per-cell
    hyperperiod at the context's pinned ``steady_resolution`` (so cache
    keys and batch-column grouping agree on fast-path eligibility), and
    the per-cell initial frequency-selection state (the operating-point
    index a utilization-proportional policy starts from, computed with
    the vectorized ``lowest_at_least`` kernel — diagnostic block stats,
    never result-bearing).
    """

    context: SweepContext
    specs: List[CellSpec]
    tasksets: List[TaskSet]
    demands: List[TraceDemand]
    periods: List[List[float]]
    wcets: List[List[float]]
    hyperperiods: List[Optional[float]]
    initial_point_index: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.specs)


def build_column_block(context: SweepContext,
                       specs: Sequence[CellSpec]) -> ColumnBlock:
    """Materialize one column of cells into a :class:`ColumnBlock`."""
    tasksets: List[TaskSet] = []
    demands: List[TraceDemand] = []
    periods: List[List[float]] = []
    wcets: List[List[float]] = []
    hyperperiods: List[Optional[float]] = []
    utilizations: List[float] = []
    resolution = getattr(context, "steady_resolution", 1e-6)
    for spec in specs:
        taskset, demand = materialize_cell(context, spec)
        tasksets.append(taskset)
        demands.append(demand)
        periods.append([t.period for t in taskset])
        wcets.append([t.wcet for t in taskset])
        hyperperiods.append(taskset.hyperperiod(resolution=resolution))
        total = 0.0
        for task in taskset:
            total += task.wcet / task.period
        utilizations.append(total if total <= 1.0 else 1.0)
    initial = lowest_at_least_indices(context.machine, utilizations)
    return ColumnBlock(context=context, specs=list(specs),
                       tasksets=tasksets, demands=demands,
                       periods=periods, wcets=wcets,
                       hyperperiods=hyperperiods,
                       initial_point_index=initial)


def run_block_cell(block: ColumnBlock, index: int) -> Dict[str, object]:
    """Run one cell of a materialized block.

    Delegates to the scalar :func:`~repro.analysis.sweep.run_cell` with
    the batch kernel as its simulation entry point, so the outcome dict —
    keys, insertion order, RM fallbacks, bound, fast-path accounting — is
    the scalar path's own.
    """
    spec = block.specs[index]
    params = (block.periods[index], block.wcets[index])
    return run_cell(block.context, spec,
                    simulate_fn=_batch_simulate_fn(params),
                    materialized=(block.tasksets[index],
                                  block.demands[index]))


def run_cell_batch(context: SweepContext,
                   spec: CellSpec) -> Dict[str, object]:
    """Batch-engine twin of :func:`~repro.analysis.sweep.run_cell`.

    The per-cell entry point used by worker processes (each worker cell
    is its own single-cell block; worker fan-out already parallelizes
    across the column).
    """
    return run_block_cell(build_column_block(context, [spec]), 0)


def iter_cells_batch(context: SweepContext, specs: Sequence[CellSpec],
                     ) -> Iterator[Tuple[int, Dict[str, object]]]:
    """Yield ``(index, outcome)`` for every spec, in submission order.

    The inline (single-process) batch path: consecutive specs sharing a
    task-set recipe become one :class:`ColumnBlock`, materialized once
    and executed cell by cell on the kernel.
    """
    position = 0
    for _, group in groupby(specs, key=_column_key):
        column = list(group)
        block = build_column_block(context, column)
        for offset in range(len(column)):
            yield position, run_block_cell(block, offset)
            position += 1
