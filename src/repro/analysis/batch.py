"""Batch and block execution backends for sweep cells.

The scalar sweep path hands every cell to the discrete-event engine one
policy run at a time.  This module owns the two array-accelerated
execution modes that replace it:

* ``--engine batch`` walks the sweep's cell stream *column by column* — a
  column being the run of consecutive cells that share one task-set
  recipe ``(utilization, gen_seed, n_tasks, bands, demand)`` —
  materializes each column once into a structure-of-arrays
  :class:`ColumnBlock` (task parameters with the cell index as the
  leading axis, per-cell hyperperiods, per-cell frequency-selection
  state), and runs every cell through the flat-array
  :class:`~repro.sim.batch_kernels.CellKernel` instead of the engine.
* ``--engine block`` goes one level further: every *policy run* of every
  cell becomes one lane of the cross-cell vectorized simulator
  (:mod:`repro.sim.block_kernels`), and the whole cell stream advances
  in lockstep array passes over the lane axis.  The planner here runs
  each policy's real ``setup`` to seed the lane, mirrors the steady
  fast-path eligibility so warmup windows are batched across the cell
  axis too, and hands every lane the block engine cannot replicate
  exactly (unsupported policies, instrumented runs, abandoned lanes)
  down the fallback ladder: block lane → per-cell kernel → engine.
  Per-run fallback reasons and per-stage timings are reported through
  :class:`BlockStats` so silent degradation is visible in sweep results.

Two invariants anchor the design:

* **Bit identity.**  A batch cell produces the *same outcome dict* as the
  scalar path: :func:`run_cell_batch` is
  :func:`repro.analysis.sweep.run_cell` itself, parameterized with
  :func:`batch_simulate` as its simulation entry point, so the RM
  fallback logic, the bound, residency instrumentation, and the
  hyperperiod short-circuit compose identically (the short-circuit's
  warmup windows run on the batch kernel too, then extrapolate per cell
  exactly as before).  Runs outside the kernel envelope — instrumented
  policies, exotic miss modes — silently fall back to the engine, cell by
  cell.
* **Scalar-path laziness.**  Within the simulation layer, numpy only
  ever loads through :func:`repro.sim.batch_kernels.numpy_backend`,
  which nothing on the scalar path calls; the memory benchmark's record
  path keeps ``numpy`` out of ``sys.modules`` entirely (asserted by
  :mod:`benchmarks.numpy_guard`; the one sanctioned importer outside the
  batch kernels is the vectorized RTA in
  :mod:`repro.model.schedulability`, which only static-RM admission
  reaches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import groupby
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.sweep import (REFERENCE_POLICY, CellSpec, SweepContext,
                                  materialize_cell, run_cell)
from repro.core import make_policy
from repro.core.cycle_conserving import CycleConservingEDF
from repro.core.no_dvs import NoDVS
from repro.core.static_scaling import StaticEDF, StaticRM
from repro.errors import MachineError, SchedulabilityError
from repro.model.demand import TraceDemand
from repro.model.task import TaskSet
from repro.sim import block_kernels
from repro.sim.batch_kernels import (kernel_simulate, kernel_supported,
                                     lowest_at_least_indices, numpy_backend)
from repro.sim.block_kernels import LaneResult, LaneSpec, SEG_RUN, run_lanes
from repro.sim.engine import simulate
from repro.sim.steady import demand_is_hyperperiodic
from repro.sim.timeline import SimTimeline

#: Engine names accepted by the sweep layer.
ENGINES = ("scalar", "batch", "block")

#: Keyword arguments the engine accepts but :class:`CellKernel` does not
#: spell out; they reach the kernel only with their default (supported)
#: values, so they are dropped rather than forwarded.
_ENGINE_ONLY_KWARGS = ("admissions", "enforce_wcet", "switching")


def batch_simulate(taskset: TaskSet, machine, policy,
                   params: Optional[tuple] = None, **kwargs):
    """Simulate one run on the batch kernel, or fall back to the engine.

    Drop-in compatible with :func:`repro.sim.engine.simulate` (including
    the ``instrument`` keyword); ``params`` optionally supplies the
    pre-flattened ``(periods, wcets)`` row of a :class:`ColumnBlock`.
    Anything the kernel envelope does not cover — instrumented runs,
    ``on_miss="continue"``, wakeup-timer policies, dynamic admissions —
    runs on the engine and returns its (identical) result.
    """
    if not kernel_supported(policy, **kwargs):
        return simulate(taskset, machine, policy, **kwargs)
    kernel_kwargs = {key: value for key, value in kwargs.items()
                     if key not in _ENGINE_ONLY_KWARGS}
    kernel_kwargs.pop("instrument", None)
    return kernel_simulate(taskset, machine, policy, params=params,
                           **kernel_kwargs)


def _batch_simulate_fn(params: Optional[tuple]):
    """A ``simulate``-shaped callable binding one cell's SoA row."""
    def sim(taskset, machine, policy, **kwargs):
        return batch_simulate(taskset, machine, policy, params=params,
                              **kwargs)
    return sim


# ---------------------------------------------------------------------------
# column blocks
# ---------------------------------------------------------------------------

def _column_key(spec: CellSpec) -> tuple:
    """The task-set recipe a sweep column shares.

    Cells with equal keys draw from the same seeded generator stream, so
    one materialization pass serves the whole run of them.
    """
    return (spec.utilization, spec.gen_seed, spec.n_tasks, spec.bands,
            spec.demand)


@dataclass
class ColumnBlock:
    """One sweep column, materialized as structure-of-arrays state.

    Every array is laid out with the **cell index as the leading axis**:
    ``periods[c][i]`` is task ``i`` of cell ``c``.  The block carries the
    release/deadline state seed (flattened task parameters consumed by
    :class:`~repro.sim.batch_kernels.CellKernel`), the per-cell
    hyperperiod at the context's pinned ``steady_resolution`` (so cache
    keys and batch-column grouping agree on fast-path eligibility), and
    the per-cell initial frequency-selection state (the operating-point
    index a utilization-proportional policy starts from, computed with
    the vectorized ``lowest_at_least`` kernel — diagnostic block stats,
    never result-bearing).
    """

    context: SweepContext
    specs: List[CellSpec]
    tasksets: List[TaskSet]
    demands: List[TraceDemand]
    periods: List[List[float]]
    wcets: List[List[float]]
    hyperperiods: List[Optional[float]]
    initial_point_index: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.specs)


def build_column_block(context: SweepContext,
                       specs: Sequence[CellSpec]) -> ColumnBlock:
    """Materialize one column of cells into a :class:`ColumnBlock`."""
    tasksets: List[TaskSet] = []
    demands: List[TraceDemand] = []
    periods: List[List[float]] = []
    wcets: List[List[float]] = []
    hyperperiods: List[Optional[float]] = []
    utilizations: List[float] = []
    resolution = getattr(context, "steady_resolution", 1e-6)
    for spec in specs:
        taskset, demand = materialize_cell(context, spec)
        tasksets.append(taskset)
        demands.append(demand)
        periods.append([t.period for t in taskset])
        wcets.append([t.wcet for t in taskset])
        hyperperiods.append(taskset.hyperperiod(resolution=resolution))
        total = 0.0
        for task in taskset:
            total += task.wcet / task.period
        utilizations.append(total if total <= 1.0 else 1.0)
    initial = lowest_at_least_indices(context.machine, utilizations)
    return ColumnBlock(context=context, specs=list(specs),
                       tasksets=tasksets, demands=demands,
                       periods=periods, wcets=wcets,
                       hyperperiods=hyperperiods,
                       initial_point_index=initial)


def run_block_cell(block: ColumnBlock, index: int) -> Dict[str, object]:
    """Run one cell of a materialized block.

    Delegates to the scalar :func:`~repro.analysis.sweep.run_cell` with
    the batch kernel as its simulation entry point, so the outcome dict —
    keys, insertion order, RM fallbacks, bound, fast-path accounting — is
    the scalar path's own.
    """
    spec = block.specs[index]
    params = (block.periods[index], block.wcets[index])
    return run_cell(block.context, spec,
                    simulate_fn=_batch_simulate_fn(params),
                    materialized=(block.tasksets[index],
                                  block.demands[index]))


def run_cell_batch(context: SweepContext,
                   spec: CellSpec) -> Dict[str, object]:
    """Batch-engine twin of :func:`~repro.analysis.sweep.run_cell`.

    The per-cell entry point used by worker processes (each worker cell
    is its own single-cell block; worker fan-out already parallelizes
    across the column).
    """
    return run_block_cell(build_column_block(context, [spec]), 0)


def iter_cells_batch(context: SweepContext, specs: Sequence[CellSpec],
                     ) -> Iterator[Tuple[int, Dict[str, object]]]:
    """Yield ``(index, outcome)`` for every spec, in submission order.

    The inline (single-process) batch path: consecutive specs sharing a
    task-set recipe become one :class:`ColumnBlock`, materialized once
    and executed cell by cell on the kernel.
    """
    position = 0
    for _, group in groupby(specs, key=_column_key):
        column = list(group)
        block = build_column_block(context, column)
        for offset in range(len(column)):
            yield position, run_block_cell(block, offset)
            position += 1


# ---------------------------------------------------------------------------
# the block engine (cross-cell vectorized lanes)
# ---------------------------------------------------------------------------

@dataclass
class BlockStats:
    """Eligibility and timing accounting for one block-engine run.

    Mirrors the sweep's fast-path counters: ``block_cells`` counts cells
    where at least one policy run was served straight from a vectorized
    lane; ``fallbacks`` maps a reason to the number of simulation calls
    routed down the per-cell fallback ladder instead.
    """

    block_cells: int = 0
    fallbacks: Dict[str, int] = field(default_factory=dict)
    #: Wall seconds spent materializing columns and planning lanes.
    build_seconds: float = 0.0
    #: Wall seconds spent inside the vectorized lane simulator.
    kernel_seconds: float = 0.0

    def fallback(self, reason: str) -> None:
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1

    def to_dict(self) -> Dict[str, object]:
        return {"block_cells": self.block_cells,
                "fallbacks": dict(self.fallbacks),
                "build_seconds": self.build_seconds,
                "kernel_seconds": self.kernel_seconds}

    def merge_dict(self, other: Dict[str, object]) -> None:
        self.block_cells += other.get("block_cells", 0)
        for reason, count in other.get("fallbacks", {}).items():
            self.fallbacks[reason] = self.fallbacks.get(reason, 0) + count
        self.build_seconds += other.get("build_seconds", 0.0)
        self.kernel_seconds += other.get("kernel_seconds", 0.0)


class _SetupView:
    """The slice of :class:`~repro.sim.engine.SchedulerView` a supported
    policy's ``setup`` reads (task set, machine, the zero start time)."""

    __slots__ = ("taskset", "machine", "time")

    def __init__(self, taskset: TaskSet, machine) -> None:
        self.taskset = taskset
        self.machine = machine
        self.time = 0.0


def _lane_traits(policy) -> Optional[Tuple[bool, bool]]:
    """``(rm_priority, dynamic)`` for a block-supported policy, ``None``
    outside the envelope.

    Exact-type checks: the lane simulator hard-codes each policy's
    frequency-selection rule, so a subclass with overridden hooks must
    not silently inherit its parent's lane.
    """
    kind = type(policy)
    if kind is NoDVS:
        return policy.scheduler == "rm", False
    if kind is StaticEDF:
        return False, False
    if kind is StaticRM:
        return True, False
    if kind is CycleConservingEDF:
        return False, True
    return None


@dataclass
class _PlannedLane:
    """One planned lane and (after the kernel pass) its result."""

    lane: LaneSpec
    fast: bool
    result: Optional[LaneResult] = None


class _LaneOutcome:
    """The ``SimResult`` slice the sweep cell actually consumes."""

    __slots__ = ("total_energy", "executed_cycles", "trace")

    def __init__(self, total_energy: float,
                 executed_cycles: Optional[float], trace) -> None:
        self.total_energy = total_energy
        self.executed_cycles = executed_cycles
        self.trace = trace


def _plan_cell(block: ColumnBlock, index: int,
               lane_specs: List[LaneSpec],
               planned_lanes: List[_PlannedLane]) -> Dict[tuple, object]:
    """Plan every policy run of one cell as a lane (or a rejection).

    Returns ``(policy_name, on_miss) -> _PlannedLane | reason-string``.
    Runs each policy's real ``setup`` so the lane starts from the exact
    state the scalar run would — a setup-time
    :class:`~repro.errors.SchedulabilityError` plans no lane (the
    fallback rerun raises the genuine error for ``run_cell`` to catch)
    and instead plans the full-speed-RM lane that ``run_cell`` retries
    with.
    """
    context = block.context
    taskset = block.tasksets[index]
    demand = block.demands[index]
    machine = context.machine
    plans: Dict[tuple, object] = {}

    values_by_task: List[Sequence[float]] = []
    demand_ok = type(demand) is TraceDemand
    if demand_ok:
        for task in taskset:
            values = demand.trace.get(task.name)
            if not values:
                # An uncovered task draws the fallback fraction *and*
                # bumps ``fallback_draws``; only the real model does that
                # bookkeeping, so the whole cell leaves the envelope.
                demand_ok = False
                break
            values_by_task.append(values)

    # Steady fast-path shape, mirrored from try_steady_fast_path's
    # eligibility checks (same pinned-resolution hyperperiod, same
    # horizon-ratio and periodicity tests) so the lane simulates exactly
    # the warmup window the extrapolation will scan.
    fast = False
    duration = context.duration
    if context.steady_fast_path and demand_ok:
        hyperperiod = block.hyperperiods[index]
        if hyperperiod is not None:
            simulated = 3 * hyperperiod  # (warmup=1 + 2) hyperperiods
            if not simulated * 2.0 > context.duration:
                ok, _ = demand_is_hyperperiodic(
                    demand, taskset, hyperperiod, context.duration)
                if ok:
                    fast = True
                    duration = simulated

    def add_lane(key: tuple, policy, rm_priority: bool, dynamic: bool,
                 drop_on_miss: bool, need_cycles: bool) -> None:
        if key in plans:
            return
        try:
            initial = policy.setup(_SetupView(taskset, machine))
        except SchedulabilityError:
            plans[key] = "schedulability"
            if not drop_on_miss:
                # run_cell's footnote-3 retry: full-speed RM, drop mode.
                add_lane(("RM", "drop"), NoDVS(scheduler="rm"),
                         rm_priority=True, dynamic=False,
                         drop_on_miss=True, need_cycles=False)
            return
        try:
            point_index = machine.index_of(
                machine.fastest if initial is None else initial)
        except MachineError:
            plans[key] = "unsupported-policy"
            return
        lane = LaneSpec(
            periods=block.periods[index],
            wcets=block.wcets[index],
            demand_values=values_by_task,
            demand_repeat=demand.repeat,
            duration=duration,
            initial_point=point_index,
            rm_priority=rm_priority,
            dynamic=dynamic,
            drop_on_miss=drop_on_miss,
            need_cycles=need_cycles and not fast,
            capture=fast)
        planned = _PlannedLane(lane=lane, fast=fast)
        plans[key] = planned
        lane_specs.append(lane)
        planned_lanes.append(planned)

    for name in context.policies:
        policy = make_policy(name)
        key = (getattr(policy, "name", name), "raise")
        if not demand_ok:
            plans[key] = "demand-shape"
            continue
        if name in context.residency_policies:
            plans[key] = "instrumented"
            continue
        traits = _lane_traits(policy)
        if traits is None:
            plans[key] = "unsupported-policy"
            continue
        rm_priority, dynamic = traits
        add_lane(key, policy, rm_priority, dynamic,
                 drop_on_miss=False,
                 need_cycles=(name == REFERENCE_POLICY))
    return plans


def _lane_timeline(machine, taskset: TaskSet, segments) -> SimTimeline:
    """Replay captured lane segments through a real columnar timeline.

    The merge/drop semantics of :meth:`SimTimeline.record` apply during
    the replay, so the steady fast path scans exactly the trace a
    per-cell run would have recorded.
    """
    timeline = SimTimeline()
    record = timeline.record
    points = machine.points
    names = [task.name for task in taskset]
    for start, end, task_idx, op_idx, cycles, energy, kind in segments:
        record(start, end,
               names[task_idx] if task_idx >= 0 else None,
               points[op_idx], cycles, energy,
               "run" if kind == SEG_RUN else "idle")
    return timeline


def _block_simulate_fn(block: ColumnBlock, index: int,
                       plans: Dict[tuple, object],
                       stats: BlockStats, flags: Dict[str, bool]):
    """A ``simulate``-shaped callable serving one cell from its lanes.

    Calls that match a clean planned lane return its precomputed figures
    (full-horizon totals, or the captured warmup trace for the steady
    fast path); everything else — rejected policies, abandoned lanes,
    instrumented or unexpected call shapes — is counted in ``stats`` and
    delegated to :func:`batch_simulate`, which reproduces the exact
    scalar behavior, exceptions included.
    """
    context = block.context
    params = (block.periods[index], block.wcets[index])
    taskset = block.tasksets[index]
    machine = context.machine

    def sim(ts, mach, policy, demand=None, duration=None,
            energy_model=None, on_miss="raise", instrument=None,
            record_trace=False, **kwargs):
        reason: Optional[str] = None
        planned = plans.get((getattr(policy, "name", None), on_miss))
        if instrument is not None:
            reason = "instrumented"
        elif kwargs:
            reason = "unsupported-call"
        elif isinstance(planned, str):
            reason = planned
        elif planned is None:
            reason = "unplanned-run"
        elif planned.result is None:
            reason = "kernel-unavailable"
        elif planned.result.abandoned is not None:
            reason = planned.result.abandoned
        elif (record_trace and planned.fast
                and duration == planned.lane.duration):
            flags["hit"] = True
            result = planned.result
            return _LaneOutcome(result.total_energy, result.executed_cycles,
                                _lane_timeline(machine, taskset,
                                               result.segments))
        elif (not record_trace and not planned.fast
                and duration == planned.lane.duration):
            flags["hit"] = True
            result = planned.result
            return _LaneOutcome(result.total_energy,
                                result.executed_cycles, None)
        else:
            # A fast-eligible cell whose verification failed re-simulates
            # the full horizon; a full lane cannot serve a trace request.
            reason = "call-shape"
        stats.fallback(reason)
        return batch_simulate(ts, mach, policy, params=params,
                              demand=demand, duration=duration,
                              energy_model=energy_model, on_miss=on_miss,
                              instrument=instrument,
                              record_trace=record_trace, **kwargs)

    return sim


def _run_planned_cell(block: ColumnBlock, index: int,
                      plans: Dict[tuple, object],
                      stats: BlockStats) -> Dict[str, object]:
    """Run one planned cell through the scalar ``run_cell`` driver."""
    flags = {"hit": False}
    outcome = run_cell(
        block.context, block.specs[index],
        simulate_fn=_block_simulate_fn(block, index, plans, stats, flags),
        materialized=(block.tasksets[index], block.demands[index]))
    if flags["hit"]:
        stats.block_cells += 1
    return outcome


def _plan_and_execute(cells: List[Tuple[ColumnBlock, int]],
                      stats: BlockStats) -> List[Dict[tuple, object]]:
    """Plan lanes for every cell, run one vectorized mega-pass over all
    of them, and attach the results (or a shared fallback reason)."""
    context = cells[0][0].context if cells else None
    lane_specs: List[LaneSpec] = []
    planned_lanes: List[_PlannedLane] = []
    started = perf_counter()
    plans = [_plan_cell(block, index, lane_specs, planned_lanes)
             for block, index in cells]
    stats.build_seconds += perf_counter() - started

    results = None
    if lane_specs and len(lane_specs) >= block_kernels.BLOCK_MIN_LANES:
        started = perf_counter()
        results = run_lanes(context.machine, context.energy_model(),
                            lane_specs)
        stats.kernel_seconds += perf_counter() - started
    if results is not None:
        for planned, result in zip(planned_lanes, results):
            planned.result = result
    elif planned_lanes:
        reason = ("no-numpy" if numpy_backend() is None
                  else "small-block" if lane_specs
                  and len(lane_specs) < block_kernels.BLOCK_MIN_LANES
                  else "kernel-unavailable")
        for cell_plans in plans:
            for key, planned in list(cell_plans.items()):
                if isinstance(planned, _PlannedLane):
                    cell_plans[key] = reason
    return plans


def run_block(block: ColumnBlock,
              stats: Optional[BlockStats] = None) -> List[Dict[str, object]]:
    """Run a whole :class:`ColumnBlock` at once on the lane simulator.

    The block-at-once sibling of :func:`run_block_cell`: one vectorized
    pass advances every policy run of every cell, then each cell's
    outcome dict is assembled by the scalar ``run_cell`` driver from the
    lane results (identical keys, ordering, fallback and fast-path
    accounting — bit-identical outcomes by construction).
    """
    stats = BlockStats() if stats is None else stats
    cells = [(block, index) for index in range(len(block))]
    plans = _plan_and_execute(cells, stats)
    return [_run_planned_cell(block, index, cell_plans, stats)
            for (_, index), cell_plans in zip(cells, plans)]


def run_cell_block(context: SweepContext,
                   spec: CellSpec) -> Dict[str, object]:
    """Block-engine twin of :func:`~repro.analysis.sweep.run_cell`.

    A single cell rarely clears :data:`~repro.sim.block_kernels.
    BLOCK_MIN_LANES`, so this usually lands on the per-cell kernel
    fallback — the entry point exists for engine-agnostic callers
    (:meth:`~repro.analysis.executor.CellExecutor.submit_cell`).
    """
    return run_block(build_column_block(context, [spec]))[0]


def iter_cells_block(context: SweepContext, specs: Sequence[CellSpec],
                     stats: Optional[BlockStats] = None,
                     ) -> Iterator[Tuple[int, Dict[str, object]]]:
    """Yield ``(index, outcome)`` for every spec, in submission order.

    The inline block path: all columns are materialized and planned up
    front, one mega-pass advances the lanes of the *entire* sweep
    simultaneously (the lane axis concatenates columns; lanes pad to the
    widest task count), and outcomes are then assembled per cell.
    """
    stats = BlockStats() if stats is None else stats
    cells: List[Tuple[ColumnBlock, int]] = []
    for _, group in groupby(specs, key=_column_key):
        column = list(group)
        block = build_column_block(context, column)
        cells.extend((block, index) for index in range(len(column)))
    plans = _plan_and_execute(cells, stats)
    for position, ((block, index), cell_plans) in \
            enumerate(zip(cells, plans)):
        yield position, _run_planned_cell(block, index, cell_plans, stats)
