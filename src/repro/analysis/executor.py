"""Throughput-gated fan-out layer for sweep cells.

This module owns *how* sweep cells get executed; :mod:`repro.analysis.sweep`
owns *what* a cell computes.  The design goals, in order:

1. **Barrier-free streaming.**  Every cell of a sweep — all
   ``(utilization, set_index)`` pairs — is submitted up front with
   ``submit`` and consumed with ``as_completed``, so a straggler at one
   utilization point never idles the pool the way the old
   per-point ``pool.map`` barrier did.
2. **Compact work units.**  Workers receive a seed-level
   :class:`~repro.analysis.sweep.CellSpec` and regenerate the task set and
   demand trace locally; the shared immutable sweep context (machine,
   policy list, duration, energy-model parameters) is installed **once per
   worker** through the pool initializer and addressed by digest
   thereafter.
3. **Shareable pools.**  One :class:`CellExecutor` can serve many sweeps
   (``run-all`` hoists all experiments onto a single pool).  Contexts
   registered before the pool spins up ride the initializer; contexts that
   appear later are shipped alongside their cells (a few hundred bytes)
   and memoized per worker process on first sight.
4. **Visible progress.**  :class:`SweepProgress` renders per-sweep
   ``done/total``, throughput, and ETA lines for long runs.

``resolve_workers`` implements ``--workers auto`` (CPU-count derived).
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import (FIRST_COMPLETED, Future,
                                ProcessPoolExecutor, ThreadPoolExecutor,
                                wait)
from typing import (Callable, Dict, Iterable, Iterator, Optional, Sequence,
                    Tuple, Union)

#: Accepted spellings of "pick the worker count for me".
AUTO_TOKENS = ("auto", "max", "0")


def effective_cpu_count() -> int:
    """CPUs this process can actually run on.

    :func:`os.cpu_count` reports the *machine's* CPUs, which oversells a
    containerized or affinity-pinned process: a pool sized to 4 on a
    1-CPU cgroup just context-switches four workers over one core
    (BENCH_engine.json once recorded a 0.82x parallel "speedup" exactly
    this way).  :func:`os.sched_getaffinity` reflects the real
    allowance where available (Linux); elsewhere fall back to the
    machine count.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def resolve_workers(workers: Union[int, str, None]) -> int:
    """Normalize a worker-count request to a concrete positive integer.

    ``"auto"`` (and ``0`` / ``None``) resolve to
    :func:`effective_cpu_count` — the CPUs the process is *allowed* to
    use, so an auto-sized pool never oversubscribes a container quota.
    Explicit integers pass through unclamped (a deliberate request to
    oversubscribe is honored); negative counts are rejected.
    """
    if workers is None:
        return effective_cpu_count()
    if isinstance(workers, str):
        token = workers.strip().lower()
        if token in AUTO_TOKENS:
            return effective_cpu_count()
        try:
            workers = int(token)
        except ValueError:
            raise ValueError(
                f"workers must be an integer or 'auto', got {workers!r}"
            ) from None
    if workers == 0:
        return effective_cpu_count()
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


# ---------------------------------------------------------------------------
# worker-process side
# ---------------------------------------------------------------------------

#: Per-worker-process registry of sweep contexts, keyed by digest.  Filled
#: by the pool initializer for contexts known at pool creation and lazily
#: for contexts that show up on a shared pool later.
_CONTEXTS: Dict[str, object] = {}


def _install_contexts(contexts: Dict[str, object]) -> None:
    """Pool initializer: install shared sweep contexts once per worker."""
    _CONTEXTS.update(contexts)


def _execute_cell(digest: str, context: Optional[object],
                  spec: object, encode: bool = False,
                  engine: str = "scalar") -> object:
    """Run one cell in a worker process.

    ``context`` is ``None`` when the digest was installed via the pool
    initializer; otherwise the first task carrying a new digest installs
    it for every later task in this process.  With ``encode`` the outcome
    crosses back to the driver as the compact columnar wire format of
    :mod:`repro.analysis.transport` instead of a pickled object graph —
    one small bytes object per cell.  ``engine`` picks the cell backend
    (``"scalar"`` = event engine, ``"batch"`` = array kernels; identical
    outcomes).
    """
    ctx = _CONTEXTS.get(digest)
    if ctx is None:
        if context is None:  # pragma: no cover - defensive
            raise RuntimeError(f"sweep context {digest} not installed")
        _CONTEXTS[digest] = ctx = context
    if engine == "batch":
        from repro.analysis.batch import run_cell_batch as run_cell
    elif engine == "block":
        from repro.analysis.batch import run_cell_block as run_cell
    else:
        from repro.analysis.sweep import run_cell
    outcome = run_cell(ctx, spec)
    if encode:
        from repro.analysis.transport import encode_cell
        return encode_cell(outcome)
    return outcome


def _execute_column(digest: str, context: Optional[object],
                    specs: Sequence) -> Tuple[list, Dict[str, object]]:
    """Run one whole sweep column on the block engine in a worker.

    The block engine's unit of useful work is the column, not the cell
    (lanes amortize across it), so the parallel path ships columns.
    Returns the encoded outcomes (spec order) plus the worker-local
    :class:`~repro.analysis.batch.BlockStats` as a plain dict — stats
    ride *beside* the outcome payloads, never inside them, because the
    cell wire format and the shared cell cache are engine-agnostic.
    """
    ctx = _CONTEXTS.get(digest)
    if ctx is None:
        if context is None:  # pragma: no cover - defensive
            raise RuntimeError(f"sweep context {digest} not installed")
        _CONTEXTS[digest] = ctx = context
    from repro.analysis.batch import BlockStats, iter_cells_block
    from repro.analysis.transport import encode_cell
    stats = BlockStats()
    encoded = [encode_cell(outcome) for _, outcome
               in iter_cells_block(ctx, specs, stats=stats)]
    return encoded, stats.to_dict()


# ---------------------------------------------------------------------------
# progress reporting
# ---------------------------------------------------------------------------

class SweepProgress:
    """Throughput/ETA line renderer for one sweep.

    Emits at most one line per ``min_interval`` seconds (plus a final
    summary) so paper-scale sweeps stay readable in a terminal or CI log.
    """

    def __init__(self, total: int, label: str = "sweep",
                 stream=None, min_interval: float = 1.0):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.done = 0
        self.cache_hits = 0
        self.started = time.perf_counter()
        self._last_emit = 0.0

    def advance(self, cache_hit: bool = False) -> None:
        self.done += 1
        if cache_hit:
            self.cache_hits += 1
        now = time.perf_counter()
        if self.done == self.total or \
                now - self._last_emit >= self.min_interval:
            self._last_emit = now
            self._emit(now)

    def line(self, now: Optional[float] = None) -> str:
        now = time.perf_counter() if now is None else now
        elapsed = max(now - self.started, 1e-9)
        rate = self.done / elapsed
        remaining = self.total - self.done
        if self.done and remaining:
            eta = f"ETA {remaining / rate:.0f}s"
        elif remaining:
            eta = "ETA ?"
        else:
            eta = f"done in {elapsed:.1f}s"
        pct = 100.0 * self.done / self.total if self.total else 100.0
        text = (f"[{self.label}] {self.done}/{self.total} cells "
                f"({pct:.0f}%) · {rate:.1f} cells/s · {eta}")
        if self.cache_hits:
            text += f" · {self.cache_hits} cached"
        return text

    def _emit(self, now: float) -> None:
        print(self.line(now), file=self.stream, flush=True)


# ---------------------------------------------------------------------------
# driver side
# ---------------------------------------------------------------------------

class CellExecutor:
    """A process pool that streams sweep cells barrier-free.

    Parameters
    ----------
    workers:
        Worker-count request (``resolve_workers`` semantics).  A resolved
        count of 1 never spawns processes: cells run inline in the caller,
        keeping the serial path free of multiprocessing overhead.

    The underlying :class:`~concurrent.futures.ProcessPoolExecutor` is
    created lazily on the first parallel run, so contexts registered
    before that moment (the dedicated per-sweep pool case, and the first
    sweep on a shared ``run-all`` pool) are installed once per worker via
    the pool initializer rather than shipped with every cell.
    """

    def __init__(self, workers: Union[int, str, None] = 1):
        self.workers = resolve_workers(workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._inline_thread: Optional[ThreadPoolExecutor] = None
        self._initializer_contexts: Dict[str, object] = {}
        self._shutdown = False
        #: Total bytes of encoded cell outcomes received from workers
        #: (0 on the inline path, which never serializes anything).
        self.ipc_bytes = 0

    # -- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "CellExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._inline_thread is not None:
            self._inline_thread.shutdown()
            self._inline_thread = None
        self._shutdown = True

    # -- context registration ----------------------------------------------
    def register(self, context) -> str:
        """Announce a sweep context; returns its digest.

        Contexts registered before the pool exists ride the initializer
        (installed once per worker at spawn); later ones are shipped with
        their cells and memoized worker-side.
        """
        digest = context.digest()
        if self._pool is None:
            self._initializer_contexts[digest] = context
        return digest

    # -- execution ----------------------------------------------------------
    def run_cells(self, context, specs: Sequence,
                  progress: Optional[SweepProgress] = None,
                  on_result: Optional[Callable[[int, object], None]] = None,
                  engine: str = "scalar",
                  stats=None,
                  ) -> Iterator[Tuple[int, object]]:
        """Yield ``(index, outcome)`` for every spec, unordered.

        All specs are submitted immediately (no per-utilization barrier);
        results stream back as workers finish.  With one worker the cells
        run inline, in submission order.  ``on_result`` fires for every
        outcome before it is yielded (used for cache writes).  ``engine``
        selects the cell backend: the inline batch path materializes one
        column block per run of same-recipe specs; the parallel batch
        path ships the engine choice with each cell (workers build
        single-cell blocks — the fan-out already parallelizes the
        column).  The block engine works column-at-once in both modes
        (the inline path fuses *all* columns into one lane pass; the
        parallel path ships whole columns to workers), and fills
        ``stats`` (a :class:`~repro.analysis.batch.BlockStats`) with its
        eligibility and timing accounting when one is passed.
        """
        if self._shutdown:
            raise RuntimeError("executor already shut down")
        digest = self.register(context)
        if self.workers <= 1 or len(specs) <= 1:
            if engine == "batch":
                from repro.analysis.batch import iter_cells_batch
                stream = iter_cells_batch(context, specs)
            elif engine == "block":
                from repro.analysis.batch import iter_cells_block
                stream = iter_cells_block(context, specs, stats=stats)
            else:
                from repro.analysis.sweep import run_cell
                stream = ((index, run_cell(context, spec))
                          for index, spec in enumerate(specs))
            for index, outcome in stream:
                if on_result is not None:
                    on_result(index, outcome)
                if progress is not None:
                    progress.advance()
                yield index, outcome
            return
        from repro.analysis.transport import decode_cell
        pool = self._ensure_pool()
        ship = None if digest in self._initializer_contexts else context
        if engine == "block":
            from itertools import groupby

            from repro.analysis.batch import _column_key
            pending = {}
            base = 0
            for _, group in groupby(specs, key=_column_key):
                column = list(group)
                pending[pool.submit(_execute_column, digest, ship,
                                    column)] = base
                base += len(column)
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    base = pending.pop(future)
                    encoded, stats_dict = future.result()
                    if stats is not None:
                        stats.merge_dict(stats_dict)
                    for offset, payload in enumerate(encoded):
                        self.ipc_bytes += len(payload)
                        outcome = decode_cell(payload)
                        index = base + offset
                        if on_result is not None:
                            on_result(index, outcome)
                        if progress is not None:
                            progress.advance()
                        yield index, outcome
            return
        pending = {
            pool.submit(_execute_cell, digest, ship, spec, True,
                        engine): index
            for index, spec in enumerate(specs)}
        while pending:
            finished, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                index = pending.pop(future)
                outcome = future.result()
                if isinstance(outcome, bytes):
                    self.ipc_bytes += len(outcome)
                    outcome = decode_cell(outcome)
                if on_result is not None:
                    on_result(index, outcome)
                if progress is not None:
                    progress.advance()
                yield index, outcome

    def submit_cell(self, context, spec, engine: str = "scalar") -> Future:
        """Schedule one cell; returns a :class:`~concurrent.futures.Future`
        resolving to its outcome dict.

        The service tier's entry point: :meth:`run_cells` is a generator
        that *drives* a whole sweep from the calling thread, which an
        asyncio event loop cannot afford.  ``submit_cell`` never blocks
        the caller — with ``workers <= 1`` the cell runs on a single
        lazily created worker thread (serial semantics, exactly one cell
        simulating at a time), otherwise it rides the process pool like
        any sweep cell, with the columnar wire decode and
        :attr:`ipc_bytes` accounting applied before the future resolves.
        """
        if self._shutdown:
            raise RuntimeError("executor already shut down")
        digest = self.register(context)
        if self.workers <= 1:
            if self._inline_thread is None:
                self._inline_thread = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="cell-inline")
            return self._inline_thread.submit(
                _execute_cell, digest, context, spec, False, engine)
        pool = self._ensure_pool()
        ship = None if digest in self._initializer_contexts else context
        inner = pool.submit(_execute_cell, digest, ship, spec, True, engine)
        outer: Future = Future()

        def _relay(done: Future) -> None:
            if done.cancelled():  # pragma: no cover - we never cancel
                outer.cancel()
                return
            exc = done.exception()
            if exc is not None:
                outer.set_exception(exc)
                return
            outcome = done.result()
            if isinstance(outcome, bytes):
                self.ipc_bytes += len(outcome)
                from repro.analysis.transport import decode_cell
                try:
                    outcome = decode_cell(outcome)
                except Exception as decode_exc:  # pragma: no cover - bug
                    outer.set_exception(decode_exc)
                    return
            outer.set_result(outcome)

        inner.add_done_callback(_relay)
        return outer

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_install_contexts,
                initargs=(dict(self._initializer_contexts),))
        return self._pool
