"""Exporters: CSV and Markdown renderings of sweep tables.

Both formats put the x grid in the first column and one column per series,
so the paper's figures can be re-plotted in any external tool.
"""

from __future__ import annotations

import csv
import io
from typing import Optional

from repro.analysis.series import SweepTable


def to_csv(table: SweepTable, path: Optional[str] = None) -> str:
    """Serialize a table to CSV; optionally also write it to ``path``.

    Returns the CSV text either way.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([table.x_label] + table.labels())
    for x, row in zip(table.xs, table.rows()):
        writer.writerow([_fmt(x)] + [_fmt(v) for v in row])
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text


def to_markdown(table: SweepTable, float_format: str = "{:.4f}") -> str:
    """Render a table as GitHub-flavoured Markdown."""
    header = [table.x_label] + table.labels()
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for x, row in zip(table.xs, table.rows()):
        cells = [f"{x:g}"] + [float_format.format(v) for v in row]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def trace_to_csv(trace, path: Optional[str] = None) -> str:
    """Serialize an :class:`~repro.sim.trace.ExecutionTrace` to CSV.

    One row per segment: start, end, kind, task, frequency, voltage,
    cycles, energy — enough to re-plot the paper's Figs. 2/3/5/7 in any
    external tool.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["start", "end", "kind", "task", "frequency",
                     "voltage", "cycles", "energy"])
    for segment in trace:
        writer.writerow([
            _fmt(segment.start), _fmt(segment.end), segment.kind,
            segment.task or "", _fmt(segment.point.frequency),
            _fmt(segment.point.voltage), _fmt(segment.cycles),
            _fmt(segment.energy)])
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text


def _fmt(value: float) -> str:
    return f"{value:.10g}"
