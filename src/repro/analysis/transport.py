"""Compact columnar transport for sweep cell outcomes.

Worker processes used to return cell outcomes as pickled dictionaries of
nested Python objects (label -> float, residency tables as dicts of dicts).
Pickle round-trips floats exactly but serializes *structure* expensively:
every dict, key string and float object is encoded per cell, and the
driver pays the same again on load.  This codec flattens an outcome into

``b"CTR1" | <I header length | JSON header | raw float64 columns``

where the JSON header carries only the *shape* (energy labels in order,
residency table sizes, integer counters) and every float travels in one
contiguous little/native-endian float64 buffer — the same
header-plus-columns layout as :meth:`repro.sim.timeline.SimTimeline.to_bytes`.
Raw IEEE-754 bytes round-trip bit-exactly by construction, so the
serial-vs-parallel bit-identity gates hold over the wire.

The cell cache (schema 3) stores the identical encoding on disk, with an
extra ``meta`` block in the header for the schema tag and content key —
one codec for IPC and persistence.
"""

from __future__ import annotations

import json
import struct
import sys
from array import array
from typing import Dict, Optional, Tuple

from repro.errors import ReproError

#: Leading magic of every encoded cell outcome.
MAGIC = b"CTR1"

_HEADER_LEN = struct.Struct("<I")


def is_encoded_cell(data: object) -> bool:
    """Whether ``data`` is a codec payload (bytes with the right magic)."""
    return isinstance(data, (bytes, bytearray)) and \
        bytes(data[:4]) == MAGIC


def encode_cell(outcome: Dict[str, object],
                meta: Optional[Dict[str, object]] = None) -> bytes:
    """Flatten one cell outcome into the columnar wire format.

    ``outcome`` maps policy labels to float energies plus the private
    ``_rm_fallbacks`` / ``_residency`` / ``_fast_path`` blocks
    :func:`repro.analysis.sweep.run_cell` produces.  ``meta`` is an
    optional JSON-safe dict stored alongside (the cell cache uses it for
    its schema tag and key); it never affects the outcome columns.
    """
    labels = [label for label in outcome if not label.startswith("_")]
    columns = array("d", (outcome[label] for label in labels))
    header: Dict[str, object] = {
        "labels": labels,
        "rm_fallbacks": int(outcome.get("_rm_fallbacks", 0)),
        "byteorder": sys.byteorder,
    }
    residency = outcome.get("_residency")
    if residency:
        shape = []
        for policy, table in residency.items():
            pairs = sorted(table.items())
            shape.append([policy, len(pairs)])
            for frequency, fraction in pairs:
                columns.append(frequency)
                columns.append(fraction)
        header["residency"] = shape
    fast_path = outcome.get("_fast_path")
    if fast_path is not None:
        header["fast_path"] = {
            "used": int(fast_path.get("used", 0)),
            "fallbacks": {reason: int(count) for reason, count in
                          fast_path.get("fallbacks", {}).items()},
        }
    if meta is not None:
        header["meta"] = meta
    head = json.dumps(header, separators=(",", ":"),
                      allow_nan=False).encode("utf-8")
    return b"".join((MAGIC, _HEADER_LEN.pack(len(head)), head,
                     columns.tobytes()))


def decode_cell(data: bytes, with_meta: bool = False
                ) -> "Dict[str, object] | Tuple[Dict[str, object], dict]":
    """Inverse of :func:`encode_cell`.

    Returns the outcome dict, or ``(outcome, meta)`` when ``with_meta``
    (``meta`` is ``{}`` if none was stored).  Raises
    :class:`~repro.errors.ReproError` on a malformed payload.
    """
    if not is_encoded_cell(data):
        raise ReproError("not an encoded cell outcome (bad magic)")
    data = bytes(data)
    try:
        (head_len,) = _HEADER_LEN.unpack_from(data, 4)
        head_end = 8 + head_len
        header = json.loads(data[8:head_end].decode("utf-8"))
        columns = array("d")
        columns.frombytes(data[head_end:])
        if header.get("byteorder", sys.byteorder) != sys.byteorder:
            columns.byteswap()
        labels = header["labels"]
        outcome: Dict[str, object] = {
            "_rm_fallbacks": int(header["rm_fallbacks"])}
        cursor = len(labels)
        if len(columns) < cursor:
            raise ValueError("energy column shorter than label list")
        for label, energy in zip(labels, columns):
            outcome[label] = energy
        shape = header.get("residency")
        if shape:
            residency: Dict[str, Dict[float, float]] = {}
            for policy, n_pairs in shape:
                table: Dict[float, float] = {}
                for _ in range(int(n_pairs)):
                    table[columns[cursor]] = columns[cursor + 1]
                    cursor += 2
                residency[policy] = table
            outcome["_residency"] = residency
        fast_path = header.get("fast_path")
        if fast_path is not None:
            outcome["_fast_path"] = {
                "used": int(fast_path["used"]),
                "fallbacks": {reason: int(count) for reason, count in
                              fast_path["fallbacks"].items()},
            }
    except (KeyError, ValueError, IndexError, TypeError,
            UnicodeDecodeError, struct.error) as exc:
        raise ReproError(f"malformed cell payload: {exc}") from exc
    if with_meta:
        return outcome, dict(header.get("meta") or {})
    return outcome
