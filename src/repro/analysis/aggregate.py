"""Small statistics helpers used by the sweep machinery.

Kept dependency-free (no numpy) so the core library stays pure-Python; the
amounts of data involved are tiny.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.analysis.series import Series


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input (a silent 0 would corrupt
    averaged sweeps)."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Unbiased sample standard deviation (0 for fewer than two values)."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


def normalize_series(series: Series, reference: Series,
                     label: str = "") -> Series:
    """Pointwise normalize one curve by a reference curve.

    The paper normalizes energy to the unmodified-EDF curve ("Energy
    (normalized)" axes of Figs. 10-13).
    """
    return series.divided_by(reference, label=label or series.label)


def ratio_map(values: Dict[str, float], reference_key: str
              ) -> Dict[str, float]:
    """Normalize a dict of scalars by one entry (e.g. Table 4)."""
    reference = values[reference_key]
    if reference == 0:
        raise ZeroDivisionError(
            f"reference entry {reference_key!r} is zero")
    return {k: v / reference for k, v in values.items()}
