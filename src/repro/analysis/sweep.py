"""Utilization sweeps: the experiment shape behind Figs. 9-13 and 16-17.

For each target worst-case utilization, generate ``n_sets`` random task
sets (paper methodology, Sec. 3.1), simulate every policy on each set with
identical per-invocation demands, and average raw and EDF-normalized energy
across the sets.  The theoretical lower bound is computed per set from the
cycles the plain-EDF reference actually executed.

Demands are *materialized* (pre-drawn into a trace) per task set so every
policy sees byte-identical invocation demands — otherwise random demand
models could de-synchronize across policies and corrupt the comparison.

Execution model
---------------
A sweep is a flat bag of independent *cells* — one per
``(utilization, set_index)`` pair.  Each cell is described by a compact,
seed-level :class:`CellSpec`; workers regenerate the task set and demand
trace locally from the seeds instead of unpickling megabytes of
materialized traces.  Cells stream through a barrier-free
:class:`~repro.analysis.executor.CellExecutor` (``submit`` +
``as_completed`` across the *whole* sweep, not per utilization point), and
outcomes can be cached on disk content-addressed by their full description
(:mod:`repro.analysis.cellcache`), so interrupted runs resume and repeated
figures that share cells skip re-simulation entirely.

Cell identity is pinned to the historical seed derivation: one
``TaskSetGenerator`` per utilization point draws ``n_sets`` task sets
*sequentially*, so a worker reproducing set ``k`` fast-forwards the
generator ``k`` draws (cheap — drawing a task set is microseconds against
a multi-second simulation; a per-process generator memo makes consecutive
cells O(1)).  This keeps every curve bit-identical across ``workers=1``,
``workers=N``, cold cache, and warm cache.

RM-based policies occasionally meet task sets that are EDF- but not
RM-schedulable (the paper's footnote 3).  Those cells fall back to
full-speed RM with misses tolerated, and the fallback count is reported in
the result, so the curves stay defined across the whole utilization range.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.aggregate import mean, sample_std
from repro.analysis.cellcache import cell_key, open_cache
from repro.analysis.executor import CellExecutor, SweepProgress
from repro.analysis.series import Series, SweepTable
from repro.core import PAPER_POLICIES, make_policy
from repro.core.no_dvs import NoDVS
from repro.errors import ReproError, SchedulabilityError
from repro.hw.energy import EnergyModel
from repro.hw.machine import Machine, machine0
from repro.model.demand import DemandModel, TraceDemand, demand_from_spec
from repro.model.generator import DEFAULT_BANDS, PeriodBand, TaskSetGenerator
from repro.model.task import TaskSet
from repro.obs.metrics import MetricsCollector
from repro.sim.bound import minimum_energy_for_cycles
from repro.sim.engine import simulate
from repro.sim.steady import try_steady_fast_path

#: Label used for the theoretical lower bound pseudo-policy.
BOUND_LABEL = "bound"

#: The reference policy every sweep runs for normalization.
REFERENCE_POLICY = "EDF"

DEFAULT_UTILIZATIONS: Tuple[float, ...] = tuple(
    round(0.1 * k, 1) for k in range(1, 11))

#: Matches the engine's horizon tolerance: releases within this of the
#: duration are suppressed (see ``repro.sim.engine`` module docs).
_HORIZON_EPS = 1e-9


def materialize_demand(model: DemandModel, taskset: TaskSet,
                       duration: float) -> TraceDemand:
    """Pre-draw every invocation's demand over ``[0, duration)``.

    Returns a :class:`TraceDemand` that replays the draws identically for
    every policy simulated on this task set.

    The draw count per task covers every release the engine can fire under
    the pinned duration-coincident convention (a release landing within
    ``_EPS`` of the horizon is suppressed): ``ceil(duration/period)``
    entries suffice because release ``k = ceil(d/p)`` satisfies
    ``k*p >= d`` in exact arithmetic.  A defensive top-up guards the one
    way that argument can fail — ``k*p`` rounding *below* ``d - _EPS`` in
    floating point — so a worker-side regeneration can never run out of
    trace entries and silently fall back to worst-case demand.
    """
    trace: Dict[str, List[float]] = {}
    for task in taskset:
        count = max(1, math.ceil(duration / task.period))
        while count * task.period < duration - _HORIZON_EPS:
            count += 1  # pragma: no cover - float pathology guard
        trace[task.name] = [model.demand(task, k) for k in range(count)]
    return TraceDemand(trace, repeat=False, fallback_fraction=1.0)


@dataclass(frozen=True)
class SweepConfig:
    """Parameters of one utilization sweep.

    Defaults follow the paper: 8 tasks, machine 0, perfect idle, worst-case
    demand, utilizations 0.1 ... 1.0.  ``n_sets`` defaults to a laptop-scale
    20 (the paper averages "hundreds"; raise it for publication-grade
    smoothness).

    ``workers`` accepts an integer or ``"auto"`` (CPU-count derived).
    ``cache_dir`` points at a content-addressed cell-result cache
    (:mod:`repro.analysis.cellcache`); ``None`` disables caching.
    """

    policies: Tuple[str, ...] = PAPER_POLICIES
    utilizations: Tuple[float, ...] = DEFAULT_UTILIZATIONS
    n_tasks: int = 8
    n_sets: int = 20
    machine: Machine = field(default_factory=machine0)
    demand: Union[str, float, DemandModel] = "worst"
    idle_level: float = 0.0
    duration: float = 2000.0
    seed: int = 1
    workers: Union[int, str] = 1
    cycle_energy_scale: float = 1.0
    #: Policies to additionally instrument with a
    #: :class:`~repro.obs.MetricsCollector`; their mean per-frequency
    #: residency fractions land in :attr:`SweepResult.residency`.
    residency_policies: Tuple[str, ...] = ()
    cache_dir: Optional[str] = None
    #: Opt-in hyperperiod short-circuit (``--steady-fast-path``): cells
    #: whose task set has a finite hyperperiod and whose demand trace
    #: verifies as hyperperiod-periodic simulate warmup + two hyperperiods
    #: and extrapolate instead of simulating the whole horizon; every
    #: failed verification falls back to full simulation (reported in
    #: :attr:`SweepResult.fast_path_fallbacks`).
    steady_fast_path: bool = False
    #: Custom period bands ``((low, high), ...)`` for the task-set
    #: generator; ``None`` keeps the paper's 1-10/10-100/100-1000 ms
    #: defaults.  Narrow or degenerate bands produce commensurable
    #: periods, making cells eligible for the steady fast path.
    period_bands: Optional[Tuple[Tuple[float, float], ...]] = None
    #: Cell execution backend: ``"scalar"`` (the discrete-event engine,
    #: one cell at a time — the default), ``"batch"`` (column-blocked
    #: :mod:`repro.analysis.batch` kernels), or ``"block"`` (cross-cell
    #: vectorized lanes, :mod:`repro.sim.block_kernels`) — all
    #: bit-identical.  The engine choice is *not* part of the cell
    #: identity — the engines share one cache namespace because their
    #: outcomes are indistinguishable.
    engine: str = "scalar"
    #: Hyperperiod detection grid for the steady fast path, pinned once
    #: per sweep so cache keys, fast-path eligibility, and batch-column
    #: grouping all agree on each cell's hyperperiod.  Non-default values
    #: enter the cell fingerprint.
    steady_resolution: float = 1e-6

    def energy_model(self) -> EnergyModel:
        return EnergyModel(idle_level=self.idle_level,
                           cycle_energy_scale=self.cycle_energy_scale)


@dataclass
class SweepResult:
    """Aggregated output of :func:`utilization_sweep`."""

    config: SweepConfig
    raw: SweepTable
    normalized: SweepTable
    std: Dict[str, Tuple[float, ...]]
    rm_fallbacks: int
    #: policy -> residency table (one series per operating-point frequency,
    #: mean fraction of the run spent there).  Filled only for
    #: :attr:`SweepConfig.residency_policies`.
    residency: Dict[str, SweepTable] = field(default_factory=dict)
    #: Cells answered straight from the on-disk cell cache.
    cache_hits: int = 0
    #: Cells actually simulated in this invocation.
    simulated_cells: int = 0
    #: Resolved worker count the sweep ran with.
    workers_used: int = 1
    #: Cells re-leased after a lost/expired distributed lease (always 0
    #: on in-process executors; see :mod:`repro.dist`).
    retries: int = 0
    #: Cells where at least one policy run took the hyperperiod
    #: short-circuit (only populated when
    #: :attr:`SweepConfig.steady_fast_path` is on).
    fast_path_cells: int = 0
    #: Fallback reason -> count of policy runs that had to simulate the
    #: full horizon despite the fast path being enabled ("no-hyperperiod",
    #: "short-horizon", "aperiodic-demand", "not-periodic",
    #: "instrumented").
    fast_path_fallbacks: Dict[str, int] = field(default_factory=dict)
    #: Cells where at least one policy run was served straight from a
    #: vectorized lane (``engine="block"`` only) — the block-engine
    #: mirror of :attr:`fast_path_cells`.
    block_cells: int = 0
    #: Fallback reason -> count of simulation calls the block engine
    #: routed down the per-cell ladder instead of serving from a lane
    #: ("unsupported-policy", "demand-shape", "deadline-miss",
    #: "schedulability", "no-numpy", "small-block", ...).
    block_fallbacks: Dict[str, int] = field(default_factory=dict)
    #: Wall seconds per pipeline stage: always ``"aggregate"``; block
    #: runs add ``"block-build"`` (column materialization + lane
    #: planning) and ``"block-kernel"`` (the vectorized lane passes).
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    def series(self, label: str, normalized: bool = True) -> Series:
        table = self.normalized if normalized else self.raw
        return table.get(label)

    def std_table(self) -> SweepTable:
        """Per-point sample standard deviations of the *raw* energies.

        Exposes the across-task-set spread the mean curves average away;
        exported alongside the means for error bars in external plots.
        """
        table = SweepTable(
            title=self.raw.title + " — sample std across task sets",
            x_label=self.raw.x_label,
            y_label="energy std")
        xs = self.raw.xs
        for label in self.raw.labels():
            table.add(Series(label, xs, self.std[label]))
        return table


# ---------------------------------------------------------------------------
# cell descriptions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepContext:
    """Everything a cell needs that is *shared* across the whole sweep.

    Shipped to worker processes once (via the pool initializer or, on a
    shared pool, memoized on first sight) and addressed by content digest
    thereafter — cells themselves only carry seeds.
    """

    machine: Machine
    policies: Tuple[str, ...]
    duration: float
    idle_level: float
    cycle_energy_scale: float
    residency_policies: Tuple[str, ...] = ()
    steady_fast_path: bool = False
    #: Pinned hyperperiod detection grid (see
    #: :attr:`SweepConfig.steady_resolution`).
    steady_resolution: float = 1e-6

    def description(self) -> Dict[str, object]:
        """JSON-safe canonical description (cache-key material)."""
        description: Dict[str, object] = {
            "machine": [[p.frequency, p.voltage]
                        for p in self.machine.points],
            "policies": list(self.policies),
            "duration": self.duration,
            "idle_level": self.idle_level,
            "cycle_energy_scale": self.cycle_energy_scale,
            "residency_policies": list(self.residency_policies),
            "steady_fast_path": self.steady_fast_path,
        }
        if self.steady_resolution != 1e-6:
            # Only non-default resolutions enter the key, so every
            # pre-existing cell key is unchanged (the bands idiom).
            description["steady_resolution"] = self.steady_resolution
        return description

    def digest(self) -> str:
        return cell_key(self.description())

    def energy_model(self) -> EnergyModel:
        return EnergyModel(idle_level=self.idle_level,
                           cycle_energy_scale=self.cycle_energy_scale)


@dataclass(frozen=True)
class CellSpec:
    """One (task set, all policies) work unit, at seed level.

    ``gen_seed`` seeds the per-utilization-point :class:`TaskSetGenerator`;
    ``set_index`` says how many sets to fast-forward past (sets are drawn
    sequentially from one generator — the historical derivation, kept so
    curves stay bit-identical to serial in-process sweeps).  ``demand`` is
    the compact spec (``"worst"``, ``"uniform"``, or a fraction); only
    when the sweep was configured with a live :class:`DemandModel`
    *instance* does ``trace`` carry a parent-materialized trace instead
    (such models may be stateful, so worker-side regeneration could not
    reproduce the sequential draw order).
    """

    utilization: float
    set_index: int
    n_tasks: int
    gen_seed: int
    demand_seed: int
    demand: Union[str, float, None]
    trace: Optional[TraceDemand] = None
    #: Custom generator period bands (affects the drawn task set, so it is
    #: part of the cell identity); ``None`` = paper defaults.
    bands: Optional[Tuple[Tuple[float, float], ...]] = None

    @property
    def cacheable(self) -> bool:
        """Only seed-described cells are content-addressable."""
        return self.trace is None

    def description(self) -> Dict[str, object]:
        """JSON-safe cell-local description (cache-key material)."""
        description: Dict[str, object] = {
            "utilization": self.utilization,
            "set_index": self.set_index,
            "n_tasks": self.n_tasks,
            "gen_seed": self.gen_seed,
            "demand_seed": self.demand_seed,
            "demand": self.demand,
        }
        if self.bands is not None:
            # Only non-default bands enter the key, so every pre-existing
            # default-band cell key is unchanged.
            description["bands"] = [list(band) for band in self.bands]
        return description


def cell_cache_key(context: SweepContext, spec: CellSpec) -> str:
    """Content hash addressing one cell's outcome on disk."""
    description = context.description()
    description["cell"] = spec.description()
    return cell_key(description)


# ---------------------------------------------------------------------------
# the sweep driver
# ---------------------------------------------------------------------------

def utilization_sweep(config: SweepConfig,
                      executor: Optional[CellExecutor] = None,
                      progress: Union[bool, SweepProgress, None] = None,
                      ) -> SweepResult:
    """Run the sweep described by ``config``.

    ``executor`` lets callers (notably ``run-all``) share one worker pool
    across many sweeps; when omitted, the sweep manages its own pool sized
    by ``config.workers``.  ``progress`` enables per-sweep throughput/ETA
    lines on stderr (or pass a :class:`SweepProgress` to customize).
    """
    labels = _result_labels(config)
    # Lazy import: repro.analysis.batch imports this module at its top.
    from repro.analysis.batch import ENGINES, BlockStats
    if config.engine not in ENGINES:
        raise ReproError(
            f"unknown sweep engine {config.engine!r}; "
            f"expected one of {', '.join(repr(e) for e in ENGINES)}")
    block_stats = BlockStats() if config.engine == "block" else None
    context = SweepContext(
        machine=config.machine,
        policies=tuple(labels[:-1]),
        duration=config.duration,
        idle_level=config.idle_level,
        cycle_energy_scale=config.cycle_energy_scale,
        residency_policies=tuple(config.residency_policies),
        steady_fast_path=config.steady_fast_path,
        steady_resolution=config.steady_resolution)
    specs = _build_cell_specs(config)
    cache = open_cache(config.cache_dir)

    outcomes: List[Optional[Dict[str, object]]] = [None] * len(specs)
    keys: List[Optional[str]] = [None] * len(specs)
    pending: List[int] = []
    cache_hits = 0
    for index, spec in enumerate(specs):
        if cache is not None and spec.cacheable:
            keys[index] = cell_cache_key(context, spec)
            cached = cache.get(keys[index])
            if cached is not None:
                outcomes[index] = cached
                cache_hits += 1
                continue
        pending.append(index)

    if isinstance(progress, SweepProgress):
        meter: Optional[SweepProgress] = progress
    elif progress:
        meter = SweepProgress(total=len(specs),
                              label=f"sweep seed={config.seed}")
    else:
        meter = None
    if meter is not None:
        for _ in range(cache_hits):
            meter.advance(cache_hit=True)

    own_executor = executor is None
    runner = executor if executor is not None \
        else CellExecutor(config.workers)
    # Shared executors (run-all, the service) accumulate lease retries
    # across sweeps; snapshot so this result reports its own delta.
    retries_before = getattr(runner, "retries", 0)
    try:
        pending_specs = [specs[index] for index in pending]

        def store(sub_index: int, outcome: Dict[str, object]) -> None:
            index = pending[sub_index]
            outcomes[index] = outcome
            if cache is not None and keys[index] is not None:
                cache.put(keys[index], outcome)

        # Drain the barrier-free stream; `store` fills `outcomes`.
        for _ in runner.run_cells(context, pending_specs, progress=meter,
                                  on_result=store, engine=config.engine,
                                  stats=block_stats):
            pass
        workers_used = runner.workers
    finally:
        if own_executor:
            runner.shutdown()

    started = perf_counter()
    result = _aggregate(config, labels, outcomes)
    result.stage_seconds["aggregate"] = perf_counter() - started
    result.cache_hits = cache_hits
    result.simulated_cells = len(pending)
    result.workers_used = workers_used
    result.retries = getattr(runner, "retries", 0) - retries_before
    if block_stats is not None:
        result.block_cells = block_stats.block_cells
        result.block_fallbacks = dict(block_stats.fallbacks)
        result.stage_seconds["block-build"] = block_stats.build_seconds
        result.stage_seconds["block-kernel"] = block_stats.kernel_seconds
    return result


# ---------------------------------------------------------------------------
# cell construction (driver side)
# ---------------------------------------------------------------------------

def sweep_context(config: SweepConfig) -> SweepContext:
    """The shared :class:`SweepContext` a sweep run derives from its
    config — exposed so independent consumers (the catalog audit engine)
    reconstruct *exactly* the context :func:`utilization_sweep` uses,
    including the EDF-reference label insertion."""
    labels = _result_labels(config)
    return SweepContext(
        machine=config.machine,
        policies=tuple(labels[:-1]),
        duration=config.duration,
        idle_level=config.idle_level,
        cycle_energy_scale=config.cycle_energy_scale,
        residency_policies=tuple(config.residency_policies),
        steady_fast_path=config.steady_fast_path,
        steady_resolution=config.steady_resolution)


def sweep_cell_specs(config: SweepConfig) -> List[CellSpec]:
    """Every cell of the sweep ``config`` describes, in result order.

    Public alias of the internal builder so the audit layer can replay
    the same cells the sweep ran, from the same seed derivation.
    """
    return _build_cell_specs(config)


def sweep_result_labels(config: SweepConfig) -> List[str]:
    """Result-order labels for ``config``: configured policies with the
    EDF reference inserted, plus the lower-bound curve — exactly the
    labels :func:`utilization_sweep` aggregates."""
    return _result_labels(config)


def aggregate_outcomes(config: SweepConfig,
                       outcomes: List[Dict[str, object]]) -> SweepResult:
    """Fold a complete, ordered outcome list into a :class:`SweepResult`.

    ``outcomes`` must be in :func:`sweep_cell_specs` order (one entry per
    cell, ``(u_index, set_index)``-major).  This is the exact aggregation
    :func:`utilization_sweep` applies to its own cells, exposed so
    out-of-process executors (the service tier) produce bit-identical
    tables from the same outcome dicts by construction.
    """
    return _aggregate(config, _result_labels(config), outcomes)


def _build_cell_specs(config: SweepConfig) -> List[CellSpec]:
    """All cells of the sweep, ordered ``(u_index, set_index)``.

    Reproduces the historical seed derivation exactly: per utilization
    point, one root RNG yields the generator seed and then one demand seed
    per set, interleaved with the (RNG-independent) sequential task-set
    draws.
    """
    demand_is_model = isinstance(config.demand, DemandModel)
    bands = config.period_bands
    specs: List[CellSpec] = []
    for u_index, utilization in enumerate(config.utilizations):
        seed_root = random.Random(f"{config.seed}/{u_index}")
        gen_seed = seed_root.randrange(2 ** 63)
        generator = TaskSetGenerator(
            n_tasks=config.n_tasks, utilization=utilization,
            bands=_period_bands(bands), seed=gen_seed) \
            if demand_is_model else None
        for set_index in range(config.n_sets):
            demand_seed = seed_root.randrange(2 ** 63)
            trace = None
            if demand_is_model:
                # Stateful model instances must be drawn sequentially in
                # the parent; ship the materialized trace for this cell.
                taskset = generator.generate()
                trace = materialize_demand(config.demand, taskset,
                                           config.duration)
            specs.append(CellSpec(
                utilization=utilization,
                set_index=set_index,
                n_tasks=config.n_tasks,
                gen_seed=gen_seed,
                demand_seed=demand_seed,
                demand=None if demand_is_model else config.demand,
                trace=trace,
                bands=bands))
    return specs


def _period_bands(bands: Optional[Tuple[Tuple[float, float], ...]]):
    """Resolve a config/spec band tuple to generator bands (or default)."""
    if bands is None:
        return DEFAULT_BANDS
    return tuple(PeriodBand(low, high) for low, high in bands)


# ---------------------------------------------------------------------------
# cell execution (worker side)
# ---------------------------------------------------------------------------

#: Per-process task-set generator memo: (gen_seed, n_tasks, utilization,
#: bands) -> (generator, sets already drawn).  Streamed cells arrive in
#: roughly increasing set_index per utilization point, so regeneration is
#: amortized O(1) per cell.
_GENERATOR_MEMO: Dict[tuple, Tuple[TaskSetGenerator, int]] = {}

_GENERATOR_MEMO_LIMIT = 256


def _taskset_for(spec: CellSpec) -> TaskSet:
    """Regenerate cell ``spec``'s task set from its seeds."""
    memo_key = (spec.gen_seed, spec.n_tasks, spec.utilization, spec.bands)
    generator, produced = _GENERATOR_MEMO.get(memo_key, (None, 0))
    if generator is None or produced > spec.set_index:
        generator = TaskSetGenerator(
            n_tasks=spec.n_tasks, utilization=spec.utilization,
            bands=_period_bands(spec.bands), seed=spec.gen_seed)
        produced = 0
    taskset = None
    while produced <= spec.set_index:
        taskset = generator.generate()
        produced += 1
    if len(_GENERATOR_MEMO) >= _GENERATOR_MEMO_LIMIT:
        _GENERATOR_MEMO.clear()
    _GENERATOR_MEMO[memo_key] = (generator, produced)
    return taskset


def materialize_cell(context: SweepContext,
                     spec: CellSpec) -> Tuple[TaskSet, TraceDemand]:
    """Rebuild a cell's task set and demand trace from its description."""
    taskset = _taskset_for(spec)
    if spec.trace is not None:
        return taskset, spec.trace
    model = demand_from_spec(spec.demand, seed=spec.demand_seed)
    return taskset, materialize_demand(model, taskset, context.duration)


def run_cell(context: SweepContext, spec: CellSpec,
             simulate_fn=None,
             materialized: Optional[Tuple[TaskSet, TraceDemand]] = None,
             ) -> Dict[str, object]:
    """Simulate every policy on one cell; returns label -> energy
    (plus ``_rm_fallbacks``, ``_fast_path`` when the short-circuit is on,
    and, when requested, ``_residency``).

    ``simulate_fn`` swaps the simulation entry point (the batch engine
    passes its kernel dispatcher; must be drop-in compatible with
    :func:`repro.sim.engine.simulate`) and is threaded through the
    hyperperiod short-circuit too, so fast-path warmup windows run on the
    same backend.  ``materialized`` supplies a pre-built
    ``(taskset, demand)`` pair — the batch path materializes whole
    columns at once — and must match what :func:`materialize_cell` would
    rebuild, since cache keys are derived from the spec alone.
    """
    taskset, demand = materialized if materialized is not None \
        else materialize_cell(context, spec)
    sim = simulate if simulate_fn is None else simulate_fn
    energy_model = context.energy_model()
    out: Dict[str, object] = {"_rm_fallbacks": 0}
    residency: Dict[str, Dict[float, float]] = {}
    reference_cycles: Optional[float] = None
    fast_used = 0
    fast_fallbacks: Dict[str, int] = {}

    def run_one(policy, on_miss, collector):
        """(total_energy, executed_cycles) via the hyperperiod
        short-circuit when it verifies, full simulation otherwise."""
        nonlocal fast_used
        if context.steady_fast_path:
            if collector is not None:
                # Residency instrumentation observes the whole run; an
                # extrapolated run has no full-horizon trace to observe.
                fast_fallbacks["instrumented"] = \
                    fast_fallbacks.get("instrumented", 0) + 1
            else:
                fast, reason = try_steady_fast_path(
                    taskset, context.machine, policy, demand=demand,
                    duration=context.duration, energy_model=energy_model,
                    on_miss=on_miss,
                    resolution=context.steady_resolution,
                    simulate_fn=simulate_fn)
                if fast is not None:
                    fast_used += 1
                    return fast.total_energy, fast.executed_cycles
                fast_fallbacks[reason] = fast_fallbacks.get(reason, 0) + 1
        result = sim(taskset, context.machine, policy,
                     demand=demand, duration=context.duration,
                     energy_model=energy_model, on_miss=on_miss,
                     instrument=collector)
        return result.total_energy, result.executed_cycles

    for name in context.policies:
        collector = None
        if name in context.residency_policies:
            collector = MetricsCollector()
        try:
            energy, cycles = run_one(make_policy(name), "raise", collector)
        except SchedulabilityError:
            # EDF-schedulable but not RM-schedulable (paper footnote 3):
            # fall back to full-speed RM and tolerate the misses.
            energy, cycles = run_one(NoDVS(scheduler="rm"), "drop",
                                     collector)
            out["_rm_fallbacks"] += 1
        if collector is not None:
            metrics = collector.metrics
            span = metrics.span or 1.0
            residency[name] = {f: seconds / span for f, seconds in
                               metrics.residency.items()}
        out[name] = energy
        if name == REFERENCE_POLICY:
            reference_cycles = cycles
    if reference_cycles is None:  # pragma: no cover - labels always add EDF
        raise ReproError("sweep cell ran without the EDF reference")
    if demand.fallback_draws:
        # The materialized trace must cover every fired release; a
        # fallback draw means regeneration and engine disagree about the
        # horizon — corrupt data, never average it into a curve.
        raise ReproError(
            f"materialized demand trace underflowed ({demand.fallback_draws}"
            f" fallback draws) for cell u={spec.utilization} "
            f"set={spec.set_index}")
    out[BOUND_LABEL] = context.cycle_energy_scale * minimum_energy_for_cycles(
        context.machine, reference_cycles, context.duration)
    if residency:
        out["_residency"] = residency
    if context.steady_fast_path:
        out["_fast_path"] = {"used": fast_used, "fallbacks": fast_fallbacks}
    return out


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------

def _aggregate(config: SweepConfig, labels: List[str],
               outcomes: List[Dict[str, object]]) -> SweepResult:
    """Fold per-cell outcomes (ordered by (u_index, set_index)) into the
    mean/std/residency tables."""
    per_label: Dict[str, List[List[float]]] = {label: [] for label in labels}
    frequencies = tuple(sorted(p.frequency for p in config.machine.points))
    res_acc: Dict[str, Dict[float, List[List[float]]]] = {
        policy: {f: [] for f in frequencies}
        for policy in config.residency_policies}
    rm_fallbacks = 0
    fast_path_cells = 0
    fast_path_fallbacks: Dict[str, int] = {}
    for u_index in range(len(config.utilizations)):
        row = outcomes[u_index * config.n_sets:(u_index + 1) * config.n_sets]
        for label in labels:
            per_label[label].append([o[label] for o in row])
        rm_fallbacks += sum(o["_rm_fallbacks"] for o in row)
        for o in row:
            fast = o.get("_fast_path")
            if not fast:
                continue
            if fast.get("used", 0):
                fast_path_cells += 1
            for reason, count in fast.get("fallbacks", {}).items():
                fast_path_fallbacks[reason] = \
                    fast_path_fallbacks.get(reason, 0) + count
        for policy, per_freq in res_acc.items():
            for f in frequencies:
                per_freq[f].append(
                    [o.get("_residency", {}).get(policy, {}).get(f, 0.0)
                     for o in row])

    raw = SweepTable(title=_title(config, normalized=False),
                     x_label="worst-case utilization", y_label="energy")
    normalized = SweepTable(title=_title(config, normalized=True),
                            x_label="worst-case utilization",
                            y_label="energy (normalized to EDF)")
    std: Dict[str, Tuple[float, ...]] = {}
    xs = tuple(config.utilizations)
    for label in labels:
        raw_means = tuple(mean(v) for v in per_label[label])
        raw.add(Series(label, xs, raw_means))
        norm_values = [
            [v / ref for v, ref in zip(values, references)]
            for values, references in zip(per_label[label],
                                          per_label[REFERENCE_POLICY])]
        normalized.add(Series(
            label, xs, tuple(mean(v) for v in norm_values)))
        std[label] = tuple(sample_std(v) for v in per_label[label])
    residency: Dict[str, SweepTable] = {}
    for policy, per_freq in res_acc.items():
        table = SweepTable(
            title=(f"frequency residency vs utilization — {policy}, "
                   f"{config.machine.name}"),
            x_label="worst-case utilization",
            y_label="mean fraction of run")
        for f in frequencies:
            table.add(Series(f"f={f:g}", xs,
                             tuple(mean(v) for v in per_freq[f])))
        residency[policy] = table
    return SweepResult(config=config, raw=raw, normalized=normalized,
                       std=std, rm_fallbacks=rm_fallbacks,
                       residency=residency,
                       fast_path_cells=fast_path_cells,
                       fast_path_fallbacks=fast_path_fallbacks)


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------

def _result_labels(config: SweepConfig) -> List[str]:
    labels = list(config.policies)
    if REFERENCE_POLICY not in labels:
        labels.insert(0, REFERENCE_POLICY)
    labels.append(BOUND_LABEL)
    return labels


def _title(config: SweepConfig, normalized: bool) -> str:
    kind = "normalized energy" if normalized else "energy"
    return (f"{kind} vs utilization — {config.n_tasks} tasks, "
            f"{config.machine.name}, demand={config.demand}, "
            f"idle={config.idle_level}")
