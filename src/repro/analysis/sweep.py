"""Utilization sweeps: the experiment shape behind Figs. 9-13 and 16-17.

For each target worst-case utilization, generate ``n_sets`` random task
sets (paper methodology, Sec. 3.1), simulate every policy on each set with
identical per-invocation demands, and average raw and EDF-normalized energy
across the sets.  The theoretical lower bound is computed per set from the
cycles the plain-EDF reference actually executed.

Demands are *materialized* (pre-drawn into a trace) per task set so every
policy sees byte-identical invocation demands — otherwise random demand
models could de-synchronize across policies and corrupt the comparison.

RM-based policies occasionally meet task sets that are EDF- but not
RM-schedulable (the paper's footnote 3).  Those cells fall back to
full-speed RM with misses tolerated, and the fallback count is reported in
the result, so the curves stay defined across the whole utilization range.
"""

from __future__ import annotations

import math
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.aggregate import mean, sample_std
from repro.analysis.series import Series, SweepTable
from repro.core import PAPER_POLICIES, make_policy
from repro.core.no_dvs import NoDVS
from repro.errors import ReproError, SchedulabilityError
from repro.hw.energy import EnergyModel
from repro.hw.machine import Machine, machine0
from repro.model.demand import DemandModel, TraceDemand, demand_from_spec
from repro.model.generator import TaskSetGenerator
from repro.model.task import TaskSet
from repro.obs.metrics import MetricsCollector
from repro.sim.bound import minimum_energy_for_cycles
from repro.sim.engine import simulate

#: Label used for the theoretical lower bound pseudo-policy.
BOUND_LABEL = "bound"

#: The reference policy every sweep runs for normalization.
REFERENCE_POLICY = "EDF"

DEFAULT_UTILIZATIONS: Tuple[float, ...] = tuple(
    round(0.1 * k, 1) for k in range(1, 11))


def materialize_demand(model: DemandModel, taskset: TaskSet,
                       duration: float) -> TraceDemand:
    """Pre-draw every invocation's demand over ``[0, duration)``.

    Returns a :class:`TraceDemand` that replays the draws identically for
    every policy simulated on this task set.
    """
    trace: Dict[str, List[float]] = {}
    for task in taskset:
        count = max(1, math.ceil(duration / task.period))
        trace[task.name] = [model.demand(task, k) for k in range(count)]
    return TraceDemand(trace, repeat=False, fallback_fraction=1.0)


@dataclass(frozen=True)
class SweepConfig:
    """Parameters of one utilization sweep.

    Defaults follow the paper: 8 tasks, machine 0, perfect idle, worst-case
    demand, utilizations 0.1 ... 1.0.  ``n_sets`` defaults to a laptop-scale
    20 (the paper averages "hundreds"; raise it for publication-grade
    smoothness).
    """

    policies: Tuple[str, ...] = PAPER_POLICIES
    utilizations: Tuple[float, ...] = DEFAULT_UTILIZATIONS
    n_tasks: int = 8
    n_sets: int = 20
    machine: Machine = field(default_factory=machine0)
    demand: Union[str, float, DemandModel] = "worst"
    idle_level: float = 0.0
    duration: float = 2000.0
    seed: int = 1
    workers: int = 1
    cycle_energy_scale: float = 1.0
    #: Policies to additionally instrument with a
    #: :class:`~repro.obs.MetricsCollector`; their mean per-frequency
    #: residency fractions land in :attr:`SweepResult.residency`.
    residency_policies: Tuple[str, ...] = ()

    def energy_model(self) -> EnergyModel:
        return EnergyModel(idle_level=self.idle_level,
                           cycle_energy_scale=self.cycle_energy_scale)


@dataclass
class SweepResult:
    """Aggregated output of :func:`utilization_sweep`."""

    config: SweepConfig
    raw: SweepTable
    normalized: SweepTable
    std: Dict[str, Tuple[float, ...]]
    rm_fallbacks: int
    #: policy -> residency table (one series per operating-point frequency,
    #: mean fraction of the run spent there).  Filled only for
    #: :attr:`SweepConfig.residency_policies`.
    residency: Dict[str, SweepTable] = field(default_factory=dict)

    def series(self, label: str, normalized: bool = True) -> Series:
        table = self.normalized if normalized else self.raw
        return table.get(label)

    def std_table(self) -> SweepTable:
        """Per-point sample standard deviations of the *raw* energies.

        Exposes the across-task-set spread the mean curves average away;
        exported alongside the means for error bars in external plots.
        """
        table = SweepTable(
            title=self.raw.title + " — sample std across task sets",
            x_label=self.raw.x_label,
            y_label="energy std")
        xs = self.raw.xs
        for label in self.raw.labels():
            table.add(Series(label, xs, self.std[label]))
        return table


def utilization_sweep(config: SweepConfig) -> SweepResult:
    """Run the sweep described by ``config``."""
    labels = _result_labels(config)
    per_label: Dict[str, List[List[float]]] = {
        label: [] for label in labels}
    # residency: policy -> frequency -> per-utilization list of fractions
    frequencies = tuple(sorted(p.frequency for p in config.machine.points))
    res_acc: Dict[str, Dict[float, List[List[float]]]] = {
        policy: {f: [] for f in frequencies}
        for policy in config.residency_policies}
    rm_fallbacks = 0
    # One worker pool serves every utilization point: spawning processes
    # (and re-importing repro in each) per point dominated small sweeps.
    pool: Optional[ProcessPoolExecutor] = None
    if config.workers > 1:
        pool = ProcessPoolExecutor(max_workers=config.workers)
    try:
        for u_index, utilization in enumerate(config.utilizations):
            cells = _build_cells(config, u_index, utilization)
            outcomes = _run_cells(cells, config.workers, pool)
            for label in labels:
                per_label[label].append([o[label] for o in outcomes])
            rm_fallbacks += sum(o["_rm_fallbacks"] for o in outcomes)
            for policy, per_freq in res_acc.items():
                for f in frequencies:
                    per_freq[f].append(
                        [o.get("_residency", {}).get(policy, {}).get(f, 0.0)
                         for o in outcomes])
    finally:
        if pool is not None:
            pool.shutdown()

    raw = SweepTable(title=_title(config, normalized=False),
                     x_label="worst-case utilization", y_label="energy")
    normalized = SweepTable(title=_title(config, normalized=True),
                            x_label="worst-case utilization",
                            y_label="energy (normalized to EDF)")
    std: Dict[str, Tuple[float, ...]] = {}
    xs = tuple(config.utilizations)
    for label in labels:
        raw_means = tuple(mean(v) for v in per_label[label])
        raw.add(Series(label, xs, raw_means))
        norm_values = [
            [v / ref for v, ref in zip(values, references)]
            for values, references in zip(per_label[label],
                                          per_label[REFERENCE_POLICY])]
        normalized.add(Series(
            label, xs, tuple(mean(v) for v in norm_values)))
        std[label] = tuple(sample_std(v) for v in per_label[label])
    residency: Dict[str, SweepTable] = {}
    for policy, per_freq in res_acc.items():
        table = SweepTable(
            title=(f"frequency residency vs utilization — {policy}, "
                   f"{config.machine.name}"),
            x_label="worst-case utilization",
            y_label="mean fraction of run")
        for f in frequencies:
            table.add(Series(f"f={f:g}", xs,
                             tuple(mean(v) for v in per_freq[f])))
        residency[policy] = table
    return SweepResult(config=config, raw=raw, normalized=normalized,
                       std=std, rm_fallbacks=rm_fallbacks,
                       residency=residency)


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------

def _result_labels(config: SweepConfig) -> List[str]:
    labels = list(config.policies)
    if REFERENCE_POLICY not in labels:
        labels.insert(0, REFERENCE_POLICY)
    labels.append(BOUND_LABEL)
    return labels


def _title(config: SweepConfig, normalized: bool) -> str:
    kind = "normalized energy" if normalized else "energy"
    return (f"{kind} vs utilization — {config.n_tasks} tasks, "
            f"{config.machine.name}, demand={config.demand}, "
            f"idle={config.idle_level}")


@dataclass(frozen=True)
class _Cell:
    """One (task set, all policies) work unit — picklable for workers."""

    taskset: TaskSet
    demand: TraceDemand
    policies: Tuple[str, ...]
    machine: Machine
    duration: float
    idle_level: float
    cycle_energy_scale: float
    residency_policies: Tuple[str, ...] = ()


def _build_cells(config: SweepConfig, u_index: int,
                 utilization: float) -> List[_Cell]:
    seed_root = random.Random(f"{config.seed}/{u_index}")
    generator = TaskSetGenerator(
        n_tasks=config.n_tasks, utilization=utilization,
        seed=seed_root.randrange(2 ** 63))
    cells = []
    for set_index in range(config.n_sets):
        taskset = generator.generate()
        model = demand_from_spec(config.demand,
                                 seed=seed_root.randrange(2 ** 63))
        demand = materialize_demand(model, taskset, config.duration)
        cells.append(_Cell(
            taskset=taskset, demand=demand,
            policies=tuple(_result_labels(config)[:-1]),
            machine=config.machine, duration=config.duration,
            idle_level=config.idle_level,
            cycle_energy_scale=config.cycle_energy_scale,
            residency_policies=tuple(config.residency_policies)))
    return cells


def _run_cells(cells: List[_Cell], workers: int,
               pool: Optional[ProcessPoolExecutor] = None
               ) -> List[Dict[str, float]]:
    if pool is None or workers <= 1 or len(cells) <= 1:
        return [_run_cell(cell) for cell in cells]
    # Chunking amortizes pickling overhead; cap at 4 waves per worker so
    # uneven cell runtimes still load-balance.
    chunksize = max(1, len(cells) // (workers * 4))
    return list(pool.map(_run_cell, cells, chunksize=chunksize))


def _run_cell(cell: _Cell) -> Dict[str, object]:
    """Simulate every policy on one task set; returns label -> energy
    (plus ``_rm_fallbacks`` and, when requested, ``_residency``)."""
    energy_model = EnergyModel(idle_level=cell.idle_level,
                               cycle_energy_scale=cell.cycle_energy_scale)
    out: Dict[str, float] = {"_rm_fallbacks": 0}
    residency: Dict[str, Dict[float, float]] = {}
    reference_cycles: Optional[float] = None
    for name in cell.policies:
        collector = None
        if name in cell.residency_policies:
            collector = MetricsCollector()
        try:
            result = simulate(cell.taskset, cell.machine, make_policy(name),
                              demand=cell.demand, duration=cell.duration,
                              energy_model=energy_model, on_miss="raise",
                              instrument=collector)
        except SchedulabilityError:
            # EDF-schedulable but not RM-schedulable (paper footnote 3):
            # fall back to full-speed RM and tolerate the misses.
            result = simulate(cell.taskset, cell.machine,
                              NoDVS(scheduler="rm"),
                              demand=cell.demand, duration=cell.duration,
                              energy_model=energy_model, on_miss="drop",
                              instrument=collector)
            out["_rm_fallbacks"] += 1
        if collector is not None:
            metrics = collector.metrics
            span = metrics.span or 1.0
            residency[name] = {f: seconds / span for f, seconds in
                               metrics.residency.items()}
        out[name] = result.total_energy
        if name == REFERENCE_POLICY:
            reference_cycles = result.executed_cycles
    if reference_cycles is None:  # pragma: no cover - labels always add EDF
        raise ReproError("sweep cell ran without the EDF reference")
    out[BOUND_LABEL] = cell.cycle_energy_scale * minimum_energy_for_cycles(
        cell.machine, reference_cycles, cell.duration)
    if residency:
        out["_residency"] = residency
    return out
