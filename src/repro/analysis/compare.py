"""One-call policy comparison on a single workload.

Bundles what the examples keep doing by hand: run several policies on the
same task set with byte-identical demands, and tabulate energy (absolute
and normalized), deadline misses, frequency switches, average power, and
optionally battery life and peak die temperature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.analysis.sweep import materialize_demand
from repro.core import PAPER_POLICIES, make_policy
from repro.errors import SchedulabilityError
from repro.hw.battery import Battery
from repro.hw.energy import EnergyModel
from repro.hw.machine import Machine
from repro.measure.thermal import ThermalModel, thermal_trajectory
from repro.model.demand import DemandModel, demand_from_spec
from repro.model.task import TaskSet
from repro.sim.engine import simulate


@dataclass(frozen=True)
class PolicyComparison:
    """One row of the comparison."""

    policy: str
    energy: float
    normalized: float
    misses: int
    switches: int
    average_power: float
    battery_life: Optional[float] = None
    peak_temperature: Optional[float] = None
    skipped: str = ""  # non-empty when the policy could not run


def compare_policies(taskset: TaskSet, machine: Machine,
                     policies: Sequence[str] = PAPER_POLICIES,
                     demand: Union[str, float, DemandModel, None] = "worst",
                     duration: Optional[float] = None,
                     energy_model: Optional[EnergyModel] = None,
                     battery: Optional[Battery] = None,
                     thermal: Optional[ThermalModel] = None,
                     ) -> List[PolicyComparison]:
    """Run every policy on identical demands; first policy is the
    normalization reference (include "EDF" first for the paper's view).

    Policies whose schedulability test rejects the set (e.g. RM policies
    on an EDF-only set) come back with a ``skipped`` reason instead of
    numbers.
    """
    duration = (duration if duration is not None
                else 4.0 * max(t.period for t in taskset))
    model = demand_from_spec(demand) if demand is not None else None
    frozen = (materialize_demand(model, taskset, duration)
              if model is not None else None)
    rows: List[PolicyComparison] = []
    reference_energy: Optional[float] = None
    record = thermal is not None
    for name in policies:
        try:
            result = simulate(taskset, machine, make_policy(name),
                              demand=frozen, duration=duration,
                              energy_model=energy_model, on_miss="drop",
                              record_trace=record)
        except SchedulabilityError as exc:
            rows.append(PolicyComparison(
                policy=name, energy=float("nan"), normalized=float("nan"),
                misses=0, switches=0, average_power=float("nan"),
                skipped=str(exc)))
            continue
        if reference_energy is None:
            reference_energy = result.total_energy
        peak_temp = None
        if thermal is not None and result.trace is not None:
            peak_temp = thermal_trajectory(result, thermal).peak
        rows.append(PolicyComparison(
            policy=name,
            energy=result.total_energy,
            normalized=result.total_energy / reference_energy
            if reference_energy else float("nan"),
            misses=result.deadline_miss_count,
            switches=result.switches,
            average_power=result.average_power,
            battery_life=(battery.lifetime(result.average_power)
                          if battery is not None
                          and result.average_power > 0 else None),
            peak_temperature=peak_temp,
        ))
    return rows


def comparison_table(rows: Sequence[PolicyComparison]) -> str:
    """Render comparison rows as Markdown."""
    battery_column = any(r.battery_life is not None for r in rows)
    thermal_column = any(r.peak_temperature is not None for r in rows)
    header = ["policy", "energy", "vs ref", "misses", "switches",
              "avg power"]
    if battery_column:
        header.append("battery life")
    if thermal_column:
        header.append("peak temp")
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        if row.skipped:
            cells = [f"{row.policy} (skipped)"] + \
                ["—"] * (len(header) - 1)
            lines.append("| " + " | ".join(cells) + " |")
            continue
        cells = [row.policy, f"{row.energy:.4g}",
                 f"{row.normalized:.3f}", str(row.misses),
                 str(row.switches), f"{row.average_power:.4g}"]
        if battery_column:
            cells.append(f"{row.battery_life:.4g}"
                         if row.battery_life is not None else "—")
        if thermal_column:
            cells.append(f"{row.peak_temperature:.1f}"
                         if row.peak_temperature is not None else "—")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
