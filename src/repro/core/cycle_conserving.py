"""Cycle-conserving EDF (Sec. 2.4, Fig. 4).

The algorithm, verbatim from the paper::

    select_frequency():
        use lowest freq. f_i such that U_1 + ... + U_n <= f_i / f_m

    upon task_release(T_i):
        set U_i to C_i / P_i
        select_frequency()

    upon task_completion(T_i):
        set U_i to cc_i / P_i     /* cc_i is the actual cycles used */
        select_frequency()

When a task completes early, its utilization entry shrinks to what it
actually used, which stays valid until its next release (condition C2 still
holds with the lowered bound, so EDF's guarantee is untouched).  On release
the worst case is restored — possibly raising the frequency.

Incremental mode
----------------
``select_frequency`` only ever needs ``ΣU_i``, and each event changes a
single ``U_i`` — so the sum is maintained as a running aggregate updated in
O(1) per event (``total += new − old``) instead of re-summed over all
tasks.  Two mechanisms keep this *provably* equivalent to the from-scratch
recomputation:

* **Periodic exact resync** bounds accumulated float drift: every
  ``resync_interval`` updates the aggregate is replaced by the exact
  ``sum()`` over the table.  Between resyncs the drift is at most a few
  hundred ulps — many orders of magnitude below the guard band.
* **Decision-boundary recompute**: frequency selection only depends on
  which side of a machine threshold (``f_j + 1e-9``, and the ``1 + 1e-9``
  schedulability bound) the sum falls.  Whenever the running aggregate
  lies within ``_GUARD`` of any threshold, the exact sum is recomputed and
  used instead.  Since the drift bound is far smaller than ``_GUARD``,
  the incremental and from-scratch paths always pick the same operating
  point and raise the same errors — the differential tests pin this
  bit-for-bit on full simulations.

``strict=True`` additionally cross-checks the running aggregate against
the exact sum at *every* selection and raises
:class:`~repro.errors.PolicyStateError` on divergence beyond drift
tolerance (a debugging mode; it re-pays the O(n) sum it exists to avoid).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Optional, Tuple

from repro.core.base import DVSPolicy
from repro.errors import PolicyStateError, SchedulabilityError
from repro.hw.operating_point import OperatingPoint
from repro.model.task import Task

#: Distance from a decision threshold below which the exact sum is
#: recomputed.  Must exceed the worst-case incremental drift between
#: resyncs (~``resync_interval × eps`` ≈ 1e-13) by a wide margin.
_GUARD = 1e-10

#: Allowed |incremental − exact| before ``strict`` mode raises.
_STRICT_TOL = 1e-9


class CycleConservingEDF(DVSPolicy):
    """Cycle-conserving RT-DVS for EDF schedulers (``ccEDF``).

    Parameters
    ----------
    incremental:
        Maintain ``ΣU_i`` as an O(1)-per-event running aggregate (default).
        ``False`` re-sums the utilization table at every selection — the
        from-scratch reference the differential tests compare against.
    strict:
        Cross-check the running aggregate against an exact recomputation at
        every selection; raise :class:`~repro.errors.PolicyStateError` when
        they diverge beyond drift tolerance.  Implies the O(n) cost the
        incremental path avoids; meant for debugging and tests.
    resync_interval:
        Number of incremental updates between exact resyncs of the
        aggregate (bounds float drift).
    """

    name = "ccEDF"
    scheduler = "edf"

    def __init__(self, incremental: bool = True, strict: bool = False,
                 resync_interval: int = 256):
        if resync_interval < 1:
            raise ValueError(
                f"resync_interval must be >= 1, got {resync_interval}")
        self.incremental = incremental
        self.strict = strict
        self.resync_interval = resync_interval
        self._utilization: Dict[str, float] = {}
        self._wc_utilization: Dict[str, float] = {}
        self._total = 0.0
        self._updates = 0
        self._thresholds: Tuple[float, ...] = ()
        # Memoized decision band: the selection is constant while the sum
        # stays strictly inside (lo + _GUARD, hi - _GUARD], where lo/hi
        # are the thresholds bracketing the last full selection.
        self._band_point: Optional[OperatingPoint] = None
        self._band_lo = 0.0
        self._band_hi = 0.0

    def setup(self, view) -> Optional[OperatingPoint]:
        if view.taskset.utilization > 1.0 + 1e-9:
            raise SchedulabilityError(
                f"task set utilization {view.taskset.utilization:.3f} > 1; "
                "not EDF-schedulable at any frequency")
        # Worst-case utilizations cached once: releases restore exactly
        # these values, so the hot path skips the property's division.
        self._wc_utilization = {
            task.name: task.utilization for task in view.taskset}
        self._utilization = dict(self._wc_utilization)
        self._total = sum(self._utilization.values())
        self._updates = 0
        # Selection changes exactly when the sum crosses f_j + 1e-9 (the
        # bisect epsilon in Machine.lowest_at_least); the schedulability
        # bound 1 + 1e-9 coincides with the top frequency's threshold.
        # Machine.frequencies is ascending, so the guard-band check below
        # can bisect for the nearest thresholds.
        self._thresholds = tuple(
            f + 1e-9 for f in view.machine.frequencies)
        self._band_point = None
        return self._select(view)

    def on_release(self, view, task: Task) -> Optional[OperatingPoint]:
        name = task.name
        worst = self._wc_utilization.get(name)
        if worst is None:  # defensive: release outside the known task set
            worst = self._wc_utilization[name] = task.utilization
        self._update(name, worst)
        return self._select(view)

    def on_completion(self, view, task: Task) -> Optional[OperatingPoint]:
        job = view.job_of(task)
        actual = job.executed if job is not None else 0.0
        self._update(task.name, actual / task.period)
        return self._select(view)

    def on_task_added(self, view, task: Task) -> Optional[OperatingPoint]:
        # An admitted-but-unreleased task reserves its full worst case, so
        # DVS decisions are already based on the new task set (Sec. 4.3).
        self._wc_utilization[task.name] = task.utilization
        self._update(task.name, task.utilization)
        return self._select(view)

    def on_task_removed(self, view, task: Task) -> Optional[OperatingPoint]:
        self._wc_utilization.pop(task.name, None)
        old = self._utilization.pop(task.name, 0.0)
        self._total -= old
        self._count_update()
        return self._select(view)

    def on_idle(self, view) -> Optional[OperatingPoint]:
        # Nothing is runnable: halt at the bottom of the table.  Safe — the
        # next release re-runs select_frequency() before any work starts.
        return view.machine.slowest

    # ------------------------------------------------------------------
    def _update(self, name: str, value: float) -> None:
        old = self._utilization.get(name, 0.0)
        self._utilization[name] = value
        self._total += value - old
        self._updates += 1  # _count_update, inlined for the hot path
        if self._updates >= self.resync_interval:
            self._resync()

    def _count_update(self) -> None:
        self._updates += 1
        if self._updates >= self.resync_interval:
            self._resync()

    def _resync(self) -> None:
        self._total = sum(self._utilization.values())
        self._updates = 0

    def _select(self, view) -> OperatingPoint:
        if self.incremental:
            total = self._total
            if self.strict:
                exact = sum(self._utilization.values())
                if abs(total - exact) > _STRICT_TOL:
                    raise PolicyStateError(
                        f"ccEDF running utilization sum {total!r} diverged "
                        f"from exact recomputation {exact!r} at "
                        f"t={view.time:g}")
            elif self._band_point is not None \
                    and self._band_lo + _GUARD < total \
                    and total <= self._band_hi - _GUARD:
                # Memoized decision band: the sum sits strictly between
                # the thresholds that bracketed the last full selection
                # (with the guard margin absorbing incremental drift), so
                # the selection cannot have changed.  Note an over-unity
                # sum exits the top band and takes the full path, which
                # raises as before.
                return self._band_point
            # Guard-band check against the *nearest* thresholds only (the
            # tuple is ascending, so they bracket the bisection point) —
            # equivalent to scanning all of them, without the O(points)
            # loop on every selection.
            thresholds = self._thresholds
            index = bisect_left(thresholds, total)
            if (index < len(thresholds)
                    and thresholds[index] - total <= _GUARD) or \
                    (index and total - thresholds[index - 1] <= _GUARD):
                # Too close to a decision boundary for the drift bound
                # to guarantee the same choice: recompute exactly.
                self._resync()
                total = self._total
        else:
            total = sum(self._utilization.values())
        if total > 1.0 + 1e-9:
            raise SchedulabilityError(
                f"utilization sum {total:.3f} > 1 at t={view.time}; the "
                "task set is not schedulable at any frequency")
        point = view.machine.lowest_at_least(min(total, 1.0))
        if self.incremental and not self.strict:
            index = view.machine.index_of(point)
            self._band_hi = self._thresholds[index]
            self._band_lo = self._thresholds[index - 1] if index \
                else float("-inf")
            self._band_point = point
        return point

    @property
    def utilization_estimate(self) -> float:
        """Current ``ΣU_i`` (worst case for running tasks, actual for
        completed ones) — the numbers annotated on the paper's Fig. 3.
        Always recomputed exactly (reporting path, not the hot path)."""
        return sum(self._utilization.values())
