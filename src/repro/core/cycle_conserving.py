"""Cycle-conserving EDF (Sec. 2.4, Fig. 4).

The algorithm, verbatim from the paper::

    select_frequency():
        use lowest freq. f_i such that U_1 + ... + U_n <= f_i / f_m

    upon task_release(T_i):
        set U_i to C_i / P_i
        select_frequency()

    upon task_completion(T_i):
        set U_i to cc_i / P_i     /* cc_i is the actual cycles used */
        select_frequency()

When a task completes early, its utilization entry shrinks to what it
actually used, which stays valid until its next release (condition C2 still
holds with the lowered bound, so EDF's guarantee is untouched).  On release
the worst case is restored — possibly raising the frequency.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.base import DVSPolicy
from repro.errors import SchedulabilityError
from repro.hw.operating_point import OperatingPoint
from repro.model.task import Task


class CycleConservingEDF(DVSPolicy):
    """Cycle-conserving RT-DVS for EDF schedulers (``ccEDF``)."""

    name = "ccEDF"
    scheduler = "edf"

    def __init__(self):
        self._utilization: Dict[str, float] = {}

    def setup(self, view) -> Optional[OperatingPoint]:
        if view.taskset.utilization > 1.0 + 1e-9:
            raise SchedulabilityError(
                f"task set utilization {view.taskset.utilization:.3f} > 1; "
                "not EDF-schedulable at any frequency")
        self._utilization = {
            task.name: task.utilization for task in view.taskset}
        return self._select(view)

    def on_release(self, view, task: Task) -> Optional[OperatingPoint]:
        self._utilization[task.name] = task.utilization
        return self._select(view)

    def on_completion(self, view, task: Task) -> Optional[OperatingPoint]:
        actual = view.executed_in_invocation(task)
        self._utilization[task.name] = actual / task.period
        return self._select(view)

    def on_task_added(self, view, task: Task) -> Optional[OperatingPoint]:
        # An admitted-but-unreleased task reserves its full worst case, so
        # DVS decisions are already based on the new task set (Sec. 4.3).
        self._utilization[task.name] = task.utilization
        return self._select(view)

    def on_idle(self, view) -> Optional[OperatingPoint]:
        # Nothing is runnable: halt at the bottom of the table.  Safe — the
        # next release re-runs select_frequency() before any work starts.
        return view.machine.slowest

    def _select(self, view) -> OperatingPoint:
        total = sum(self._utilization.values())
        if total > 1.0 + 1e-9:
            raise SchedulabilityError(
                f"utilization sum {total:.3f} > 1 at t={view.time}; the "
                "task set is not schedulable at any frequency")
        return view.machine.lowest_at_least(min(total, 1.0))

    @property
    def utilization_estimate(self) -> float:
        """Current ``ΣU_i`` (worst case for running tasks, actual for
        completed ones) — the numbers annotated on the paper's Fig. 3."""
        return sum(self._utilization.values())
