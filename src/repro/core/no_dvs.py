"""The no-DVS baseline: run at full speed, always.

The paper's comparison point ("none (plain EDF)" in Table 4; the "EDF"
curves in Figs. 9-13).  Without DVS the energy is the same under EDF and RM
— the same cycles execute at the same voltage — but the paper simulates
both to confirm RM schedulability, so the scheduler is selectable here too.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import DVSPolicy
from repro.hw.operating_point import OperatingPoint


class NoDVS(DVSPolicy):
    """Plain EDF or RM scheduling at the maximum operating point."""

    def __init__(self, scheduler: str = "edf"):
        scheduler = scheduler.strip().lower()
        if scheduler not in ("edf", "rm"):
            raise ValueError(
                f"scheduler must be 'edf' or 'rm', got {scheduler!r}")
        self.scheduler = scheduler
        self.name = "EDF" if scheduler == "edf" else "RM"

    def setup(self, view) -> Optional[OperatingPoint]:
        return view.machine.fastest
