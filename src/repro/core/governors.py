"""Classic interval-based DVS governors (the paper's related work).

The paper positions RT-DVS against "average throughput-based mechanism[s]
typical of many current DVS algorithms" [7, 23, 30].  Govil, Chan &
Wassermann (MOBICOM'95) compared a family of such interval schedulers;
this module implements the three canonical ones so the reproduction can
quantify the paper's motivating claim (they save energy but break
deadlines):

* :class:`PastGovernor` — PAST: assume the next window repeats the last
  one;
* :class:`FlatGovernor` — FLAT: aim at the long-run average utilization,
  smoothing out bursts;
* :class:`AgedAveragesGovernor` — AGED_AVERAGES: geometrically-decaying
  weighted history.

All share :class:`IntervalGovernor`'s machinery (measure busy time per
fixed window through the engine's wakeup hook, convert to normalized
demand, pick the lowest sufficient frequency); they differ only in the
prediction function, as in the original comparison.  None of them is
deadline-safe — that is the point.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import List, Optional

from repro.core.base import DVSPolicy
from repro.errors import SimulationError
from repro.hw.operating_point import OperatingPoint


class IntervalGovernor(DVSPolicy):
    """Shared skeleton for interval-based (non-real-time) governors.

    Parameters
    ----------
    interval:
        Window length.
    target_utilization:
        Headroom factor: the predicted demand is divided by this before
        choosing a frequency, so values < 1 run faster than the bare
        prediction.
    """

    scheduler = "edf"

    def __init__(self, interval: float = 10.0,
                 target_utilization: float = 0.7):
        if interval <= 0:
            raise SimulationError(
                f"interval must be positive, got {interval}")
        if not 0.0 < target_utilization <= 1.0:
            raise SimulationError(
                "target_utilization must be in (0, 1], got "
                f"{target_utilization}")
        self.interval = interval
        self.target_utilization = target_utilization
        self._next_wakeup = 0.0
        self._busy_snapshot = 0.0
        self._window_frequency = 1.0
        self._history: List[float] = []

    # -- engine hooks ----------------------------------------------------
    def setup(self, view) -> Optional[OperatingPoint]:
        self._next_wakeup = self.interval
        self._busy_snapshot = 0.0
        self._history = []
        start = view.machine.fastest
        self._window_frequency = start.frequency
        return start

    def wakeup_time(self) -> Optional[float]:
        return self._next_wakeup

    def on_wakeup(self, view) -> Optional[OperatingPoint]:
        busy = view.busy_time - self._busy_snapshot
        self._busy_snapshot = view.busy_time
        demand = busy * self._window_frequency / self.interval
        self._history.append(demand)
        predicted = self.predict()
        requested = min(1.0, predicted / self.target_utilization)
        point = view.machine.lowest_at_least(requested)
        self._window_frequency = point.frequency
        self._next_wakeup += self.interval
        return point

    # -- the strategy ----------------------------------------------------
    @abstractmethod
    def predict(self) -> float:
        """Normalized demand expected in the next window, from
        ``self._history`` (most recent last; never empty when called)."""


class PastGovernor(IntervalGovernor):
    """PAST: the next window will look exactly like the last one."""

    name = "gov-past"

    def predict(self) -> float:
        return self._history[-1]


class FlatGovernor(IntervalGovernor):
    """FLAT: aim at the long-run average utilization.

    Smooths bursts aggressively — the best average-power behaviour of the
    family and the worst at meeting latency spikes.
    """

    name = "gov-flat"

    def predict(self) -> float:
        return sum(self._history) / len(self._history)


class AgedAveragesGovernor(IntervalGovernor):
    """AGED_AVERAGES: geometric decay over the window history.

    Parameters
    ----------
    aging:
        Decay factor in (0, 1); weight of the window ``k`` steps in the
        past is ``aging**k``.  Small values behave like PAST, values near
        1 like FLAT.
    """

    name = "gov-aged"

    def __init__(self, interval: float = 10.0,
                 target_utilization: float = 0.7, aging: float = 0.5):
        super().__init__(interval=interval,
                         target_utilization=target_utilization)
        if not 0.0 < aging < 1.0:
            raise SimulationError(
                f"aging must be in (0, 1), got {aging}")
        self.aging = aging

    def predict(self) -> float:
        weight = 1.0
        total = 0.0
        normalizer = 0.0
        for value in reversed(self._history):
            total += weight * value
            normalizer += weight
            weight *= self.aging
            if weight < 1e-6:
                break
        return total / normalizer
