"""A fixed operating point, regardless of load.

Not one of the paper's algorithms — a utility policy for demonstrations
and ablations, e.g. showing that statically running RM at 0.75 on the
worked example makes T3 miss its deadline (Fig. 2), or measuring a single
operating point's power.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import DVSPolicy
from repro.hw.operating_point import OperatingPoint


class FixedSpeed(DVSPolicy):
    """Pin the processor at one operating frequency.

    Parameters
    ----------
    frequency:
        Relative frequency; must be an exact operating point of the
        machine the simulation runs on.
    scheduler:
        Underlying priority policy ("edf" or "rm").
    """

    def __init__(self, frequency: float, scheduler: str = "edf"):
        scheduler = scheduler.strip().lower()
        if scheduler not in ("edf", "rm"):
            raise ValueError(
                f"scheduler must be 'edf' or 'rm', got {scheduler!r}")
        self.frequency = frequency
        self.scheduler = scheduler
        self.name = f"fixed@{frequency:g}"

    def setup(self, view) -> Optional[OperatingPoint]:
        return view.machine.point_for(self.frequency)
