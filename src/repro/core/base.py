"""Base class for DVS policies.

A policy is attached to a :class:`~repro.sim.engine.Simulator` and reacts to
scheduler events by returning the operating point the processor should use
from now on (or ``None`` to leave it unchanged).  The hooks correspond to
the "upon task_release" / "upon task_completion" clauses of the paper's
pseudo-code (Figs. 4, 6 and 8); ``setup`` runs once before time 0.

Policies are stateful during a run but reusable across runs: ``setup`` must
reinitialize all per-run state.
"""

from __future__ import annotations

from abc import ABC
from typing import Optional

from repro.hw.operating_point import OperatingPoint
from repro.model.task import Task


class DVSPolicy(ABC):
    """Common interface for all DVS policies.

    Class attributes
    ----------------
    name:
        Short identifier used in results and plots (e.g. ``"ccEDF"``).
    scheduler:
        The real-time scheduler this policy is designed for (``"edf"`` or
        ``"rm"``); the simulator uses it to pick the priority policy.
    """

    name: str = "policy"
    scheduler: str = "edf"

    def setup(self, view) -> Optional[OperatingPoint]:
        """Initialize per-run state; return the initial operating point.

        ``view`` is the :class:`~repro.sim.engine.SchedulerView`.  Returning
        ``None`` keeps the machine's default (full speed).
        """
        return None

    def on_release(self, view, task: Task) -> Optional[OperatingPoint]:
        """Called after ``task`` is released; may change operating point."""
        return None

    def on_releases_invalidate(self, view, tasks) -> None:
        """Called once per release batch, before the per-task
        :meth:`on_release` hooks, with every task released at the current
        instant.

        Invalidation hook for policies that cache view-derived per-task
        state (deadlines, orderings): the engine creates *all* of a
        batch's jobs before the first ``on_release`` hook fires, so by the
        time a per-task hook runs, the view already reflects the other
        co-released tasks' new invocations.  A policy that caches their
        deadlines must refresh them here or its first intermediate
        selection of the batch reads stale entries.  Pure notification —
        no operating point is returned.
        """
        return None

    def on_completion(self, view, task: Task) -> Optional[OperatingPoint]:
        """Called after ``task`` completes its invocation."""
        return None

    def on_task_added(self, view, task: Task) -> Optional[OperatingPoint]:
        """Called when a task is admitted dynamically (Sec. 4.3)."""
        return None

    def on_task_removed(self, view, task: Task) -> Optional[OperatingPoint]:
        """Called after ``task`` leaves the task set.

        Invalidation hook for policies that maintain incremental per-task
        aggregates (running utilization sums, allocation tables, deferral
        orderings): the policy must drop the task's contribution here so
        the aggregates keep matching a from-scratch recomputation over the
        shrunken set.  ``view.taskset`` no longer contains ``task`` when
        the hook fires.
        """
        return None

    def on_idle(self, view) -> Optional[OperatingPoint]:
        """Called when the ready queue empties (the processor will halt).

        "The dynamic algorithms switch to the lowest frequency and voltage
        during idle, while the static ones do not" (Sec. 3.2, discussion of
        Fig. 10).  Dynamic policies override this to drop to the bottom of
        the table; it is always safe, because no work is pending and every
        release re-runs the frequency selection.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} ({self.scheduler})>"
