"""Base class for DVS policies.

A policy is attached to a :class:`~repro.sim.engine.Simulator` and reacts to
scheduler events by returning the operating point the processor should use
from now on (or ``None`` to leave it unchanged).  The hooks correspond to
the "upon task_release" / "upon task_completion" clauses of the paper's
pseudo-code (Figs. 4, 6 and 8); ``setup`` runs once before time 0.

Policies are stateful during a run but reusable across runs: ``setup`` must
reinitialize all per-run state.
"""

from __future__ import annotations

from abc import ABC
from typing import Optional

from repro.hw.operating_point import OperatingPoint
from repro.model.task import Task


class DVSPolicy(ABC):
    """Common interface for all DVS policies.

    Class attributes
    ----------------
    name:
        Short identifier used in results and plots (e.g. ``"ccEDF"``).
    scheduler:
        The real-time scheduler this policy is designed for (``"edf"`` or
        ``"rm"``); the simulator uses it to pick the priority policy.
    """

    name: str = "policy"
    scheduler: str = "edf"

    def setup(self, view) -> Optional[OperatingPoint]:
        """Initialize per-run state; return the initial operating point.

        ``view`` is the :class:`~repro.sim.engine.SchedulerView`.  Returning
        ``None`` keeps the machine's default (full speed).
        """
        return None

    def on_release(self, view, task: Task) -> Optional[OperatingPoint]:
        """Called after ``task`` is released; may change operating point."""
        return None

    def on_completion(self, view, task: Task) -> Optional[OperatingPoint]:
        """Called after ``task`` completes its invocation."""
        return None

    def on_task_added(self, view, task: Task) -> Optional[OperatingPoint]:
        """Called when a task is admitted dynamically (Sec. 4.3)."""
        return None

    def on_idle(self, view) -> Optional[OperatingPoint]:
        """Called when the ready queue empties (the processor will halt).

        "The dynamic algorithms switch to the lowest frequency and voltage
        during idle, while the static ones do not" (Sec. 3.2, discussion of
        Fig. 10).  Dynamic policies override this to drop to the bottom of
        the table; it is always safe, because no work is pending and every
        release re-runs the frequency selection.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} ({self.scheduler})>"
