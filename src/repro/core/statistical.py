"""Statistical RT-DVS — the paper's stated future direction.

"In the future, we would like to expand this work beyond the
deterministic/absolute real-time paradigm presented here.  In particular,
we will investigate DVS with probabilistic or statistical deadline
guarantees" (Sec. 6).

:class:`StatisticalEDF` explores that direction on top of the ccEDF
skeleton: instead of reserving each task's *worst case* on release, it
reserves an online percentile estimate of the task's observed demand
distribution.  Energy drops below ccEDF (less pessimistic reservations);
the price is that a task exceeding its estimate can transiently overload
the schedule — a *statistical* rather than absolute guarantee.

Safety valve: whenever a running task has already executed more cycles
than its reservation, the policy restores the full worst case for it at
the next scheduling event, bounding how long an underestimate can distort
the frequency.  Misses remain possible between events — that is the
nature of a statistical guarantee; with ``warmup`` set high enough the
policy falls back to reserving the worst case everywhere and becomes
exactly ccEDF (hard guarantees restored).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.base import DVSPolicy
from repro.errors import SchedulabilityError, SimulationError
from repro.hw.operating_point import OperatingPoint
from repro.model.task import Task


class _DemandHistory:
    """Bounded per-task record of observed per-invocation demands."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(value)
        if len(self._values) > self.capacity:
            del self._values[0]

    def __len__(self) -> int:
        return len(self._values)

    def percentile(self, q: float) -> float:
        """The q-quantile of the observed demands (nearest-rank)."""
        if not self._values:
            raise SimulationError("no observations yet")
        ordered = sorted(self._values)
        rank = min(len(ordered) - 1,
                   max(0, int(q * len(ordered) + 0.5) - 1))
        if q >= 1.0:
            rank = len(ordered) - 1
        return ordered[rank]


class StatisticalEDF(DVSPolicy):
    """Percentile-reservation EDF DVS (statistical guarantees).

    Parameters
    ----------
    percentile:
        Demand quantile reserved on release, in (0, 1].  1.0 reserves the
        observed maximum; lower values save more energy and miss more.
    warmup:
        Invocations per task that reserve the full worst case before the
        estimator takes over (the paper's cold-start observation argues
        early invocations are unrepresentative anyway).
    history:
        Sliding-window length of the per-task demand history.
    """

    name = "statEDF"
    scheduler = "edf"

    def __init__(self, percentile: float = 0.95, warmup: int = 3,
                 history: int = 64):
        if not 0.0 < percentile <= 1.0:
            raise SimulationError(
                f"percentile must be in (0, 1], got {percentile}")
        if warmup < 0:
            raise SimulationError(f"warmup must be >= 0, got {warmup}")
        if history < 1:
            raise SimulationError(f"history must be >= 1, got {history}")
        self.percentile = percentile
        self.warmup = warmup
        self.history = history
        self._utilization: Dict[str, float] = {}
        self._reserved: Dict[str, float] = {}
        self._histories: Dict[str, _DemandHistory] = {}
        self._observed: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def setup(self, view) -> Optional[OperatingPoint]:
        if view.taskset.utilization > 1.0 + 1e-9:
            raise SchedulabilityError(
                f"task set utilization {view.taskset.utilization:.3f} > 1")
        self._utilization = {t.name: t.utilization for t in view.taskset}
        self._reserved = {t.name: t.wcet for t in view.taskset}
        self._histories = {t.name: _DemandHistory(self.history)
                           for t in view.taskset}
        self._observed = {t.name: 0 for t in view.taskset}
        return self._select(view)

    def on_release(self, view, task: Task) -> Optional[OperatingPoint]:
        reservation = self._reservation(task)
        self._reserved[task.name] = reservation
        self._utilization[task.name] = reservation / task.period
        return self._select(view)

    def on_completion(self, view, task: Task) -> Optional[OperatingPoint]:
        actual = view.executed_in_invocation(task)
        history = self._histories.setdefault(
            task.name, _DemandHistory(self.history))
        history.observe(actual)
        self._observed[task.name] = self._observed.get(task.name, 0) + 1
        self._utilization[task.name] = actual / task.period
        return self._select(view)

    def on_task_added(self, view, task: Task) -> Optional[OperatingPoint]:
        self._utilization[task.name] = task.utilization
        self._reserved[task.name] = task.wcet
        self._histories[task.name] = _DemandHistory(self.history)
        self._observed[task.name] = 0
        return self._select(view)

    def on_idle(self, view) -> Optional[OperatingPoint]:
        return view.machine.slowest

    # ------------------------------------------------------------------
    def _reservation(self, task: Task) -> float:
        """Cycles reserved for the next invocation of ``task``."""
        history = self._histories.get(task.name)
        observed = self._observed.get(task.name, 0)
        if history is None or observed < self.warmup or len(history) == 0:
            return task.wcet
        estimate = history.percentile(self.percentile)
        return min(task.wcet, estimate)

    def _select(self, view) -> OperatingPoint:
        total = 0.0
        for task in view.taskset:
            entry = self._utilization.get(task.name, task.utilization)
            job = view.job_of(task)
            if job is not None and not job.is_complete:
                # Safety valve: a running invocation that already exceeded
                # its reservation gets its worst case back, so a bad
                # estimate cannot keep the frequency low indefinitely.
                if job.executed > self._reserved.get(task.name,
                                                     task.wcet) - 1e-12:
                    entry = task.utilization
            total += entry
        return view.machine.lowest_at_least(min(1.0, total))

    # -- introspection -------------------------------------------------
    def reservation_for(self, task: Task) -> float:
        """Current reservation (for tests and reporting)."""
        return self._reservation(task)
