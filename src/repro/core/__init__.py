"""The paper's contribution: RT-DVS policies.

Every policy couples DVS decisions to the real-time scheduler's task
management events, as the paper prescribes: frequency/voltage may change at
task *release* and task *completion* (at most two switches per task per
invocation), and never in a way that violates the EDF/RM deadline
guarantees.

Policies
--------
* :class:`~repro.core.no_dvs.NoDVS` — plain EDF/RM at full speed (baseline);
* :class:`~repro.core.static_scaling.StaticEDF` /
  :class:`~repro.core.static_scaling.StaticRM` — Sec. 2.3, Fig. 1;
* :class:`~repro.core.cycle_conserving.CycleConservingEDF` — Sec. 2.4, Fig. 4;
* :class:`~repro.core.cycle_conserving_rm.CycleConservingRM` — Sec. 2.4, Fig. 6;
* :class:`~repro.core.look_ahead.LookAheadEDF` — Sec. 2.5, Fig. 8;
* :class:`~repro.core.avg_throughput.AveragingDVS` — the *non*-real-time
  interval-based baseline the paper argues against (Sec. 2.2).
"""

from repro.core.base import DVSPolicy
from repro.core.no_dvs import NoDVS
from repro.core.static_scaling import StaticEDF, StaticRM
from repro.core.cycle_conserving import CycleConservingEDF
from repro.core.cycle_conserving_rm import CycleConservingRM
from repro.core.look_ahead import LookAheadEDF
from repro.core.oracle import ClairvoyantEDF
from repro.core.statistical import StatisticalEDF
from repro.core.avg_throughput import AveragingDVS
from repro.core.fixed import FixedSpeed
from repro.core.governors import (AgedAveragesGovernor, FlatGovernor,
                                  IntervalGovernor, PastGovernor)
from repro.core.registry import (
    PAPER_POLICIES,
    available_policies,
    canonical_policy_name,
    make_policy,
)

__all__ = [
    "DVSPolicy",
    "NoDVS",
    "StaticEDF",
    "StaticRM",
    "CycleConservingEDF",
    "CycleConservingRM",
    "LookAheadEDF",
    "ClairvoyantEDF",
    "StatisticalEDF",
    "AveragingDVS",
    "FixedSpeed",
    "IntervalGovernor",
    "PastGovernor",
    "FlatGovernor",
    "AgedAveragesGovernor",
    "PAPER_POLICIES",
    "available_policies",
    "canonical_policy_name",
    "make_policy",
]
