"""Interval-based average-throughput DVS — the non-real-time baseline.

This is the class of algorithm the paper argues is unsuitable for real-time
systems (Sec. 2.2, citing Weiser et al. and Govil et al.): "they use a
simple feedback mechanism, such as detecting the amount of idle time on the
processor over a period of time, and then adjust the frequency and voltage
to just handle the computational load ... but cannot provide any timeliness
guarantees and tasks may miss their execution deadlines."

The implementation mirrors the classic PAST/interval schemes: every
``interval`` time units, measure the fraction of the window the CPU was
busy, estimate the normalized cycle demand, apply exponential smoothing,
and pick the slowest operating point that would have served that demand at
a target utilization.

It exists here to reproduce the paper's motivating example (the camcorder
task that misses its 5 ms deadline once a throughput-based policy halves
the clock) and as a measuring stick in the examples.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import DVSPolicy
from repro.errors import SimulationError
from repro.hw.operating_point import OperatingPoint


class AveragingDVS(DVSPolicy):
    """Weiser-style interval scheduler (NOT deadline-safe — by design).

    Parameters
    ----------
    interval:
        Length of the measurement window.
    target_utilization:
        The policy scales frequency so the predicted demand would occupy
        this fraction of the next window (1.0 = run exactly at the average
        demand; lower values leave headroom).
    smoothing:
        Exponential-smoothing weight on the newest window (1.0 = use only
        the last window, like PAST).
    scheduler:
        Priority policy used underneath ("edf" or "rm"); misses are the
        point of this baseline, so either works.
    """

    name = "avgDVS"

    def __init__(self, interval: float = 10.0,
                 target_utilization: float = 0.7,
                 smoothing: float = 0.5,
                 scheduler: str = "edf"):
        if interval <= 0:
            raise SimulationError(
                f"interval must be positive, got {interval}")
        if not 0.0 < target_utilization <= 1.0:
            raise SimulationError(
                "target_utilization must be in (0, 1], got "
                f"{target_utilization}")
        if not 0.0 < smoothing <= 1.0:
            raise SimulationError(
                f"smoothing must be in (0, 1], got {smoothing}")
        self.interval = interval
        self.target_utilization = target_utilization
        self.smoothing = smoothing
        self.scheduler = scheduler.strip().lower()
        if self.scheduler not in ("edf", "rm"):
            raise SimulationError(
                f"scheduler must be 'edf' or 'rm', got {scheduler!r}")
        self._next_wakeup = 0.0
        self._busy_snapshot = 0.0
        self._frequency_in_window = 1.0
        self._demand_estimate = 0.0

    # -- timer hooks used by the engine -------------------------------------
    def wakeup_time(self) -> Optional[float]:
        """Next instant the policy wants control (end of current window)."""
        return self._next_wakeup

    def on_wakeup(self, view) -> Optional[OperatingPoint]:
        """Close the window, update the demand estimate, set the speed."""
        busy = view.busy_time - self._busy_snapshot
        self._busy_snapshot = view.busy_time
        window_demand = busy * self._frequency_in_window / self.interval
        self._demand_estimate = (
            self.smoothing * window_demand
            + (1.0 - self.smoothing) * self._demand_estimate)
        requested = min(1.0, self._demand_estimate / self.target_utilization)
        point = view.machine.lowest_at_least(requested)
        self._frequency_in_window = point.frequency
        self._next_wakeup += self.interval
        return point

    # -- scheduler hooks ------------------------------------------------------
    def setup(self, view) -> Optional[OperatingPoint]:
        self._next_wakeup = self.interval
        self._busy_snapshot = 0.0
        self._demand_estimate = 0.0
        start = view.machine.fastest
        self._frequency_in_window = start.frequency
        return start

    # Releases and completions do not move this policy: that is precisely
    # what makes it blind to deadlines.
